"""The trace bus: capture, ring buffer, and JSONL sink.

Design constraints, in order:

1. **Zero overhead when off.**  No component calls into this module
   unless a tracer is installed: the hot dispatch path is *replaced*
   (``StorageController._execute`` is deliberately late-bound for
   exactly this purpose — the OpLog in :mod:`repro.sim.tracing` set
   the precedent), and every cold emission site guards with a single
   ``self._trace is not None`` check against a class attribute that
   defaults to ``None``.

2. **Low overhead when on.**  Per-op capture appends *scalars* to a
   flat list via one ``list.extend`` call.  Retaining tuples or op
   objects would keep GC-tracked objects alive in the buffer: the
   cyclic collector rescans that ever-growing live set and the
   simulation rate drops 15-40% (measured — retaining the completion
   heap entries themselves, a zero-allocation capture on paper, lost
   42%).  Floats, ints and interned strings are never GC-tracked, and
   the transient argument tuple nets zero allocation-counter
   pressure.  Field decoding (kind names, phases) is deferred to
   :meth:`events` materialization, off the hot path.  The measured
   enabled-tracing overhead lives in ``BENCH_PR5.json``.

3. **Determinism.**  Capture never reads the wall clock and never
   perturbs simulation state; a traced run produces byte-identical
   results to an untraced one (asserted in
   ``tests/test_observability.py``).

Phase attribution: hot records are not stamped with the current phase
(that costs a subscript and a slot per record); instead
:meth:`begin_phase` logs a ``(sim-time, name)`` transition and
materialization derives each record's phase from its *issue* time —
the latest transition at or before it.  An op that issues in one phase
and completes in the next is attributed entirely to the issuing phase,
matching stamped semantics.  The one caveat: events issued at the
exact simulation time of a later ``begin_phase`` call are attributed
to the new phase.  The experiment runner is safe — a run-to-exhaustion
warmup cannot issue an op at its own final timestamp (the completion
would still be queued) — but callers flipping phases mid-run should
advance simulated time first.  Cold events are rare enough to stamp
eagerly, so they are exact regardless.

Typical use::

    tracer = Tracer()
    result = run_workload(ftl_name="flexFTL", scenario=scenario,
                          tracer=tracer)
    tracer.write_jsonl("run.jsonl")   # then: repro trace summary
"""

from __future__ import annotations

import gc
import json
from bisect import bisect_left, bisect_right
from math import inf
from typing import Dict, List, Optional

from repro.observability import events as ev
from repro.observability.events import OP_KIND_NAMES, TraceEvent
from repro.observability.metrics import MetricsRegistry
from repro.observability.profiler import PhaseProfiler
from repro.sim.ops import OpKind

_PROGRAM = OpKind.PROGRAM
_READ = OpKind.READ

#: Fields per flat op record: (t_issue, t_done, chip, kind_code, tag,
#: block, page, lpn) — phase is derived at materialization.
_OP_WIDTH = 8
#: Fields per flat allocation record: (t, chip, block, page, ptype,
#: u_pages, q).
_ALLOC_WIDTH = 7
#: How many records past capacity the ring may grow before an
#: amortized trim (one ``len`` comparison per op instead of an exact
#: per-op trim).
_TRIM_SLACK = 1024

#: Warm-record decode table: code -> (event kind, data field names).
#: Warm records are flat ``(code, t, *data)`` captures for emission
#: sites that are too frequent for :meth:`Tracer.event`'s kwargs/dict
#: construction (a parity backup runs for ~a third of host pages in
#: flexFTL) but too rare for a dedicated hot-path closure.
_WARM_WIDTH = 7
_WARM_KINDS = (
    (ev.PARITY_WRITE, ("chip", "owner", "block", "page", "cycled")),
)


class Tracer:
    """Captures trace events from an instrumented storage system.

    Args:
        capacity: maximum retained *op* records (issue/complete pairs
            count as one).  ``None`` (the default) retains everything;
            with a capacity the buffer acts as a ring — the oldest
            records are trimmed in chunks and counted in
            :attr:`dropped_ops`.  Cold events (GC, faults, QoS, ...)
            are never trimmed; they are orders of magnitude rarer.
        enabled: the single on/off guard.  A disabled tracer's
            :meth:`install` is a no-op, leaving the system completely
            uninstrumented.
    """

    def __init__(self, capacity: Optional[int] = None,
                 enabled: bool = True) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.enabled = enabled
        self.capacity = capacity
        self.dropped_ops = 0
        self.metrics = MetricsRegistry()
        self.meta: Dict[str, object] = {}
        #: flat scalar buffers (see the module docstring for why)
        self._op_raw: List[object] = []
        self._alloc_raw: List[object] = []
        self._warm_raw: List[object] = []
        self._cold: List[TraceEvent] = []
        #: one-slot cell cold emission reads the current phase from
        self._phase_cell: List[str] = ["run"]
        #: phase transitions, parallel (times, names), for hot records
        self._phase_times: List[float] = []
        self._phase_names: List[str] = []
        self.profiler: Optional[PhaseProfiler] = None
        self._sim = None
        self._controller = None
        self._installed = False
        self._saved_execute: Optional[object] = None
        self._had_saved_execute = False
        self._saved_hook: Optional[object] = None
        self._had_saved_hook = False
        self._saved_gc_threshold: Optional[tuple] = None

    # ------------------------------------------------------------------
    # install / detach

    def install(self, controller, qos_host=None) -> "Tracer":
        """Arm tracing on a controller (and optionally a QoS host).

        Replaces ``controller._execute`` with a traced copy, chains
        into the FTL's ``_after_host_program`` hook, and plants
        ``_trace``/``_metrics`` references on the controller, the FTL
        and (when given) the QoS host so their cold paths emit.  A
        disabled tracer installs nothing.
        """
        if not self.enabled:
            return self
        if self._installed:
            raise RuntimeError("tracer is already installed")
        self._installed = True
        self._controller = controller
        self._sim = controller.sim
        # While armed, relax the cyclic collector.  Capture allocates
        # one transient tracked tuple per record and grows the flat
        # buffers to hundreds of thousands of scalars that generation-2
        # collections re-traverse for zero reclaim (everything retained
        # is acyclic, freed by refcount).  Measured on fig8_write:
        # default thresholds roughly double the tracing overhead.
        # detach() restores the exact prior thresholds.
        self._saved_gc_threshold = gc.get_threshold()
        gc.set_threshold(200_000, 50, 25)
        ftl = controller.ftl
        self.profiler = PhaseProfiler(controller.sim)

        geometry = controller.geometry
        self.meta = {
            "ftl": ftl.name,
            "channels": geometry.channels,
            "chips_per_channel": geometry.chips_per_channel,
            "blocks_per_chip": geometry.blocks_per_chip,
            "pages_per_block": geometry.pages_per_block,
            "page_size": geometry.page_size,
            "buffer_capacity": controller.write_buffer.capacity,
            "wordlines_per_block": ftl.wordlines,
        }

        # _execute is an instance attribute only if something (a test,
        # the OpLog) already patched it; remember either way so detach
        # can restore the exact prior state.
        self._had_saved_execute = "_execute" in controller.__dict__
        self._saved_execute = controller.__dict__.get("_execute")
        controller._execute = self._make_traced_execute(controller)

        # Chain the allocation hook.  _after_host_program may be a
        # class-level method (rtfFTL/parityFTL), an instance attribute
        # (flexFTL with a predictor), or None (the default); saving
        # the *instance* state lets detach restore all three.
        self._had_saved_hook = "_after_host_program" in ftl.__dict__
        self._saved_hook = ftl.__dict__.get("_after_host_program")
        ftl._after_host_program = self._make_alloc_hook(ftl)

        controller._trace = self
        controller._metrics = self.metrics
        ftl._trace = self
        ftl._metrics = self.metrics
        # Pre-resolved per-chip counters for the parity warm path: the
        # label-memoization lookup in MetricsRegistry.counter is too
        # slow to run ~once per three host pages.
        ftl._parity_counters = tuple(
            self.metrics.counter("parity.writes", chip=chip)
            for chip in range(len(ftl.chips)))
        if qos_host is not None:
            self.attach_qos(qos_host)
        return self

    def attach_qos(self, qos_host) -> None:
        """Arm QoS admit/arbitrate tracing on a multi-tenant host."""
        if not self.enabled:
            return
        qos_host._trace = self
        qos_host._metrics = self.metrics

    def detach(self) -> None:
        """Disarm tracing, restoring the exact pre-install state."""
        if not self._installed:
            return
        controller = self._controller
        ftl = controller.ftl
        if self._had_saved_execute:
            controller._execute = self._saved_execute
        else:
            del controller.__dict__["_execute"]
        if self._had_saved_hook:
            ftl._after_host_program = self._saved_hook
        else:
            del ftl.__dict__["_after_host_program"]
        for component in (controller, ftl):
            component._trace = None
            component._metrics = None
        ftl._parity_counters = None
        if self._saved_gc_threshold is not None:
            gc.set_threshold(*self._saved_gc_threshold)
            self._saved_gc_threshold = None
        self._installed = False
        self._controller = None

    # ------------------------------------------------------------------
    # phases

    @property
    def phase(self) -> str:
        """The phase stamped on events emitted now."""
        return self._phase_cell[0]

    def begin_phase(self, name: str) -> None:
        """Start a profiling phase; subsequent events carry ``name``."""
        self._phase_cell[0] = name
        self._phase_times.append(
            self._sim.now if self._sim is not None else 0.0)
        self._phase_names.append(name)
        if self.profiler is not None:
            self.profiler.begin(name)

    def _phase_at(self, time: float) -> str:
        """The phase in effect at ``time`` (see the module docstring
        for the same-timestamp attribution rule)."""
        index = bisect_right(self._phase_times, time)
        return self._phase_names[index - 1] if index else "run"

    def finish(self) -> None:
        """Close the open phase and emit ``profile.phase`` events."""
        if self.profiler is None:
            return
        for timing in self.profiler.finish():
            self._cold.append(TraceEvent(ev.PROFILE_PHASE, timing.sim_end, {
                "name": timing.name,
                "wall_seconds": timing.wall_seconds,
                "events": timing.events,
                "sim_seconds": timing.sim_seconds,
                "phase": timing.name,
            }))
        self.profiler.timings.clear()

    # ------------------------------------------------------------------
    # cold-path emission (components call this behind `_trace is not
    # None` checks; never on a per-op hot path)

    def event(self, kind: str, /, **fields: object) -> None:
        """Emit one cold event at the current simulation time.

        ``kind`` is positional-only: some schemas (``qos.admit``)
        carry a field that is itself named ``kind``.
        """
        fields["phase"] = self._phase_cell[0]
        self._cold.append(TraceEvent(kind, self._sim.now, fields))

    def warm_parity(self, chip: int, owner: int, block: int,
                    page: int, cycled: int) -> None:
        """Flat-capture one ``parity.write`` (see ``_WARM_KINDS``)."""
        self._warm_raw.extend((0, self._sim.now, chip, owner, block,
                               page, cycled))

    # ------------------------------------------------------------------
    # hot-path capture machinery

    def _make_traced_execute(self, controller):
        """A traced copy of ``StorageController._execute``.

        The body below is the PR-2 fast path *verbatim* (keep in sync
        with :meth:`repro.sim.controller.StorageController._execute`)
        plus one ``list.extend`` of eight scalars per op.  It is a
        copy, not a wrapper: wrapping would add a Python frame per op,
        which alone busts the overhead budget.  ``done`` is computed
        term-for-term as the original's ``now + total``: a
        re-associated sum can differ in the last ulp, and event times
        must be bit-identical to the untraced run's.  ``_busy``/
        ``_idle``/``_channel_free`` are read through the controller on
        every call because ``reset_after_power_loss`` rebinds them.
        """
        sim = controller.sim
        chips_per_channel = controller._chips_per_channel
        t_transfer = controller._t_transfer
        array_program = controller._array_program
        array_read = controller._array_read
        array_erase = controller._array_erase
        # never rebound after construction: safe to hoist
        on_op_done = controller._on_op_done
        in_flight = controller.in_flight
        sim_push = sim._push
        raw = self._op_raw
        raw_extend = raw.extend
        capacity = self.capacity
        # `len(raw) >= limit` is one comparison whether or not a ring
        # is configured: an unbounded buffer compares against infinity.
        limit = inf if capacity is None \
            else (capacity + _TRIM_SLACK) * _OP_WIDTH
        keep = None if capacity is None else capacity * _OP_WIDTH
        tracer = self

        def _traced_execute(chip_id, op, read_request):
            now = sim.now
            kind = op.kind
            addr = op.addr
            if kind is _PROGRAM:
                channel = chip_id // chips_per_channel
                channel_free = controller._channel_free
                start = channel_free[channel]
                if start < now:
                    start = now
                channel_free[channel] = start + t_transfer
                latency = array_program(addr, op.data)
                done = now + ((start - now) + t_transfer + latency)
                code = 0
            elif kind is _READ:
                channel = chip_id // chips_per_channel
                channel_free = controller._channel_free
                start = channel_free[channel]
                if start < now:
                    start = now
                channel_free[channel] = start + t_transfer
                _, latency = array_read(addr)
                done = now + ((start - now) + t_transfer + latency)
                code = 1
            else:
                done = now + array_erase(addr[0], addr[1], addr[2])
                code = 2
            lpn = op.lpn
            raw_extend((now, done, chip_id, code, op.tag, addr[2],
                        addr[3], -1 if lpn is None else lpn))
            if len(raw) >= limit:
                drop = len(raw) - keep
                tracer.dropped_ops += drop // _OP_WIDTH
                del raw[:drop]
            controller._busy[chip_id] = True
            idle = controller._idle
            del idle[bisect_left(idle, chip_id)]
            in_flight[chip_id] = op
            sim_push([done, 0, next(sim._seq), on_op_done,
                      (chip_id, op, read_request), False, sim._cancelled])

        return _traced_execute

    def _make_alloc_hook(self, ftl):
        """The chained ``_after_host_program`` hook capturing one
        allocation-decision record per placed host page.

        ``u_pages`` is sampled *after* the placed page left the write
        buffer (the decision saw ``u_pages + 1``) and ``q`` after the
        quota debit/credit — both are the post-placement state, which
        is what the next decision will see.
        """
        buffer = ftl.write_buffer
        quota = getattr(ftl, "quota", None)
        prev = ftl._after_host_program  # bound method, attr, or None
        raw_extend = self._alloc_raw.extend

        if quota is None:
            def _alloc_hook(chip_id, addr, ptype, now):
                raw_extend((now, chip_id, addr[2], addr[3],
                            1 if ptype else 0, buffer._live, -1))
                if prev is not None:
                    prev(chip_id, addr, ptype, now)
        else:
            def _alloc_hook(chip_id, addr, ptype, now):
                raw_extend((now, chip_id, addr[2], addr[3],
                            1 if ptype else 0, buffer._live,
                            quota.value))
                if prev is not None:
                    prev(chip_id, addr, ptype, now)

        return _alloc_hook

    # ------------------------------------------------------------------
    # buffer introspection

    def _trim(self) -> None:
        """Enforce the ring capacity exactly.

        The hot path trims lazily (every ``_TRIM_SLACK`` records), so
        the buffer may briefly exceed ``capacity`` mid-run; every
        observation point (:attr:`op_count`, :meth:`events`) settles
        the debt first.
        """
        capacity = self.capacity
        raw = self._op_raw
        if capacity is not None and len(raw) > capacity * _OP_WIDTH:
            drop = len(raw) - capacity * _OP_WIDTH
            self.dropped_ops += drop // _OP_WIDTH
            del raw[:drop]

    @property
    def op_count(self) -> int:
        """Op records currently retained (excludes dropped ones)."""
        self._trim()
        return len(self._op_raw) // _OP_WIDTH

    @property
    def alloc_count(self) -> int:
        """Allocation-decision records captured."""
        return len(self._alloc_raw) // _ALLOC_WIDTH

    def clear(self) -> None:
        """Drop all captured records (installation stays armed)."""
        self._op_raw.clear()
        self._alloc_raw.clear()
        self._warm_raw.clear()
        self._cold.clear()
        self.dropped_ops = 0

    # ------------------------------------------------------------------
    # materialization

    def events(self) -> List[TraceEvent]:
        """All captured records as :class:`TraceEvent`, time-ordered.

        Each op record expands into an ``op.issue`` and an
        ``op.complete`` event (both attributed to the phase in effect
        at *issue* time); the sort is stable, so simultaneous events
        keep a deterministic order (ops, then allocation decisions,
        then cold events).
        """
        self._trim()
        out: List[TraceEvent] = []
        phase_at = self._phase_at
        raw = self._op_raw
        for i in range(0, len(raw), _OP_WIDTH):
            (t_issue, t_done, chip, code, tag, block, page,
             lpn) = raw[i:i + _OP_WIDTH]
            kind = OP_KIND_NAMES[code]
            phase = phase_at(t_issue)
            out.append(TraceEvent(ev.OP_ISSUE, t_issue, {
                "chip": chip, "kind": kind, "tag": tag, "block": block,
                "page": page, "lpn": lpn, "t_done": t_done,
                "phase": phase,
            }))
            out.append(TraceEvent(ev.OP_COMPLETE, t_done, {
                "chip": chip, "kind": kind, "tag": tag, "block": block,
                "page": page, "lpn": lpn, "t_issue": t_issue,
                "phase": phase,
            }))
        araw = self._alloc_raw
        for i in range(0, len(araw), _ALLOC_WIDTH):
            (t, chip, block, page, ptype, live,
             q) = araw[i:i + _ALLOC_WIDTH]
            out.append(TraceEvent(ev.ALLOC_DECISION, t, {
                "chip": chip, "block": block, "page": page,
                "ptype": ptype, "u_pages": live, "q": q,
                "phase": phase_at(t),
            }))
        wraw = self._warm_raw
        for i in range(0, len(wraw), _WARM_WIDTH):
            record = wraw[i:i + _WARM_WIDTH]
            kind, names = _WARM_KINDS[record[0]]
            t = record[1]
            fields = dict(zip(names, record[2:]))
            fields["phase"] = phase_at(t)
            out.append(TraceEvent(kind, t, fields))
        out.extend(self._cold)
        out.sort(key=lambda event: event.time)
        return out

    # ------------------------------------------------------------------
    # sinks

    def meta_line(self) -> Dict[str, object]:
        """The ``trace.meta`` header record."""
        data: Dict[str, object] = {
            "ev": "trace.meta",
            "schema": ev.SCHEMA_VERSION,
            "dropped_ops": self.dropped_ops,
        }
        data.update(self.meta)
        return data

    def write_jsonl(self, path: str) -> int:
        """Write the trace as JSONL (meta header + one event per
        line); returns the number of event lines written."""
        events = self.events()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(self.meta_line(),
                                    separators=(",", ":")) + "\n")
            for event in events:
                handle.write(event.to_json_line() + "\n")
        return len(events)

    def __repr__(self) -> str:
        state = "installed" if self._installed else "idle"
        return (f"Tracer({state}, ops={self.op_count}, "
                f"allocs={self.alloc_count}, cold={len(self._cold)}, "
                f"dropped={self.dropped_ops})")
