"""Labeled metrics: counters, gauges and histograms.

A :class:`MetricsRegistry` is the structured replacement for ad-hoc
scalar bumps on the *non-hot* paths: instead of growing ``SimStats``
a field at a time, cold-path instrumentation asks the registry for a
named instrument with labels (chip, tenant, ftl, ...) and records into
it.  The registry serializes deterministically (instruments sorted by
name, then labels) and snapshots into ``SimStats.to_dict()`` under the
``metrics`` key when attached — fault-free, untraced runs keep their
historical byte shape, exactly like ``SimStats.faults``.

Instruments are memoized: ``registry.counter("gc.collections",
chip="3")`` returns the same :class:`Counter` every call, so emission
sites need no caching of their own.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

#: A label set in canonical form: name/value pairs sorted by name.
LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds (values land in the first
#: bucket whose bound is >= value; an implicit +inf bucket catches the
#: rest).  Tuned for queue depths and small page counts.
DEFAULT_BOUNDS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128)


#: Characters reserved by the ``name{label=value,...}`` rendering;
#: allowing them in labels would make serialization ambiguous.
_RESERVED = frozenset("{}=,")


def _label_key(labels: Dict[str, object]) -> LabelKey:
    pairs = []
    for name, value in labels.items():
        text = str(value)
        if (_RESERVED & set(name)) or (_RESERVED & set(text)):
            raise ValueError(
                f"label {name}={text!r} contains a character from "
                f"'{{}}=,', which the name{{label=value}} key "
                f"rendering reserves")
        pairs.append((name, text))
    return tuple(sorted(pairs))


def _render_key(name: str, labels: LabelKey) -> str:
    if not labels:
        return name
    inner = ",".join(f"{label}={value}" for label, value in labels)
    return f"{name}{{{inner}}}"


def _parse_key(key: str) -> Tuple[str, LabelKey]:
    if not key.endswith("}") or "{" not in key:
        return key, ()
    name, _, inner = key.partition("{")
    pairs = []
    for part in inner[:-1].split(","):
        label, _, value = part.partition("=")
        pairs.append((label, value))
    return name, tuple(sorted(pairs))


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, "
                             f"got {amount}")
        self.value += amount


class Gauge:
    """A point-in-time value (last write wins)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def add(self, delta: float) -> None:
        self.value += delta


class Histogram:
    """Fixed-bucket histogram of observed values.

    ``bounds`` are inclusive upper bucket bounds; one implicit
    overflow bucket catches values above the last bound.
    """

    __slots__ = ("bounds", "counts", "total", "sum")

    def __init__(self, bounds: Tuple[float, ...] = DEFAULT_BOUNDS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"bounds must be a non-empty ascending "
                             f"sequence, got {bounds!r}")
        self.bounds = tuple(float(bound) for bound in bounds)
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.total += 1
        self.sum += value

    @property
    def mean(self) -> float:
        """Mean of the observed values (nan when empty)."""
        if self.total == 0:
            return float("nan")
        return self.sum / self.total


class MetricsRegistry:
    """Named, labeled instruments with deterministic serialization."""

    def __init__(self) -> None:
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    # -- instrument lookup (memoized get-or-create) --------------------

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter ``name`` with ``labels`` (created on first use)."""
        key = (name, _label_key(labels))
        counter = self._counters.get(key)
        if counter is None:
            counter = self._counters[key] = Counter()
        return counter

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge ``name`` with ``labels`` (created on first use)."""
        key = (name, _label_key(labels))
        gauge = self._gauges.get(key)
        if gauge is None:
            gauge = self._gauges[key] = Gauge()
        return gauge

    def histogram(self, name: str,
                  bounds: Optional[Tuple[float, ...]] = None,
                  **labels: object) -> Histogram:
        """The histogram ``name`` with ``labels`` (created on first
        use; ``bounds`` only applies at creation)."""
        key = (name, _label_key(labels))
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram(
                bounds or DEFAULT_BOUNDS)
        return histogram

    # -- aggregation helpers -------------------------------------------

    def counter_total(self, name: str) -> int:
        """Sum of one counter across all its label sets."""
        return sum(counter.value
                   for (key_name, _), counter in self._counters.items()
                   if key_name == name)

    def iter_counters(self) -> Iterator[Tuple[str, LabelKey, int]]:
        """All counters as ``(name, labels, value)``, sorted."""
        for (name, labels), counter in sorted(self._counters.items()):
            yield name, labels, counter.value

    def __len__(self) -> int:
        return (len(self._counters) + len(self._gauges)
                + len(self._histograms))

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot, invertible via :meth:`from_dict`.

        Keys render as ``name{label=value,...}`` sorted, so equal
        registries serialize byte-identically.
        """
        return {
            "counters": {
                _render_key(name, labels): counter.value
                for (name, labels), counter
                in sorted(self._counters.items())
            },
            "gauges": {
                _render_key(name, labels): gauge.value
                for (name, labels), gauge in sorted(self._gauges.items())
            },
            "histograms": {
                _render_key(name, labels): {
                    "bounds": list(histogram.bounds),
                    "counts": list(histogram.counts),
                    "total": histogram.total,
                    "sum": histogram.sum,
                }
                for (name, labels), histogram
                in sorted(self._histograms.items())
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MetricsRegistry":
        """Inverse of :meth:`to_dict`."""
        registry = cls()
        for key, value in data.get("counters", {}).items():  # type: ignore[union-attr]
            name, labels = _parse_key(key)
            registry._counters[(name, labels)] = Counter(int(value))
        for key, value in data.get("gauges", {}).items():  # type: ignore[union-attr]
            name, labels = _parse_key(key)
            registry._gauges[(name, labels)] = Gauge(float(value))
        for key, payload in data.get("histograms", {}).items():  # type: ignore[union-attr]
            name, labels = _parse_key(key)
            histogram = Histogram(tuple(payload["bounds"]))
            histogram.counts = [int(count)
                                for count in payload["counts"]]
            histogram.total = int(payload["total"])
            histogram.sum = float(payload["sum"])
            registry._histograms[(name, labels)] = histogram
        return registry

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MetricsRegistry):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __repr__(self) -> str:
        return (f"MetricsRegistry(counters={len(self._counters)}, "
                f"gauges={len(self._gauges)}, "
                f"histograms={len(self._histograms)})")
