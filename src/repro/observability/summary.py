"""Digest a JSONL trace into per-phase counts and phase timings.

``repro trace summary <file.jsonl>`` renders a :class:`TraceSummary`.
The op counts here reconcile *exactly* with the run's ``SimStats`` /
FTL counters — ``tests/test_trace_summary.py`` asserts it — which is
the property that makes the trace trustworthy: an aggregate that
disagrees with the event log means one of the two is lying.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Dict, List, Optional, Tuple

from repro.observability import events as ev


class TraceFormatError(ValueError):
    """The file is not a readable trace of a supported schema."""


@dataclasses.dataclass
class TraceSummary:
    """Aggregated view of one trace."""

    meta: Dict[str, object]
    #: (phase, tag, kind) -> issued op count
    op_counts: Dict[Tuple[str, str, str], int]
    #: (phase, ptype) -> host allocation decisions (ptype: lsb | msb)
    alloc_counts: Dict[Tuple[str, str], int]
    #: event kind -> count, ops/allocs/profile excluded
    cold_counts: Dict[str, int]
    #: profile.phase events in file order
    phases: List[Dict[str, object]]
    total_events: int

    # -- reconciliation helpers ---------------------------------------

    def ops(self, phase: Optional[str] = None,
            tag: Optional[str] = None,
            kind: Optional[str] = None) -> int:
        """Issued ops matching the given phase/tag/kind filters."""
        return sum(
            count for (p, t, k), count in self.op_counts.items()
            if (phase is None or p == phase)
            and (tag is None or t == tag)
            and (kind is None or k == kind)
        )

    def allocs(self, phase: Optional[str] = None,
               ptype: Optional[str] = None) -> int:
        """Host allocation decisions matching the filters."""
        return sum(
            count for (p, pt), count in self.alloc_counts.items()
            if (phase is None or p == phase)
            and (ptype is None or pt == ptype)
        )

    def phase_events(self) -> int:
        """Kernel events across all profiled phases."""
        return sum(int(phase["events"]) for phase in self.phases)

    # -- serialization / rendering ------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON projection for ``--json``."""
        return {
            "meta": dict(self.meta),
            "op_counts": {
                f"{phase}/{tag}/{kind}": count
                for (phase, tag, kind), count
                in sorted(self.op_counts.items())
            },
            "alloc_counts": {
                f"{phase}/{ptype}": count
                for (phase, ptype), count
                in sorted(self.alloc_counts.items())
            },
            "cold_counts": dict(sorted(self.cold_counts.items())),
            "phases": list(self.phases),
            "total_events": self.total_events,
        }

    def render(self) -> str:
        """The text report."""
        lines: List[str] = []
        meta = self.meta
        lines.append(
            f"trace schema v{meta.get('schema', '?')}: "
            f"{meta.get('ftl', '?')} on "
            f"{meta.get('channels', '?')}x"
            f"{meta.get('chips_per_channel', '?')} chips, "
            f"{self.total_events} events"
            + (f", {meta['dropped_ops']} op records dropped (ring)"
               if meta.get("dropped_ops") else ""))
        if self.phases:
            lines.append("")
            lines.append(f"{'phase':12s} {'wall [s]':>9s} "
                         f"{'events':>10s} {'events/s':>10s} "
                         f"{'sim [s]':>9s}")
            for phase in self.phases:
                wall = float(phase["wall_seconds"])
                events = int(phase["events"])
                rate = events / wall if wall > 0 else float("nan")
                lines.append(
                    f"{str(phase['name']):12s} {wall:>9.3f} "
                    f"{events:>10d} {rate:>10.0f} "
                    f"{float(phase['sim_seconds']):>9.4f}")
        if self.op_counts:
            lines.append("")
            lines.append(f"{'phase':12s} {'tag':10s} {'kind':8s} "
                         f"{'ops':>9s}")
            for (phase, tag, kind), count \
                    in sorted(self.op_counts.items()):
                lines.append(f"{phase:12s} {tag:10s} {kind:8s} "
                             f"{count:>9d}")
        if self.alloc_counts:
            lines.append("")
            for (phase, ptype), count \
                    in sorted(self.alloc_counts.items()):
                lines.append(f"alloc {phase}/{ptype}: {count}")
        if self.cold_counts:
            lines.append("")
            for kind, count in sorted(self.cold_counts.items()):
                lines.append(f"{kind}: {count}")
        return "\n".join(lines)


def summarize_events(meta: Dict[str, object],
                     records: List[Dict[str, object]]) -> TraceSummary:
    """Aggregate decoded event records into a :class:`TraceSummary`."""
    op_counts: Dict[Tuple[str, str, str], int] = {}
    alloc_counts: Dict[Tuple[str, str], int] = {}
    cold_counts: Dict[str, int] = {}
    phases: List[Dict[str, object]] = []
    for record in records:
        kind = record["ev"]
        phase = str(record.get("phase", "run"))
        if kind == ev.OP_ISSUE:
            key = (phase, str(record["tag"]), str(record["kind"]))
            op_counts[key] = op_counts.get(key, 0) + 1
        elif kind == ev.OP_COMPLETE:
            pass  # completions mirror issues; counted once
        elif kind == ev.ALLOC_DECISION:
            ptype = "msb" if record["ptype"] else "lsb"
            akey = (phase, ptype)
            alloc_counts[akey] = alloc_counts.get(akey, 0) + 1
        elif kind == ev.PROFILE_PHASE:
            phases.append({
                "name": record["name"],
                "wall_seconds": record["wall_seconds"],
                "events": record["events"],
                "sim_seconds": record["sim_seconds"],
            })
        else:
            cold_counts[str(kind)] = cold_counts.get(str(kind), 0) + 1
    return TraceSummary(
        meta=meta,
        op_counts=op_counts,
        alloc_counts=alloc_counts,
        cold_counts=cold_counts,
        phases=phases,
        total_events=len(records),
    )


def summarize_tracer(tracer) -> TraceSummary:
    """Summarize an in-memory tracer (same digest as the JSONL path)."""
    return summarize_events(
        tracer.meta_line(),
        [event.to_dict() for event in tracer.events()])


def summarize_jsonl(path: str) -> TraceSummary:
    """Read and digest one JSONL trace file."""
    meta: Optional[Dict[str, object]] = None
    records: List[Dict[str, object]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise TraceFormatError(
                    f"{path}:{line_no}: not JSON ({error})") from error
            if not isinstance(record, dict) or "ev" not in record:
                raise TraceFormatError(
                    f"{path}:{line_no}: not a trace record")
            if record["ev"] == "trace.meta":
                if meta is not None:
                    raise TraceFormatError(
                        f"{path}:{line_no}: duplicate trace.meta")
                schema = record.get("schema")
                if schema != ev.SCHEMA_VERSION:
                    raise TraceFormatError(
                        f"{path}: schema {schema!r} unsupported "
                        f"(reader understands {ev.SCHEMA_VERSION})")
                meta = record
                continue
            records.append(record)
    if meta is None:
        raise TraceFormatError(f"{path}: missing trace.meta header")
    return summarize_events(meta, records)
