"""Per-phase wall-clock and kernel event-count profiling.

The PR-2 kernel loop retires hundreds of thousands of events per
second; attributing wall time to *phases* of a run (preconditioning
fill vs. measured workload) is the cheapest profiling that still
answers "where did the time go".  A :class:`PhaseProfiler` samples
``time.perf_counter``, ``Simulator.processed`` and ``Simulator.now``
at each phase boundary — three attribute reads per phase, nothing per
event — and reports one :class:`PhaseTiming` per phase.

The :class:`~repro.observability.tracer.Tracer` owns a profiler and
turns its timings into ``profile.phase`` trace events, which
``repro trace summary`` renders.
"""

from __future__ import annotations

import dataclasses
import time
from typing import List, Optional, Tuple


@dataclasses.dataclass(frozen=True)
class PhaseTiming:
    """One completed profiling phase."""

    name: str
    wall_seconds: float
    events: int
    sim_seconds: float
    sim_end: float

    @property
    def events_per_sec(self) -> float:
        """Kernel event rate over the phase (nan for a zero-length
        phase)."""
        if self.wall_seconds <= 0.0:
            return float("nan")
        return self.events / self.wall_seconds


class PhaseProfiler:
    """Samples phase boundaries around a simulator's run loop."""

    def __init__(self, sim) -> None:
        self.sim = sim
        self.timings: List[PhaseTiming] = []
        self._open: Optional[Tuple[str, float, int, float]] = None

    @property
    def current_phase(self) -> Optional[str]:
        """Name of the open phase, or None."""
        return self._open[0] if self._open is not None else None

    def begin(self, name: str) -> None:
        """Close the open phase (if any) and start ``name``."""
        self._close()
        self._open = (name, time.perf_counter(), self.sim.processed,
                      self.sim.now)

    def finish(self) -> List[PhaseTiming]:
        """Close the open phase and return all timings."""
        self._close()
        return self.timings

    def _close(self) -> None:
        if self._open is None:
            return
        name, wall_start, events_start, sim_start = self._open
        self._open = None
        self.timings.append(PhaseTiming(
            name=name,
            wall_seconds=time.perf_counter() - wall_start,
            events=self.sim.processed - events_start,
            sim_seconds=self.sim.now - sim_start,
            sim_end=self.sim.now,
        ))
