"""The versioned trace-event schema.

Every record a :class:`~repro.observability.tracer.Tracer` produces is
a :class:`TraceEvent` — an event kind from :data:`EVENT_SCHEMA`, a
simulation timestamp, and the kind's fields.  The schema is versioned
(:data:`SCHEMA_VERSION`): a JSONL trace file opens with a
``trace.meta`` line carrying the version plus the traced system's
context (geometry, FTL, buffer capacity), so readers can reject files
they do not understand and normalise fields like buffer occupancy
against capacity.

``docs/OBSERVABILITY.md`` renders :data:`EVENT_SCHEMA` as the
reference table; keep the two in sync.
"""

from __future__ import annotations

import json
from typing import Dict, Tuple

#: Trace format version.  Bump when a kind's fields change meaning or
#: shape; readers must refuse newer versions.
SCHEMA_VERSION = 1

# -- event kinds -------------------------------------------------------

OP_ISSUE = "op.issue"
OP_COMPLETE = "op.complete"
TPO_FAST_OPEN = "2po.fast_open"
TPO_LSB_COMPLETE = "2po.lsb_complete"
TPO_BLOCK_FULL = "2po.block_full"
ALLOC_DECISION = "alloc.decision"
GC_VICTIM = "gc.victim"
PARITY_WRITE = "parity.write"
PARITY_REWIND = "parity.rewind"
FAULT_INJECT = "fault.inject"
FAULT_RECOVER = "fault.recover"
RELIABILITY_READ_ERROR = "reliability.read_error"
RELIABILITY_RETRY_SHIFT = "reliability.retry_shift"
QOS_ADMIT = "qos.admit"
QOS_ARBITRATE = "qos.arbitrate"
PROFILE_PHASE = "profile.phase"
SCENARIO_PHASE = "scenario.phase"

#: kind -> ((field, description), ...).  Every event also carries
#: ``ev`` (the kind), ``t`` (simulation time, seconds) and ``phase``
#: (the profiler phase active when it was emitted).
EVENT_SCHEMA: Dict[str, Tuple[Tuple[str, str], ...]] = {
    OP_ISSUE: (
        ("chip", "global chip id the op was dispatched to"),
        ("kind", "flash op kind: program | read | erase"),
        ("tag", "op origin: host | gc | backup | recovery | salvage"),
        ("block", "chip-local block id"),
        ("page", "page index within the block (0 for erases)"),
        ("lpn", "logical page, or -1 when the op carries none"),
        ("t_done", "scheduled completion time (fault ladders may "
                   "defer the actual completion)"),
    ),
    OP_COMPLETE: (
        ("chip", "global chip id"),
        ("kind", "flash op kind: program | read | erase"),
        ("tag", "op origin: host | gc | backup | recovery | salvage"),
        ("block", "chip-local block id"),
        ("page", "page index within the block"),
        ("lpn", "logical page, or -1"),
        ("t_issue", "time the op was dispatched"),
    ),
    TPO_FAST_OPEN: (
        ("chip", "global chip id"),
        ("block", "free block opened as the chip's 2PO fast block"),
    ),
    TPO_LSB_COMPLETE: (
        ("chip", "global chip id"),
        ("block", "block whose last LSB page was just allocated; it "
                  "joins the slow-block queue and its parity page is "
                  "persisted"),
    ),
    TPO_BLOCK_FULL: (
        ("chip", "global chip id"),
        ("block", "fully-written block entering the GC-eligible full "
                  "set (all FTLs, not just flexFTL)"),
    ),
    ALLOC_DECISION: (
        ("chip", "global chip id the host page was placed on"),
        ("block", "chip-local block id"),
        ("page", "page index within the block"),
        ("ptype", "0 = LSB, 1 = MSB"),
        ("u_pages", "write-buffer occupancy in pages, sampled after "
                    "the placed page left the buffer (the decision "
                    "saw u_pages + 1; capacity is in trace.meta)"),
        ("q", "LSB quota after the placement (-1 for FTLs without a "
              "quota), already debited/credited by this decision"),
    ),
    GC_VICTIM: (
        ("chip", "global chip id"),
        ("block", "victim block selected for collection"),
        ("valid", "live pages to relocate off the victim"),
        ("background", "1 for idle-time collection, 0 for foreground"),
    ),
    PARITY_WRITE: (
        ("chip", "global chip id"),
        ("owner", "global block id the parity page protects"),
        ("block", "backup block receiving the parity page"),
        ("page", "page index of the parity slot"),
        ("cycled", "1 when allocating the slot cycled a backup block "
                   "(erase + live-parity relocations preceded it)"),
    ),
    PARITY_REWIND: (
        ("chip", "global chip id"),
        ("block", "backup block whose write cursor was rewound over "
                  "an interrupted parity program (reboot recovery)"),
        ("page", "rewound slot's page index"),
    ),
    FAULT_INJECT: (
        ("chip", "global chip id the fault fired on"),
        ("fault", "program_fail | erase_fail | read_fault | grown_bad"),
        ("tag", "tag of the op the fault was injected into"),
        ("block", "chip-local block id of the faulted op"),
        ("page", "page index of the faulted op"),
    ),
    FAULT_RECOVER: (
        ("chip", "global chip id"),
        ("fault", "the fault kind being recovered"),
        ("outcome", "retried | reconstructed | lost | redriven | "
                    "retired"),
        ("pages", "pages the outcome applies to"),
    ),
    RELIABILITY_READ_ERROR: (
        ("chip", "global chip id the failed host read landed on"),
        ("block", "chip-local block id"),
        ("page", "page index within the block"),
        ("ber", "expected raw BER of the read (rung 0, unshifted "
                "references), from the physics engine's closed form"),
        ("prob", "page ECC-failure probability the error was drawn "
                 "from"),
    ),
    RELIABILITY_RETRY_SHIFT: (
        ("chip", "global chip id"),
        ("block", "chip-local block id"),
        ("page", "page index within the block"),
        ("shift", "read-reference voltage shift of this retry rung "
                  "(volts; negative tracks retention loss, positive "
                  "tracks aggressor coupling)"),
        ("recovered", "1 when this rung's re-read passed hard ECC "
                      "(ladder ends), 0 when it failed onward"),
    ),
    QOS_ADMIT: (
        ("tenant", "tenant name"),
        ("kind", "read | write"),
        ("lpn", "first logical page of the request"),
        ("npages", "request length in pages"),
        ("depth", "tenant submission-queue depth after the admit"),
    ),
    QOS_ARBITRATE: (
        ("tenant", "tenant the arbiter selected"),
        ("depth", "tenant queue depth before the dispatched command "
                  "was popped"),
        ("issued", "commands dispatched to the controller so far"),
    ),
    PROFILE_PHASE: (
        ("name", "phase name (e.g. warmup, measured)"),
        ("wall_seconds", "wall-clock duration of the phase"),
        ("events", "kernel events retired during the phase"),
        ("sim_seconds", "simulated time the phase advanced"),
    ),
    SCENARIO_PHASE: (
        ("name", "scenario phase the workload just entered (a "
                 "generator schedule label, e.g. steady, delivery)"),
        ("prev", "phase being left, '' at the first transition"),
        ("stream", "scenario stream whose op first crossed the "
                   "phase boundary"),
    ),
}

#: op-kind codes used by the tracer's flat record buffer.
OP_KIND_NAMES = ("program", "read", "erase")


class TraceEvent:
    """One structured trace record.

    Attributes:
        kind: an :data:`EVENT_SCHEMA` key.
        time: simulation time the event occurred at, in seconds.
        fields: the kind's fields (including ``phase``).
    """

    __slots__ = ("kind", "time", "fields")

    def __init__(self, kind: str, time: float,
                 fields: Dict[str, object]) -> None:
        self.kind = kind
        self.time = time
        self.fields = fields

    def to_dict(self) -> Dict[str, object]:
        """JSON projection: ``{"ev": kind, "t": time, **fields}``."""
        data: Dict[str, object] = {"ev": self.kind, "t": self.time}
        data.update(self.fields)
        return data

    def to_json_line(self) -> str:
        """One JSONL line (no trailing newline)."""
        return json.dumps(self.to_dict(), separators=(",", ":"))

    def __repr__(self) -> str:
        return (f"TraceEvent({self.kind!r}, t={self.time:.6g}, "
                f"{self.fields!r})")
