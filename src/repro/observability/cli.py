"""CLI registration of ``repro trace``.

Two actions:

* ``repro trace summary <file.jsonl>`` — digest a recorded trace:
  per-phase profiling, per-tag/kind op counts, allocation decisions,
  cold-event tallies.
* ``repro trace record --out <file.jsonl>`` — run one perfbench-style
  workload with tracing armed and write the JSONL trace (a convenient
  producer for ``summary``; library users call
  :func:`repro.experiments.runner.run_workload` with a ``tracer=``
  instead).
"""

from __future__ import annotations

import argparse
import dataclasses
from typing import Dict, Optional

from repro.experiments import registry
from repro.experiments.engine import EngineOptions
from repro.observability.summary import (
    TraceFormatError,
    TraceSummary,
    summarize_jsonl,
)
from repro.observability.tracer import Tracer


@dataclasses.dataclass
class TraceRecordResult:
    """Outcome of ``repro trace record``."""

    path: str
    events_written: int
    dropped_ops: int
    ftl: str
    workload: str

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    def render(self) -> str:
        line = (f"wrote {self.events_written} events "
                f"({self.ftl}, {self.workload}) to {self.path}")
        if self.dropped_ops:
            line += f"; {self.dropped_ops} op records dropped (ring)"
        return line


def _cli_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "action", choices=("summary", "record"),
        help="summary: digest a JSONL trace; record: run a traced "
             "workload and write one")
    parser.add_argument(
        "path", nargs="?", default=None,
        help="trace file to summarize (required for summary)")
    parser.add_argument(
        "--out", default=None, metavar="PATH",
        help="output trace file (required for record)")
    parser.add_argument(
        "--workload", default="fig8_write",
        help="perfbench workload to record (default fig8_write)")
    parser.add_argument(
        "--ftl", default="flexFTL",
        help="FTL to run (default flexFTL)")
    parser.add_argument(
        "--scale", type=float, default=0.1,
        help="op-count multiplier, perfbench semantics (default 0.1)")
    parser.add_argument(
        "--capacity", type=int, default=None, metavar="OPS",
        help="ring-buffer capacity in op records (default: unbounded)")


def _record(args: argparse.Namespace) -> TraceRecordResult:
    from repro.experiments.runner import (
        ExperimentConfig,
        build_system,
        run_workload,
    )
    from repro.perfbench.harness import (
        BENCH_UTILIZATION,
        WORKLOADS,
    )

    if args.out is None:
        raise registry.CliError("trace record needs --out PATH")
    if args.workload not in WORKLOADS:
        raise registry.CliError(
            f"unknown workload {args.workload!r}; choose from "
            f"{sorted(WORKLOADS)}")
    config = ExperimentConfig(track_history=False)
    _, _, _, probe, _ = build_system(args.ftl, config)
    span = max(1, int(probe.logical_pages * BENCH_UTILIZATION))
    from repro.scenarios import StreamScenario

    streams = WORKLOADS[args.workload](span, args.scale, args.seed)
    scenario = StreamScenario.from_streams(streams,
                                           name=args.workload)
    tracer = Tracer(capacity=args.capacity)
    run_workload(ftl_name=args.ftl, scenario=scenario, config=config,
                 warmup_span=span, tracer=tracer)
    written = tracer.write_jsonl(args.out)
    return TraceRecordResult(
        path=args.out,
        events_written=written,
        dropped_ops=tracer.dropped_ops,
        ftl=args.ftl,
        workload=args.workload,
    )


def _cli_run(args: argparse.Namespace,
             engine_options: EngineOptions):
    del engine_options  # single serial run either way
    if args.action == "summary":
        if args.path is None:
            raise registry.CliError(
                "trace summary needs a trace file path")
        try:
            return summarize_jsonl(args.path)
        except FileNotFoundError as error:
            raise registry.CliError(str(error)) from error
        except TraceFormatError as error:
            raise registry.CliError(str(error)) from error
    try:
        return _record(args)
    except KeyError as error:
        raise registry.CliError(str(error.args[0])) from error


def _cli_render(result) -> str:
    return result.render()


registry.register(registry.Experiment(
    name="trace",
    help="record or summarize structured simulation traces",
    add_arguments=_cli_arguments,
    run=_cli_run,
    render=_cli_render,
    to_dict=lambda result: result.to_dict(),
))


__all__ = ["TraceRecordResult", "TraceSummary"]
