"""Structured observability: tracing, metrics and profiling hooks.

The paper's claims rest on *internal* FTL dynamics — 2PO phase
transitions, LSB/MSB allocation decisions, parity-slot churn — that
end-of-run aggregates cannot attribute to mechanisms.  This package
adds three cross-cutting facilities:

* a **trace bus** (:class:`~repro.observability.tracer.Tracer`):
  typed, versioned :class:`~repro.observability.events.TraceEvent`
  records emitted from the controller, the FTLs, the fault machinery
  and the QoS front-end, with an in-memory ring buffer and a JSONL
  sink.  Tracing is strictly opt-in: when no tracer is installed the
  hot paths are byte-for-byte the PR-2 fast paths (the controller's
  ``_execute`` is only *replaced* at install time, never wrapped), and
  cold paths pay a single ``is None`` check.
* a **metrics registry**
  (:class:`~repro.observability.metrics.MetricsRegistry`): counters,
  gauges and histograms labeled by chip/tenant/ftl, recorded on the
  non-hot paths and snapshotted into ``SimStats.to_dict()`` when
  attached.
* **profiling hooks**
  (:class:`~repro.observability.profiler.PhaseProfiler`): per-phase
  wall-clock and kernel event-count timers around the simulation loop,
  surfaced via ``repro trace summary`` and guarded by
  ``repro perfbench --trace-overhead``.

See ``docs/OBSERVABILITY.md`` for the event schema and usage.
"""

from repro.observability.events import (
    EVENT_SCHEMA,
    SCHEMA_VERSION,
    TraceEvent,
)
from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.observability.profiler import PhaseProfiler, PhaseTiming
from repro.observability.summary import TraceSummary, summarize_jsonl
from repro.observability.tracer import Tracer

__all__ = [
    "EVENT_SCHEMA",
    "SCHEMA_VERSION",
    "TraceEvent",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseProfiler",
    "PhaseTiming",
    "TraceSummary",
    "summarize_jsonl",
    "Tracer",
]
