"""TLC FTLs: the three-phase flexFTL generalisation and its baseline.

System-level completion of the paper's Section 1 claim: the same FTL
ideas — phase-ordered block filling, utilisation/quota-driven page-type
selection, slowest-pages-for-GC — carry to 3-bit devices, where the
program asymmetry (500/2000/5500 us) makes them worth more.

* :class:`TlcPageFtl` — the baseline: one active block per chip walked
  in the staggered FPS-TLC order (mixed page types, FPS-enforced).
* :class:`TlcFlexFtl` — three-phase block management (fast LSB phase →
  CSB queue → MSB queue → full), adaptive page-type selection from
  buffer utilisation and an LSB quota, and GC relocations into the
  slowest available pages.

Paired-page backup is **not** modelled for TLC (an interrupted CSB or
MSB program endangers one or two lower pages; a per-block parity
scheme generalises but is out of the reproduction's scope), so both
TLC FTLs run under the paper's pageFTL-style no-power-off assumption.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.ftl.base import BaseFtl, FtlConfig
from repro.nand.geometry import PhysicalPageAddress
from repro.nand.tlc import (
    TlcPageType,
    TlcScheme,
    fps_tlc_order,
    tlc_page_index,
    tlc_split_index,
)
from repro.nand.tlc_array import TlcNandArray
from repro.sim.queues import WriteBuffer


class TlcOrderCursor:
    """Walks one TLC block in an explicit program order."""

    def __init__(self, block: int, order: List[int]) -> None:
        self.block = block
        self._order = order
        self._pos = 0

    @property
    def done(self) -> bool:
        return self._pos >= len(self._order)

    def take(self) -> Tuple[int, TlcPageType]:
        if self.done:
            raise IndexError(f"TLC block {self.block} cursor exhausted")
        index = self._order[self._pos]
        self._pos += 1
        return tlc_split_index(index)


class TlcPhaseCursor:
    """Walks one page type of a TLC block in word-line order."""

    def __init__(self, block: int, wordlines: int,
                 ptype: TlcPageType) -> None:
        self.block = block
        self.wordlines = wordlines
        self.ptype = ptype
        self._next = 0

    @property
    def done(self) -> bool:
        return self._next >= self.wordlines

    @property
    def remaining(self) -> int:
        return self.wordlines - self._next

    def take(self) -> Tuple[int, TlcPageType]:
        if self.done:
            raise IndexError(
                f"block {self.block} {self.ptype.name} phase exhausted"
            )
        wordline = self._next
        self._next += 1
        return wordline, self.ptype


class ThreePhaseBlockManager:
    """Per-chip TLC block life cycle: fast -> CSB queue -> MSB queue."""

    def __init__(self, wordlines: int) -> None:
        if wordlines <= 0:
            raise ValueError("wordlines must be positive")
        self.wordlines = wordlines
        self._fast: Optional[TlcPhaseCursor] = None
        self._csb: Deque[TlcPhaseCursor] = deque()
        self._msb: Deque[TlcPhaseCursor] = deque()

    @property
    def needs_fast_block(self) -> bool:
        return self._fast is None

    def install_fast_block(self, block: int) -> None:
        if self._fast is not None:
            raise RuntimeError("fast block still active")
        self._fast = TlcPhaseCursor(block, self.wordlines,
                                    TlcPageType.LSB)

    def take(self, ptype: TlcPageType
             ) -> Optional[Tuple[int, int, bool]]:
        """Allocate the next page of one type.

        Returns ``(block, wordline, block_full)`` or None when no page
        of that type is available.  Phase transitions happen
        automatically: LSB-exhausted blocks queue for the CSB phase,
        CSB-exhausted blocks for the MSB phase.
        """
        if ptype is TlcPageType.LSB:
            if self._fast is None:
                return None
            wordline, _ = self._fast.take()
            block = self._fast.block
            if self._fast.done:
                self._csb.append(TlcPhaseCursor(block, self.wordlines,
                                                TlcPageType.CSB))
                self._fast = None
            return block, wordline, False
        queue = self._csb if ptype is TlcPageType.CSB else self._msb
        if not queue:
            return None
        cursor = queue[0]
        wordline, _ = cursor.take()
        full = False
        if cursor.done:
            queue.popleft()
            if ptype is TlcPageType.CSB:
                self._msb.append(TlcPhaseCursor(cursor.block,
                                                self.wordlines,
                                                TlcPageType.MSB))
            else:
                full = True
        return cursor.block, wordline, full

    def available(self, ptype: TlcPageType) -> bool:
        """Whether a page of ``ptype`` is allocatable right now."""
        if ptype is TlcPageType.LSB:
            return self._fast is not None
        queue = self._csb if ptype is TlcPageType.CSB else self._msb
        return bool(queue)

    @property
    def queue_lengths(self) -> Tuple[int, int]:
        """(CSB queue length, MSB queue length)."""
        return len(self._csb), len(self._msb)


class TlcPageFtl(BaseFtl):
    """Baseline TLC FTL: staggered FPS-TLC order, one active block."""

    name = "tlc-pageFTL"
    uses_backup = False

    def __init__(self, array: TlcNandArray, write_buffer: WriteBuffer,
                 config: Optional[FtlConfig] = None) -> None:
        super().__init__(array, write_buffer, config)  # type: ignore[arg-type]
        self._order = fps_tlc_order(self.wordlines)
        self._active: List[Optional[TlcOrderCursor]] = \
            [None] * self.geometry.total_chips

    def _tlc_address(self, chip_id: int, block: int, wordline: int,
                     ptype: TlcPageType) -> PhysicalPageAddress:
        channel, chip = self.geometry.chip_coords(chip_id)
        return PhysicalPageAddress(channel, chip, block,
                                   tlc_page_index(wordline, ptype))

    def _allocate(self, chip_id: int, for_gc: bool):
        cursor = self._active[chip_id]
        if cursor is None:
            block = self._take_free_block(chip_id, for_gc=for_gc)
            if block is None:
                return None
            cursor = TlcOrderCursor(block, self._order)
            self._active[chip_id] = cursor
        wordline, ptype = cursor.take()
        addr = self._tlc_address(chip_id, cursor.block, wordline, ptype)
        if cursor.done:
            self._active[chip_id] = None
            self._mark_block_full(chip_id, cursor.block)
        return addr, ptype

    def _allocate_host_page(self, chip_id: int, now: float):
        return self._allocate(chip_id, for_gc=False)

    def _allocate_gc_page(self, chip_id: int):
        return self._allocate(chip_id, for_gc=True)


class TlcFlexFtl(BaseFtl):
    """Three-phase RPS-TLC FTL (the flexFTL ideas, one level deeper)."""

    name = "tlc-flexFTL"
    uses_backup = False

    def __init__(self, array: TlcNandArray, write_buffer: WriteBuffer,
                 config: Optional[FtlConfig] = None,
                 u_high: float = 0.80, u_low: float = 0.10,
                 quota_fraction: float = 0.05) -> None:
        if array.scheme is TlcScheme.FPS:
            raise ValueError(
                "the three-phase order is illegal under FPS-TLC; use "
                "an RPS-TLC array"
            )
        super().__init__(array, write_buffer, config)  # type: ignore[arg-type]
        if not (0.0 <= u_low < u_high <= 1.0):
            raise ValueError("need 0 <= u_low < u_high <= 1")
        self.u_high = u_high
        self.u_low = u_low
        self.managers = [ThreePhaseBlockManager(self.wordlines)
                         for _ in self.geometry.iter_chip_ids()]
        lsb_pages = (self.data_blocks_per_chip * self.wordlines
                     * self.geometry.total_chips)
        # Every LSB write creates two units of catch-up debt (its CSB
        # and MSB siblings), so the budget is kept in half-page units:
        # -2 per LSB write, +1 per CSB or MSB write.
        self.quota_cap = max(2, int(2 * quota_fraction * lsb_pages))
        self.quota = self.quota_cap
        self._rotation = 0

    # ------------------------------------------------------------------

    def _tlc_address(self, chip_id: int, block: int, wordline: int,
                     ptype: TlcPageType) -> PhysicalPageAddress:
        channel, chip = self.geometry.chip_coords(chip_id)
        return PhysicalPageAddress(channel, chip, block,
                                   tlc_page_index(wordline, ptype))

    def _note_program(self, ptype: TlcPageType) -> None:
        if ptype is TlcPageType.LSB:
            self.quota -= 2
        elif self.quota < self.quota_cap:
            self.quota += 1

    def _lsb_available(self, chip_id: int, for_gc: bool = False) -> bool:
        if self.managers[chip_id].available(TlcPageType.LSB):
            return True
        free = len(self.chips[chip_id].free_blocks)
        return free > (0 if for_gc else self.config.gc_reserve_blocks)

    def _take(self, chip_id: int, ptype: TlcPageType, for_gc: bool):
        manager = self.managers[chip_id]
        if ptype is TlcPageType.LSB and manager.needs_fast_block:
            block = self._take_free_block(chip_id, for_gc=for_gc)
            if block is None:
                return None
            manager.install_fast_block(block)
        taken = manager.take(ptype)
        if taken is None:
            return None
        block, wordline, full = taken
        self._note_program(ptype)
        if full:
            self._mark_block_full(chip_id, block)
        return self._tlc_address(chip_id, block, wordline, ptype), ptype

    def _choose(self, chip_id: int) -> Optional[TlcPageType]:
        manager = self.managers[chip_id]
        available = {
            TlcPageType.LSB: self._lsb_available(chip_id),
            TlcPageType.CSB: manager.available(TlcPageType.CSB),
            TlcPageType.MSB: manager.available(TlcPageType.MSB),
        }
        if not any(available.values()):
            return None
        u = self.write_buffer.utilization
        if u > self.u_high and self.quota > 0 \
                and available[TlcPageType.LSB]:
            return TlcPageType.LSB
        if u < self.u_low:
            for slow in (TlcPageType.MSB, TlcPageType.CSB,
                         TlcPageType.LSB):
                if available[slow]:
                    return slow
        # steady state: rotate through the types so all three phases
        # advance at the 1:1:1 rate the capacity requires
        for offset in range(3):
            ptype = TlcPageType((self._rotation + offset) % 3)
            if available[ptype]:
                self._rotation = (int(ptype) + 1) % 3
                return ptype
        return None  # pragma: no cover - guarded by `any` above

    def _allocate_host_page(self, chip_id: int, now: float):
        choice = self._choose(chip_id)
        if choice is None:
            return None
        allocated = self._take(chip_id, choice, for_gc=False)
        if allocated is not None:
            return allocated
        # fall back to anything allocatable
        for ptype in (TlcPageType.MSB, TlcPageType.CSB,
                      TlcPageType.LSB):
            allocated = self._take(chip_id, ptype, for_gc=False)
            if allocated is not None:
                return allocated
        return None

    def _allocate_gc_page(self, chip_id: int):
        # Relocations soak up the slowest pages first, replenishing
        # the quota for future fast bursts.
        for ptype in (TlcPageType.MSB, TlcPageType.CSB):
            allocated = self._take(chip_id, ptype, for_gc=True)
            if allocated is not None:
                return allocated
        return self._take(chip_id, TlcPageType.LSB, for_gc=True)

    def counters(self):
        base = super().counters()
        base["quota"] = self.quota
        return base
