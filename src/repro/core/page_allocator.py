"""Adaptive page allocation: flexFTL's policy manager (Section 3.2).

The policy manager picks the page type for each host write from two
signals:

* the write-buffer utilisation ``u`` — high ``u`` means the host needs
  bandwidth *now* (condition C1);
* the quota ``q`` of successive LSB-page writes — a budget initialised
  to 5 % of the device's LSB pages, decremented by every LSB write and
  incremented by every MSB write, that caps how far ahead of the MSB
  phase the FTL may run without hurting *future* bandwidth (C2).

Decision rule (the paper's, verbatim): ``u > u_high`` and ``q > 0`` →
LSB; ``u > u_high`` and ``q <= 0`` → alternate; ``u < u_low`` → MSB
(or LSB when no slow block exists — footnote 1); otherwise alternate.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.nand.page_types import PageType


@dataclasses.dataclass(frozen=True)
class PolicyConfig:
    """Policy-manager tunables (paper values as defaults).

    Attributes:
        u_high: buffer utilisation above which a high write bandwidth
            is deemed required (paper: 0.8).
        u_low: utilisation below which MSB writes suffice (paper: 0.1).
        quota_fraction: initial ``q`` as a fraction of the device's
            total LSB pages (paper: 0.05).
        quota_cap_factor: ``q`` ceiling as a multiple of its initial
            value (MSB writes replenish ``q`` but cannot bank more
            headroom than the system was configured to support).
    """

    u_high: float = 0.80
    u_low: float = 0.10
    quota_fraction: float = 0.05
    quota_cap_factor: float = 1.0

    def __post_init__(self) -> None:
        if not (0.0 <= self.u_low < self.u_high <= 1.0):
            raise ValueError(
                f"need 0 <= u_low < u_high <= 1, got "
                f"({self.u_low}, {self.u_high})"
            )
        if not (0.0 < self.quota_fraction <= 1.0):
            raise ValueError("quota_fraction must be in (0, 1]")
        if self.quota_cap_factor < 1.0:
            raise ValueError("quota_cap_factor must be >= 1")


class QuotaTracker:
    """The successive-LSB-write quota ``q``.

    ``q`` may go negative (LSB writes chosen by the alternate rule or
    corner cases still spend it); MSB writes — host or background-GC
    copies alike — earn it back up to the configured cap.
    """

    def __init__(self, initial: int, cap: Optional[int] = None) -> None:
        if initial < 0:
            raise ValueError(f"initial quota must be >= 0, got {initial}")
        self.initial = initial
        self.cap = initial if cap is None else cap
        if self.cap < initial:
            raise ValueError("quota cap must be >= initial value")
        self.value = initial

    def note_lsb_write(self) -> None:
        """Spend one unit of LSB headroom."""
        self.value -= 1

    def note_msb_write(self) -> None:
        """Earn one unit back (saturating at the cap)."""
        if self.value < self.cap:
            self.value += 1

    @property
    def exhausted(self) -> bool:
        """True when successive LSB writes are no longer allowed."""
        return self.value <= 0

    def reset(self) -> None:
        """Restore the initial quota (e.g. after preconditioning)."""
        self.value = self.initial

    def __repr__(self) -> str:
        return f"QuotaTracker(value={self.value}, cap={self.cap})"


class PolicyManager:
    """Chooses LSB vs MSB for each write per the Section 3.2 rule."""

    def __init__(self, config: Optional[PolicyConfig] = None) -> None:
        self.config = config or PolicyConfig()
        self._next_alternate = PageType.LSB
        self.decisions = {PageType.LSB: 0, PageType.MSB: 0}

    def choose(
        self,
        utilization: float,
        quota: QuotaTracker,
        lsb_available: bool,
        msb_available: bool,
    ) -> Optional[PageType]:
        """Pick the page type for the next host write.

        Args:
            utilization: current write-buffer utilisation ``u``.
            quota: the quota tracker (consulted, not modified).
            lsb_available: an LSB page can be allocated right now.
            msb_available: an MSB page can be allocated right now
                (i.e. a slow block exists).

        Returns:
            The chosen type, or None when no page of either type can
            be allocated (the caller must garbage-collect).
        """
        if not lsb_available and not msb_available:
            return None
        if not msb_available:
            # Corner case (footnote 1): no slow block yet — use LSB.
            return self._record(PageType.LSB)
        if not lsb_available:
            return self._record(PageType.MSB)
        if utilization > self.config.u_high:
            if not quota.exhausted:
                return self._record(PageType.LSB)
            return self._record(self._alternate())
        if utilization < self.config.u_low:
            return self._record(PageType.MSB)
        return self._record(self._alternate())

    def _alternate(self) -> PageType:
        choice = self._next_alternate
        self._next_alternate = choice.paired()
        return choice

    def _record(self, choice: PageType) -> PageType:
        self.decisions[choice] += 1
        return choice
