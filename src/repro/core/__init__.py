"""The paper's primary contribution: RPS and the RPS-aware flexFTL.

Device-level half: :mod:`repro.core.rps` defines relaxed program
sequence orders and validators.  FTL-level half: flexFTL and its three
RPS-enabled mechanisms — two-phase block management
(:mod:`repro.core.block_manager`), adaptive page allocation
(:mod:`repro.core.page_allocator`) and per-block parity backup
(:mod:`repro.core.parity_backup`).
"""

from repro.core.block_manager import TakenPage, TwoPhaseBlockManager
from repro.core.flexftl import FlexFtl
from repro.core.page_allocator import PolicyConfig, PolicyManager, QuotaTracker
from repro.core.predictor import EwmaBurstPredictor
from repro.core.tlc_ftl import (
    ThreePhaseBlockManager,
    TlcFlexFtl,
    TlcPageFtl,
)
from repro.core.parity_backup import (
    ParityAccumulator,
    RecoveryReport,
    estimate_reboot_read_overhead,
    recover_active_slow_block,
    xor_pages,
)
from repro.core.rps import (
    ProgramOrder,
    describe_order,
    fps_order,
    is_valid_order,
    random_rps_order,
    rps_full_order,
    rps_half_order,
    unconstrained_random_order,
    validate_order,
)

__all__ = [
    "FlexFtl",
    "TwoPhaseBlockManager",
    "TakenPage",
    "PolicyConfig",
    "PolicyManager",
    "QuotaTracker",
    "EwmaBurstPredictor",
    "TlcFlexFtl",
    "TlcPageFtl",
    "ThreePhaseBlockManager",
    "ParityAccumulator",
    "RecoveryReport",
    "recover_active_slow_block",
    "estimate_reboot_read_overhead",
    "xor_pages",
    "ProgramOrder",
    "fps_order",
    "rps_full_order",
    "rps_half_order",
    "random_rps_order",
    "unconstrained_random_order",
    "validate_order",
    "is_valid_order",
    "describe_order",
]
