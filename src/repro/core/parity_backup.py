"""Per-block parity backup and power-off recovery (Section 3.3).

While a fast block's LSB pages are written, flexFTL accumulates their
XOR in a RAM parity buffer; when the last LSB page is written, the
accumulated parity page is persisted to a reserved backup block (to an
LSB page, with the protected block's number in the spare area).  If a
sudden power-off interrupts an MSB program, destroying its paired LSB
page, the lost page is reconstructed at reboot: re-read every readable
LSB page of the active slow block, re-accumulate their parity, and XOR
with the saved parity page.

This module provides the RAM parity accumulator, the recovery
procedure against a data-bearing :class:`~repro.nand.array.NandArray`,
and the reboot-overhead estimate of Section 3.3.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.nand.array import NandArray
from repro.nand.errors import EccUncorrectableError
from repro.nand.geometry import PhysicalPageAddress
from repro.nand.page_types import PageType, page_index


class ParityAccumulator:
    """RAM-resident accumulated XOR parity of a block's LSB pages."""

    def __init__(self, page_size: int) -> None:
        if page_size <= 0:
            raise ValueError(f"page_size must be positive, got {page_size}")
        self.page_size = page_size
        self._acc = bytearray(page_size)
        self.count = 0

    def add(self, data: bytes) -> None:
        """Fold one page into the accumulated parity.

        Short payloads are zero-padded to the page size (a real
        controller pads the program unit too).
        """
        if len(data) > self.page_size:
            raise ValueError(
                f"payload of {len(data)} bytes exceeds page size "
                f"{self.page_size}"
            )
        for i, byte in enumerate(data):
            self._acc[i] ^= byte
        self.count += 1

    def value(self) -> bytes:
        """The current accumulated parity page."""
        return bytes(self._acc)

    def reset(self) -> None:
        """Clear the accumulator for the next block."""
        self._acc = bytearray(self.page_size)
        self.count = 0


def xor_pages(a: bytes, b: bytes, page_size: int) -> bytes:
    """XOR two (possibly short) page payloads at ``page_size`` width."""
    acc = ParityAccumulator(page_size)
    acc.add(a)
    acc.add(b)
    return acc.value()


@dataclasses.dataclass
class RecoveryReport:
    """Outcome of the reboot-time recovery of one active slow block."""

    block: int
    lsb_reads: int
    lost_wordlines: List[int]
    recovered_wordline: Optional[int]
    recovered_data: Optional[bytes]
    success: bool

    @property
    def data_was_lost(self) -> bool:
        """Whether the power-off actually destroyed an LSB page."""
        return bool(self.lost_wordlines)


def recover_active_slow_block(
    array: NandArray,
    channel: int,
    chip: int,
    block: int,
    saved_parity: bytes,
) -> RecoveryReport:
    """Run the Figure 7(b) recovery procedure on one slow block.

    Reads every LSB page of the block, re-accumulating parity while
    skipping any ECC-uncorrectable (lost) page; a single lost page is
    reconstructed by XORing the re-accumulated parity with the saved
    parity page.  Two or more lost pages exceed what one parity page
    can recover (cannot happen under 2PO, where at most one MSB program
    is in flight per chip).

    Args:
        array: a data-bearing NAND array (``store_data=True``).
        channel, chip, block: location of the active slow block.
        saved_parity: the parity page persisted in the backup block.

    Returns:
        A :class:`RecoveryReport`; ``success`` is True when either no
        page was lost or exactly one page was reconstructed.
    """
    if not array.store_data:
        raise ValueError("recovery requires a data-bearing array "
                         "(store_data=True)")
    page_size = array.geometry.page_size
    wordlines = array.geometry.wordlines_per_block
    accumulator = ParityAccumulator(page_size)
    lost: List[int] = []
    reads = 0
    for wordline in range(wordlines):
        addr = PhysicalPageAddress(
            channel, chip, block, page_index(wordline, PageType.LSB)
        )
        try:
            data, _ = array.read(addr)
            reads += 1
        except EccUncorrectableError:
            lost.append(wordline)
            continue
        accumulator.add(data or b"")
    if not lost:
        return RecoveryReport(block, reads, [], None, None, success=True)
    if len(lost) > 1:
        return RecoveryReport(block, reads, lost, None, None, success=False)
    recovered = xor_pages(accumulator.value(), saved_parity, page_size)
    return RecoveryReport(block, reads, lost, lost[0], recovered,
                          success=True)


def estimate_reboot_read_overhead(
    chips: int,
    active_blocks_per_chip: int,
    lsb_pages_per_block: int,
    t_read: float = 40e-6,
) -> float:
    """The Section 3.3 reboot-overhead estimate, in seconds.

    The paper's example — 16 chips x 2 active blocks x 64 LSB pages at
    40 us per read — yields 81.92 ms.
    """
    if min(chips, active_blocks_per_chip, lsb_pages_per_block) <= 0:
        raise ValueError("all counts must be positive")
    if t_read <= 0:
        raise ValueError("t_read must be positive")
    return chips * active_blocks_per_chip * lsb_pages_per_block * t_read
