"""Relaxed program sequence (RPS): orders, generators, validators.

This module is the device-level half of the paper's contribution.  It
expresses in-block page program orders as sequences of canonical page
indices (see :func:`repro.nand.page_types.page_index`) and provides:

* generators for the orders the paper discusses — the conventional FPS
  order of Figure 2(b), ``RPSfull`` (all LSB pages then all MSB pages,
  a.k.a. the 2PO order flexFTL uses), ``RPShalf`` (Figure 3(b)), random
  RPS-legal orders (Figure 3(c)), and fully unconstrained orders (the
  worst case of Figure 2(a));
* whole-order validators for the FPS constraint set (Constraints 1-4)
  and the RPS constraint set (Constraints 1-3).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.nand.page_types import PageType, page_index, split_index
from repro.nand.sequence import SequenceScheme, constraint_violations

#: A program order: canonical in-block page indices, program-time order.
ProgramOrder = List[int]


def fps_order(wordlines: int) -> ProgramOrder:
    """The representative FPS order of Figure 2(b).

    ``LSB(0), LSB(1), MSB(0), LSB(2), MSB(1), ..., LSB(N-1), MSB(N-2),
    MSB(N-1)`` — the unique-looking interleave that satisfies all four
    constraints with at most one aggressor program per word line.
    """
    _check_wordlines(wordlines)
    if wordlines == 1:
        return [page_index(0, PageType.LSB), page_index(0, PageType.MSB)]
    order = [
        page_index(0, PageType.LSB),
        page_index(1, PageType.LSB),
        page_index(0, PageType.MSB),
    ]
    for k in range(2, wordlines):
        order.append(page_index(k, PageType.LSB))
        order.append(page_index(k - 1, PageType.MSB))
    order.append(page_index(wordlines - 1, PageType.MSB))
    return order


def rps_full_order(wordlines: int) -> ProgramOrder:
    """``RPSfull`` (Figure 3(a)): all LSB pages, then all MSB pages.

    This is the two-phase ordering (2PO) flexFTL adopts: a block is
    filled with fast LSB writes first and slow MSB writes later.
    """
    _check_wordlines(wordlines)
    order = [page_index(k, PageType.LSB) for k in range(wordlines)]
    order.extend(page_index(k, PageType.MSB) for k in range(wordlines))
    return order


def rps_half_order(wordlines: int) -> ProgramOrder:
    """``RPShalf`` (Figure 3(b)): half the LSB pages up front.

    The first half of the block's LSB pages are written consecutively
    (an SLC-like burst), after which LSB and MSB writes alternate while
    honouring Constraints 1-3; trailing MSB writes finish the block.
    """
    _check_wordlines(wordlines)
    half = (wordlines + 1) // 2
    order = [page_index(k, PageType.LSB) for k in range(half)]
    next_lsb = half
    next_msb = 0
    prefer_msb = True
    while next_lsb < wordlines or next_msb < wordlines:
        msb_legal = next_msb < wordlines and _msb_legal(next_lsb, next_msb,
                                                        wordlines)
        lsb_legal = next_lsb < wordlines
        if msb_legal and (prefer_msb or not lsb_legal):
            order.append(page_index(next_msb, PageType.MSB))
            next_msb += 1
        elif lsb_legal:
            order.append(page_index(next_lsb, PageType.LSB))
            next_lsb += 1
        else:
            order.append(page_index(next_msb, PageType.MSB))
            next_msb += 1
        prefer_msb = not prefer_msb
    return order


def random_rps_order(wordlines: int,
                     rng: Optional[random.Random] = None) -> ProgramOrder:
    """A uniformly random step-wise-legal RPS order (Figure 3(c)).

    At each step one of the currently legal next pages (per Constraints
    1-3) is chosen at random, producing an arbitrary interleaving of
    LSB and MSB writes that a RPS device would accept.
    """
    _check_wordlines(wordlines)
    rng = rng or random.Random()
    order: ProgramOrder = []
    next_lsb = 0
    next_msb = 0
    while next_lsb < wordlines or next_msb < wordlines:
        candidates: List[Tuple[int, PageType]] = []
        if next_lsb < wordlines:
            candidates.append((next_lsb, PageType.LSB))
        if next_msb < wordlines and _msb_legal(next_lsb, next_msb,
                                               wordlines):
            candidates.append((next_msb, PageType.MSB))
        wordline, ptype = rng.choice(candidates)
        order.append(page_index(wordline, ptype))
        if ptype is PageType.LSB:
            next_lsb += 1
        else:
            next_msb += 1
    return order


def unconstrained_random_order(
    wordlines: int, rng: Optional[random.Random] = None
) -> ProgramOrder:
    """A random order with **no** constraints (Figure 2(a) worst case).

    Used by the reliability experiments to show why some ordering
    discipline is required: without Constraints 1-3 a word line can
    suffer up to four aggressor programs after it is fully written.
    """
    _check_wordlines(wordlines)
    rng = rng or random.Random()
    order = list(range(2 * wordlines))
    rng.shuffle(order)
    return order


def validate_order(order: Sequence[int], wordlines: int,
                   scheme: SequenceScheme) -> List[str]:
    """Replay ``order`` against a scheme; return all violations found.

    Also reports structural defects: wrong length, out-of-range pages,
    or duplicate programming of a page.
    """
    _check_wordlines(wordlines)
    violations: List[str] = []
    expected = 2 * wordlines
    if len(order) != expected:
        violations.append(
            f"order has {len(order)} entries, expected {expected}"
        )
    programmed = set()
    for position, index in enumerate(order):
        if not (0 <= index < expected):
            violations.append(f"position {position}: page {index} out of range")
            continue
        if index in programmed:
            violations.append(
                f"position {position}: page {index} programmed twice"
            )
            continue
        wordline, ptype = split_index(index)
        violations.extend(
            f"position {position}: {message}"
            for message in constraint_violations(
                lambda w, t: page_index(w, t) in programmed,
                wordlines, wordline, ptype, scheme,
            )
        )
        programmed.add(index)
    return violations


def is_valid_order(order: Sequence[int], wordlines: int,
                   scheme: SequenceScheme) -> bool:
    """True when ``order`` is a complete, legal order under ``scheme``."""
    return not validate_order(order, wordlines, scheme)


def describe_order(order: Sequence[int]) -> str:
    """Human-readable rendering, e.g. ``'LSB(0) LSB(1) MSB(0) ...'``."""
    parts = []
    for index in order:
        wordline, ptype = split_index(index)
        parts.append(f"{ptype.name}({wordline})")
    return " ".join(parts)


def _msb_legal(next_lsb: int, next_msb: int, wordlines: int) -> bool:
    """Whether MSB(next_msb) may be programmed next under RPS.

    Constraint 3 requires LSB(next_msb + 1) to exist (when that word
    line does); the physical pairing rule requires LSB(next_msb)
    itself.  With LSB pages written in word-line order (Constraint 1),
    both reduce to bounds on ``next_lsb``.
    """
    if next_msb + 1 < wordlines:
        return next_lsb >= next_msb + 2
    return next_lsb >= next_msb + 1


def _check_wordlines(wordlines: int) -> None:
    if wordlines <= 0:
        raise ValueError(f"wordlines must be positive, got {wordlines}")
