"""Future-write prediction for just-in-time background collection.

The paper's closing direction (Section 6): "if flexFTL can more
accurately estimate the amount of future writes — for example, by
using a page cache-based future write predictor [9] — a background
garbage collector can reclaim free blocks more efficiently so that
more LSB-page writes can be used for future write requests."

We have no host page cache to inspect, so the predictor works from the
signal the FTL does see: the stream of host page writes.  Writes whose
inter-arrival gap is below a threshold belong to the same *burst*; the
predictor keeps an exponentially weighted moving average of completed
burst sizes and predicts that the next burst will look like the recent
ones.  flexFTL uses the prediction as a *demand target*: during idle
times the background collector keeps reclaiming (and, by copying into
MSB pages, keeps earning quota) until the LSB-write headroom covers
the predicted burst.
"""

from __future__ import annotations

from typing import Optional


class EwmaBurstPredictor:
    """EWMA-of-burst-sizes future write predictor.

    Args:
        gap_threshold: writes separated by more than this many seconds
            start a new burst.
        alpha: EWMA weight of the most recent completed burst.
        initial_estimate: prediction before any burst completes.
    """

    def __init__(self, gap_threshold: float = 0.05, alpha: float = 0.3,
                 initial_estimate: float = 0.0) -> None:
        if gap_threshold <= 0:
            raise ValueError("gap_threshold must be positive")
        if not (0.0 < alpha <= 1.0):
            raise ValueError("alpha must be in (0, 1]")
        if initial_estimate < 0:
            raise ValueError("initial_estimate must be non-negative")
        self.gap_threshold = gap_threshold
        self.alpha = alpha
        self._estimate = float(initial_estimate)
        self._burst_pages = 0
        self._last_write: Optional[float] = None
        self.bursts_observed = 0

    def observe_write(self, now: float, pages: int = 1) -> None:
        """Feed one host page write (or ``pages`` of them) at ``now``."""
        if pages <= 0:
            raise ValueError("pages must be positive")
        if self._last_write is not None \
                and now - self._last_write > self.gap_threshold:
            self._finish_burst()
        self._burst_pages += pages
        self._last_write = now

    def _finish_burst(self) -> None:
        if self._burst_pages <= 0:
            return
        self.bursts_observed += 1
        self._estimate = (self.alpha * self._burst_pages
                          + (1.0 - self.alpha) * self._estimate)
        self._burst_pages = 0

    def predicted_burst_pages(self, now: Optional[float] = None) -> float:
        """Expected size (pages) of the next write burst.

        When ``now`` shows the current burst has ended (gap exceeded),
        it is folded into the estimate first.
        """
        if now is not None and self._last_write is not None \
                and now - self._last_write > self.gap_threshold:
            self._finish_burst()
        return self._estimate

    @property
    def in_burst_pages(self) -> int:
        """Pages of the burst currently being observed."""
        return self._burst_pages

    def __repr__(self) -> str:
        return (
            f"EwmaBurstPredictor(estimate={self._estimate:.1f}, "
            f"bursts={self.bursts_observed})"
        )
