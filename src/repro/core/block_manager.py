"""Two-phase block management (2PO): flexFTL's block life cycle.

Under the two-phase ordering a block cycles through the four states of
Figure 6: *free* → *active fast* (LSB pages being written) → queued in
the **slow block queue** (all LSB pages written, MSB pages free) →
*active slow* (MSB pages being written, at the SBQueue head) → *full*.
One :class:`TwoPhaseBlockManager` tracks that machinery for one chip;
the free and full pools stay with the owning FTL.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, NamedTuple, Optional

from repro.ftl.cursor import PhaseCursor
from repro.nand.page_types import PageType


class TakenPage(NamedTuple):
    """A page handed out by the manager.

    ``phase_done`` flags the life-cycle transition the take caused:
    for an LSB take, the fast block just exhausted its LSB pages and
    moved to the SBQueue (time to persist its parity page); for an MSB
    take, the slow block became full (its parity page is now dead).
    """

    block: int
    wordline: int
    ptype: PageType
    phase_done: bool


class TwoPhaseBlockManager:
    """Fast/slow block state for one chip under the 2PO scheme."""

    def __init__(self, wordlines: int) -> None:
        if wordlines <= 0:
            raise ValueError(f"wordlines must be positive, got {wordlines}")
        self.wordlines = wordlines
        self._fast: Optional[PhaseCursor] = None
        self._sbqueue: Deque[PhaseCursor] = deque()

    # ------------------------------------------------------------------
    # fast (LSB) phase

    @property
    def needs_fast_block(self) -> bool:
        """True when a new free block must be installed for LSB writes."""
        return self._fast is None

    @property
    def active_fast_block(self) -> Optional[int]:
        """Block id of the active fast block, if any."""
        return None if self._fast is None else self._fast.block

    def install_fast_block(self, block: int) -> None:
        """Make a free block the chip's active fast block."""
        if self._fast is not None:
            raise RuntimeError(
                f"fast block {self._fast.block} still active"
            )
        self._fast = PhaseCursor(block, self.wordlines, PageType.LSB)

    def take_lsb(self) -> Optional[TakenPage]:
        """Allocate the next LSB page of the active fast block.

        Returns None when no fast block is installed.  When the take
        consumes the block's last LSB page the block is appended to the
        slow block queue (FIFO, per Section 3.1) and ``phase_done`` is
        True — the caller must persist the block's accumulated parity.
        """
        fast = self._fast
        if fast is None:
            return None
        # PhaseCursor.take + done, inlined (per-LSB-write hot path; the
        # cursor can never be exhausted here because the last take
        # retires it below)
        wordline = fast._next
        fast._next = wordline + 1
        block = fast.block
        done = fast._next >= self.wordlines
        if done:
            self._sbqueue.append(
                PhaseCursor(block, self.wordlines, PageType.MSB)
            )
            self._fast = None
        return TakenPage(block, wordline, PageType.LSB, done)

    # ------------------------------------------------------------------
    # slow (MSB) phase

    @property
    def active_slow_block(self) -> Optional[int]:
        """Block id of the active slow block (SBQueue head), if any."""
        return self._sbqueue[0].block if self._sbqueue else None

    @property
    def has_slow_block(self) -> bool:
        """Whether any MSB page is allocatable."""
        return bool(self._sbqueue)

    def take_msb(self) -> Optional[TakenPage]:
        """Allocate the next MSB page of the active slow block.

        Returns None when the SBQueue is empty.  ``phase_done`` is True
        when the take fills the block completely — the caller moves it
        to the full pool and invalidates its parity page.
        """
        sbqueue = self._sbqueue
        if not sbqueue:
            return None
        cursor = sbqueue[0]
        # PhaseCursor.take + done, inlined (per-MSB-write hot path; the
        # head cursor is popped the moment it is exhausted)
        wordline = cursor._next
        cursor._next = wordline + 1
        done = cursor._next >= self.wordlines
        if done:
            sbqueue.popleft()
        return TakenPage(cursor.block, wordline, PageType.MSB, done)

    # ------------------------------------------------------------------
    # capacity views (the block pool manager's signals to the policy)

    @property
    def free_lsb_pages(self) -> int:
        """LSB pages allocatable without taking a new free block."""
        return 0 if self._fast is None else self._fast.remaining

    @property
    def free_msb_pages(self) -> int:
        """MSB pages allocatable across the slow block queue."""
        return sum(cursor.remaining for cursor in self._sbqueue)

    @property
    def sbqueue_length(self) -> int:
        """Blocks waiting in (or serving as head of) the SBQueue."""
        return len(self._sbqueue)

    def discard_block(self, block: int) -> Optional[str]:
        """Forget a block mid-life-cycle (bad-block retirement).

        Returns which stage the block was dropped from — ``"fast"`` or
        ``"slow"`` — or None when the manager was not tracking it
        (free/full blocks live with the owning FTL).
        """
        fast = self._fast
        if fast is not None and fast.block == block:
            self._fast = None
            return "fast"
        for cursor in self._sbqueue:
            if cursor.block == block:
                self._sbqueue.remove(cursor)
                return "slow"
        return None

    def __repr__(self) -> str:
        fast = "-" if self._fast is None else str(self._fast.block)
        return (
            f"TwoPhaseBlockManager(fast={fast}, "
            f"sbqueue={[c.block for c in self._sbqueue]})"
        )
