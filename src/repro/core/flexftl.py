"""flexFTL: the paper's RPS-aware flash translation layer (Section 3).

flexFTL programs blocks under the two-phase ordering (2PO, an instance
of the RPS scheme): all LSB pages of a block first, then all its MSB
pages.  Three mechanisms build on that:

* **two-phase block management** — one active fast block and one
  active slow block per chip, connected by a FIFO slow block queue
  (:class:`~repro.core.block_manager.TwoPhaseBlockManager`);
* **adaptive page allocation** — the policy manager picks LSB or MSB
  per host write from buffer utilisation ``u`` and the quota ``q``
  (:class:`~repro.core.page_allocator.PolicyManager`);
* **per-block parity backup** — one parity page per block, persisted
  when the block's last LSB page is written, replaces per-MSB-program
  paired-page backups (:mod:`repro.core.parity_backup`).

Background garbage collection (invoked in idle times when free blocks
drop below 10 %) relocates valid pages into **MSB** pages of the active
slow block, reclaiming free (LSB-capable) blocks while replenishing
``q`` for future bursts.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.block_manager import TwoPhaseBlockManager
from repro.core.page_allocator import PolicyConfig, PolicyManager, QuotaTracker
from repro.core.predictor import EwmaBurstPredictor
from repro.ftl.base import BaseFtl, FtlConfig
from repro.nand.array import NandArray
from repro.nand.geometry import PhysicalPageAddress
from repro.nand.page_types import PageType
from repro.nand.sequence import SequenceScheme
from repro.sim.queues import WriteBuffer


class FlexFtl(BaseFtl):
    """The RPS-aware FTL of the paper."""

    name = "flexFTL"
    uses_backup = True
    backup_order = "lsb"  # RPS: parity pages use fast LSB slots only

    def __init__(
        self,
        array: NandArray,
        write_buffer: WriteBuffer,
        config: Optional[FtlConfig] = None,
        policy_config: Optional[PolicyConfig] = None,
        parity_interval: int = 0,
        predictor: Optional[EwmaBurstPredictor] = None,
    ) -> None:
        """Args:
            array: an RPS (or unconstrained) NAND array.
            write_buffer: the controller's write buffer.
            config: common FTL tunables.
            policy_config: adaptive page-allocation tunables.
            parity_interval: persist an intermediate parity page after
                every this-many LSB writes within a fast block (each
                superseding the previous one).  0 — the paper's design —
                persists a single parity page per block, when its last
                LSB page is written.  Nonzero values exist for the
                parity-granularity ablation.
            predictor: optional future-write predictor (the paper's
                Section 6 extension).  When present, idle-time
                collection continues until the LSB-write headroom —
                quota and allocatable LSB pages — covers the predicted
                next burst, instead of stopping at the free-block
                threshold.
        """
        if array.scheme is SequenceScheme.FPS:
            raise ValueError(
                "flexFTL programs blocks in the 2PO order, which an "
                "FPS-enforcing device rejects; use an RPS array"
            )
        if parity_interval < 0:
            raise ValueError("parity_interval must be >= 0")
        super().__init__(array, write_buffer, config)
        self.parity_interval = parity_interval
        self.predictor = predictor
        self.policy_config = policy_config or PolicyConfig()
        self.policy = PolicyManager(self.policy_config)
        self.managers: List[TwoPhaseBlockManager] = [
            TwoPhaseBlockManager(self.wordlines)
            for _ in self.geometry.iter_chip_ids()
        ]
        total_lsb_pages = (self.data_blocks_per_chip * self.wordlines
                           * self.geometry.total_chips)
        initial_quota = max(1, int(self.policy_config.quota_fraction
                                   * total_lsb_pages))
        quota_cap = max(initial_quota,
                        int(initial_quota
                            * self.policy_config.quota_cap_factor))
        self.quota = QuotaTracker(initial_quota, quota_cap)
        #: parity invalidations deferred until the closing MSB program
        #: has durably completed (see _flush_parity_invalidations)
        self._pending_invalidations: List[List[int]] = [
            [] for _ in self.geometry.iter_chip_ids()
        ]

    # ------------------------------------------------------------------
    # placement

    def _lsb_available(self, chip_id: int, for_gc: bool = False) -> bool:
        """An LSB page is allocatable now (fast block or a free block)."""
        if self.managers[chip_id].free_lsb_pages > 0:
            return True
        free = len(self.chips[chip_id].free_blocks)
        if for_gc:
            return free > 0
        return free > self.config.gc_reserve_blocks

    def _allocate_host_page(
        self, chip_id: int, now: float
    ) -> Optional[Tuple[PhysicalPageAddress, PageType]]:
        manager = self.managers[chip_id]
        choice = self.policy.choose(
            utilization=self.write_buffer.utilization,
            quota=self.quota,
            lsb_available=self._lsb_available(chip_id),
            msb_available=manager.has_slow_block,
        )
        if choice is None:
            return None
        if choice is PageType.LSB:
            allocated = self._take_lsb(chip_id, for_gc=False)
            if allocated is None and manager.has_slow_block:
                allocated = self._take_msb(chip_id)
            return allocated
        allocated = self._take_msb(chip_id)
        if allocated is None:
            allocated = self._take_lsb(chip_id, for_gc=False)
        return allocated

    def _allocate_gc_page(
        self, chip_id: int
    ) -> Optional[Tuple[PhysicalPageAddress, PageType]]:
        # GC relocations consume slow MSB pages (replenishing q and
        # keeping LSB pages for the host); fall back to LSB pages only
        # when no slow block exists.
        allocated = self._take_msb(chip_id)
        if allocated is not None:
            return allocated
        return self._take_lsb(chip_id, for_gc=True)

    def _take_lsb(
        self, chip_id: int, for_gc: bool
    ) -> Optional[Tuple[PhysicalPageAddress, PageType]]:
        manager = self.managers[chip_id]
        if manager.needs_fast_block:
            block = self._take_free_block(chip_id, for_gc=for_gc)
            if block is None:
                return None
            manager.install_fast_block(block)
        taken = manager.take_lsb()
        if taken is None:  # pragma: no cover - guarded by install above
            return None
        self.quota.note_lsb_write()
        gb = self.mapping.global_block_of(chip_id, taken.block)
        if taken.phase_done:
            # Last LSB page of the fast block: persist its accumulated
            # parity page; the block has just joined the SBQueue.
            self._enqueue_parity_backup(chip_id, owner=gb)
        elif self.parity_interval > 0 \
                and (taken.wordline + 1) % self.parity_interval == 0:
            # Ablation mode: intermediate parity checkpoints, each
            # superseding the block's previous one.
            self._enqueue_parity_backup(chip_id, owner=gb)
        addr = self._page_address(chip_id, taken.block, taken.wordline,
                                  PageType.LSB)
        return addr, PageType.LSB

    def _take_msb(
        self, chip_id: int
    ) -> Optional[Tuple[PhysicalPageAddress, PageType]]:
        manager = self.managers[chip_id]
        taken = manager.take_msb()
        if taken is None:
            return None
        self.quota.note_msb_write()
        addr = self._page_address(chip_id, taken.block, taken.wordline,
                                  PageType.MSB)
        if taken.phase_done:
            # Block fully written: GC-eligible, parity page now dead.
            self._mark_block_full(chip_id, taken.block)
        return addr, PageType.MSB

    # ------------------------------------------------------------------
    # hooks

    def _on_block_full(self, chip_id: int, block: int) -> None:
        # The paper invalidates a block's parity page "once the pages
        # of a slow block are all written".  This hook runs when the
        # final MSB program *issues*; invalidating here would open a
        # window where a power loss during that very program destroys
        # an LSB page whose parity is already gone.  Defer until the
        # chip's next operation — per-chip serialisation guarantees
        # the closing program has completed by then.
        gb = self.mapping.global_block_of(chip_id, block)
        self._pending_invalidations[chip_id].append(gb)

    def _flush_parity_invalidations(self, chip_id: int) -> None:
        pending = self._pending_invalidations[chip_id]
        if not pending:
            return
        backup = self.chips[chip_id].backup
        if backup is not None:
            for gb in pending:
                backup.invalidate(gb)
        pending.clear()

    def next_op(self, chip_id: int, now: float):
        """Base behaviour plus deferred parity invalidation."""
        self._flush_parity_invalidations(chip_id)
        return super().next_op(chip_id, now)

    def _after_host_program(self, chip_id, addr, ptype, now):
        if self.predictor is not None:
            self.predictor.observe_write(now)

    # ------------------------------------------------------------------
    # predictor-driven just-in-time collection (Section 6 extension)

    def _lsb_headroom(self, chip_id: int) -> int:
        """LSB pages this chip could serve before running dry."""
        manager = self.managers[chip_id]
        free_blocks = len(self.chips[chip_id].free_blocks)
        return manager.free_lsb_pages + free_blocks * self.wordlines

    def _predictor_wants_gc(self, chip_id: int,
                            now: "Optional[float]") -> bool:
        if self.predictor is None or not self.config.bg_gc_enabled:
            return False
        predicted = self.predictor.predicted_burst_pages(now)
        if predicted <= 0:
            return False
        per_chip_demand = predicted / self.geometry.total_chips
        quota_short = self.quota.value < min(self.quota.cap, predicted)
        capacity_short = self._lsb_headroom(chip_id) < per_chip_demand
        if not (quota_short or capacity_short):
            return False
        return self._select_victim(
            chip_id, self._bg_min_invalid()) is not None

    def wants_background_gc(self, chip_id: int) -> bool:
        """Base condition plus the predictor's demand trigger."""
        if super().wants_background_gc(chip_id):
            return True
        # No timestamp here: use the estimate as-is (the timestamped
        # decision happens in background_op anyway).
        return self._predictor_wants_gc(chip_id, now=None)

    def background_op(self, chip_id: int, now: float):
        """Idle-time work, including predictor-driven collection."""
        self._flush_parity_invalidations(chip_id)
        op = super().background_op(chip_id, now)
        if op is not None:
            return op
        state = self.chips[chip_id]
        if state.gc is not None or not self._predictor_wants_gc(chip_id,
                                                                now):
            return None
        victim = self._select_victim(chip_id, self._bg_min_invalid())
        if victim is None:
            return None
        self._begin_gc(chip_id, victim, background=True)
        return self._gc_step(chip_id)

    # ------------------------------------------------------------------
    # introspection

    def sbqueue_length(self, chip_id: int) -> int:
        """Blocks in the chip's slow block queue."""
        return self.managers[chip_id].sbqueue_length

    def counters(self):
        """Base counters plus flexFTL-specific state."""
        base = super().counters()
        base["quota"] = self.quota.value
        base["lsb_decisions"] = self.policy.decisions[PageType.LSB]
        base["msb_decisions"] = self.policy.decisions[PageType.MSB]
        return base
