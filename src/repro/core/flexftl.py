"""flexFTL: the paper's RPS-aware flash translation layer (Section 3).

flexFTL programs blocks under the two-phase ordering (2PO, an instance
of the RPS scheme): all LSB pages of a block first, then all its MSB
pages.  Three mechanisms build on that:

* **two-phase block management** — one active fast block and one
  active slow block per chip, connected by a FIFO slow block queue
  (:class:`~repro.core.block_manager.TwoPhaseBlockManager`);
* **adaptive page allocation** — the policy manager picks LSB or MSB
  per host write from buffer utilisation ``u`` and the quota ``q``
  (:class:`~repro.core.page_allocator.PolicyManager`);
* **per-block parity backup** — one parity page per block, persisted
  when the block's last LSB page is written, replaces per-MSB-program
  paired-page backups (:mod:`repro.core.parity_backup`).

Background garbage collection (invoked in idle times when free blocks
drop below 10 %) relocates valid pages into **MSB** pages of the active
slow block, reclaiming free (LSB-capable) blocks while replenishing
``q`` for future bursts.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.block_manager import TwoPhaseBlockManager
from repro.core.page_allocator import PolicyConfig, PolicyManager, QuotaTracker
from repro.core.predictor import EwmaBurstPredictor
from repro.ftl.base import BaseFtl, FtlConfig
from repro.ftl.cursor import PhaseCursor
from repro.nand.array import NandArray
from repro.nand.geometry import PhysicalPageAddress
from repro.nand.page_types import PageType
from repro.nand.sequence import SequenceScheme
from repro.sim.ops import FlashOp, OpKind
from repro.sim.queues import WriteBuffer

_PROGRAM = OpKind.PROGRAM
_new = object.__new__


class FlexFtl(BaseFtl):
    """The RPS-aware FTL of the paper."""

    name = "flexFTL"
    uses_backup = True
    backup_order = "lsb"  # RPS: parity pages use fast LSB slots only

    def __init__(
        self,
        array: NandArray,
        write_buffer: WriteBuffer,
        config: Optional[FtlConfig] = None,
        policy_config: Optional[PolicyConfig] = None,
        parity_interval: int = 0,
        predictor: Optional[EwmaBurstPredictor] = None,
    ) -> None:
        """Args:
            array: an RPS (or unconstrained) NAND array.
            write_buffer: the controller's write buffer.
            config: common FTL tunables.
            policy_config: adaptive page-allocation tunables.
            parity_interval: persist an intermediate parity page after
                every this-many LSB writes within a fast block (each
                superseding the previous one).  0 — the paper's design —
                persists a single parity page per block, when its last
                LSB page is written.  Nonzero values exist for the
                parity-granularity ablation.
            predictor: optional future-write predictor (the paper's
                Section 6 extension).  When present, idle-time
                collection continues until the LSB-write headroom —
                quota and allocatable LSB pages — covers the predicted
                next burst, instead of stopping at the free-block
                threshold.
        """
        if array.scheme is SequenceScheme.FPS:
            raise ValueError(
                "flexFTL programs blocks in the 2PO order, which an "
                "FPS-enforcing device rejects; use an RPS array"
            )
        if parity_interval < 0:
            raise ValueError("parity_interval must be >= 0")
        super().__init__(array, write_buffer, config)
        self.parity_interval = parity_interval
        self.predictor = predictor
        if predictor is not None:
            self._after_host_program = self._observe_host_program
        self.policy_config = policy_config or PolicyConfig()
        self.policy = PolicyManager(self.policy_config)
        self.managers: List[TwoPhaseBlockManager] = [
            TwoPhaseBlockManager(self.wordlines)
            for _ in self.geometry.iter_chip_ids()
        ]
        total_lsb_pages = (self.data_blocks_per_chip * self.wordlines
                           * self.geometry.total_chips)
        initial_quota = max(1, int(self.policy_config.quota_fraction
                                   * total_lsb_pages))
        quota_cap = max(initial_quota,
                        int(initial_quota
                            * self.policy_config.quota_cap_factor))
        self.quota = QuotaTracker(initial_quota, quota_cap)
        #: per-chip (channel, chip) pairs precomputed for hot-path
        #: address construction
        self._coords: List[Tuple[int, int]] = [
            divmod(cid, self._cpc) for cid in self.geometry.iter_chip_ids()
        ]
        #: parity invalidations deferred until the closing MSB program
        #: has durably completed (see _flush_parity_invalidations)
        self._pending_invalidations: List[List[int]] = [
            [] for _ in self.geometry.iter_chip_ids()
        ]

    # ------------------------------------------------------------------
    # placement

    def _lsb_available(self, chip_id: int, for_gc: bool = False) -> bool:
        """An LSB page is allocatable now (fast block or a free block)."""
        if self.managers[chip_id].free_lsb_pages > 0:
            return True
        free = len(self.chips[chip_id].free_blocks)
        if for_gc:
            return free > 0
        return free > self.config.gc_reserve_blocks

    def _allocate_host_page(
        self, chip_id: int, now: float
    ) -> Optional[Tuple[PhysicalPageAddress, PageType]]:
        manager = self.managers[chip_id]
        # _lsb_available inlined (called once per host page write)
        if manager._fast is not None and manager._fast.remaining > 0:
            lsb_available = True
        else:
            lsb_available = len(self.chips[chip_id].free_blocks) \
                > self.config.gc_reserve_blocks
        msb_available = bool(manager._sbqueue)
        # PolicyManager.choose inlined (same rule, same decision
        # counters); keep in sync with
        # :meth:`repro.core.page_allocator.PolicyManager.choose`.
        policy = self.policy
        if not lsb_available and not msb_available:
            return None
        if not msb_available:
            choice = PageType.LSB
        elif not lsb_available:
            choice = PageType.MSB
        else:
            buffer = self.write_buffer
            utilization = buffer._live / buffer.capacity
            config = policy.config
            if utilization > config.u_high:
                if self.quota.value > 0:
                    choice = PageType.LSB
                else:
                    choice = policy._next_alternate
                    policy._next_alternate = choice.paired()
            elif utilization < config.u_low:
                choice = PageType.MSB
            else:
                choice = policy._next_alternate
                policy._next_alternate = choice.paired()
        policy.decisions[choice] += 1
        if choice is PageType.LSB:
            allocated = self._take_lsb(chip_id, for_gc=False)
            if allocated is None and manager.has_slow_block:
                allocated = self._take_msb(chip_id)
            return allocated
        allocated = self._take_msb(chip_id)
        if allocated is None:
            allocated = self._take_lsb(chip_id, for_gc=False)
        return allocated

    def _allocate_gc_page(
        self, chip_id: int
    ) -> Optional[Tuple[PhysicalPageAddress, PageType]]:
        # GC relocations consume slow MSB pages (replenishing q and
        # keeping LSB pages for the host); fall back to LSB pages only
        # when no slow block exists.
        allocated = self._take_msb(chip_id)
        if allocated is not None:
            return allocated
        return self._take_lsb(chip_id, for_gc=True)

    def _take_lsb(
        self, chip_id: int, for_gc: bool
    ) -> Optional[Tuple[PhysicalPageAddress, PageType]]:
        manager = self.managers[chip_id]
        fast = manager._fast
        if fast is None:
            block = self._take_free_block(chip_id, for_gc=for_gc)
            if block is None:
                return None
            fast = PhaseCursor(block, manager.wordlines, PageType.LSB)
            manager._fast = fast
            if self._trace is not None:
                self._trace.event("2po.fast_open", chip=chip_id,
                                  block=block)
        # TwoPhaseBlockManager.take_lsb, inlined without the TakenPage
        # (per-LSB-write hot path); keep in sync with
        # :meth:`repro.core.block_manager.TwoPhaseBlockManager.take_lsb`.
        wordline = fast._next
        fast._next = wordline + 1
        block = fast.block
        self.quota.value -= 1  # note_lsb_write, inlined
        if fast._next >= manager.wordlines:
            # Last LSB page of the fast block: the block joins the
            # SBQueue and its accumulated parity page is persisted.
            manager._sbqueue.append(
                PhaseCursor(block, manager.wordlines, PageType.MSB))
            manager._fast = None
            if self._trace is not None:
                self._trace.event("2po.lsb_complete", chip=chip_id,
                                  block=block)
            self._enqueue_parity_backup(
                chip_id,
                owner=self.mapping.global_block_of(chip_id, block))
        elif self.parity_interval > 0 \
                and (wordline + 1) % self.parity_interval == 0:
            # Ablation mode: intermediate parity checkpoints, each
            # superseding the block's previous one.
            self._enqueue_parity_backup(
                chip_id,
                owner=self.mapping.global_block_of(chip_id, block))
        # _page_address, inlined (per-allocation hot path);
        # tuple.__new__ skips the NamedTuple __new__ wrapper
        channel, chip = self._coords[chip_id]
        return (tuple.__new__(PhysicalPageAddress,
                              (channel, chip, block, 2 * wordline)),
                PageType.LSB)

    def _take_msb(
        self, chip_id: int
    ) -> Optional[Tuple[PhysicalPageAddress, PageType]]:
        manager = self.managers[chip_id]
        sbqueue = manager._sbqueue
        if not sbqueue:
            return None
        # TwoPhaseBlockManager.take_msb, inlined without the TakenPage
        # (per-MSB-write hot path); keep in sync with
        # :meth:`repro.core.block_manager.TwoPhaseBlockManager.take_msb`.
        cursor = sbqueue[0]
        wordline = cursor._next
        cursor._next = wordline + 1
        block = cursor.block
        done = cursor._next >= manager.wordlines
        if done:
            sbqueue.popleft()
        quota = self.quota  # note_msb_write, inlined (saturating)
        if quota.value < quota.cap:
            quota.value += 1
        # _page_address, inlined (per-allocation hot path);
        # tuple.__new__ skips the NamedTuple __new__ wrapper
        channel, chip = self._coords[chip_id]
        addr = tuple.__new__(PhysicalPageAddress,
                             (channel, chip, block, 2 * wordline + 1))
        if done:
            # Block fully written: GC-eligible, parity page now dead.
            self._mark_block_full(chip_id, block)
        return addr, PageType.MSB

    # ------------------------------------------------------------------
    # hooks

    def _on_block_full(self, chip_id: int, block: int) -> None:
        # The paper invalidates a block's parity page "once the pages
        # of a slow block are all written".  This hook runs when the
        # final MSB program *issues*; invalidating here would open a
        # window where a power loss during that very program destroys
        # an LSB page whose parity is already gone.  Defer until the
        # chip's next operation — per-chip serialisation guarantees
        # the closing program has completed by then.
        gb = self.mapping.global_block_of(chip_id, block)
        self._pending_invalidations[chip_id].append(gb)

    def _flush_parity_invalidations(self, chip_id: int) -> None:
        pending = self._pending_invalidations[chip_id]
        if not pending:
            return
        backup = self.chips[chip_id].backup
        if backup is not None:
            for gb in pending:
                backup.invalidate(gb)
        pending.clear()

    def _release_block(self, chip_id: int, block: int) -> None:
        # A retired block may be the active fast block, sit in the
        # SBQueue, or still own a live parity page — drop all three.
        self.managers[chip_id].discard_block(block)
        gb = self.mapping.global_block_of(chip_id, block)
        backup = self.chips[chip_id].backup
        if backup is not None:
            backup.invalidate(gb)
        pending = self._pending_invalidations[chip_id]
        if gb in pending:
            pending.remove(gb)

    def next_op(self, chip_id: int, now: float):
        """Deferred parity invalidation plus the base dispatch, with
        the host-write pipeline fully open-coded.

        This runs for every idle chip on every controller pump, and its
        call chain — base dispatch → ``_host_write_op`` →
        ``_allocate_host_page`` → policy choice → buffer pop —
        dominated the simulation profile.  The general forms remain in
        place for GC, preconditioning, the other FTLs and the tests;
        keep this in sync with :meth:`repro.ftl.base.BaseFtl.next_op`,
        :meth:`repro.ftl.base.BaseFtl._host_write_op`,
        :meth:`_allocate_host_page`,
        :meth:`repro.core.page_allocator.PolicyManager.choose` and
        :meth:`repro.sim.queues.WriteBuffer.pop`.
        """
        if self._pending_invalidations[chip_id]:
            self._flush_parity_invalidations(chip_id)
        state = self.chips[chip_id]
        if state.pending:
            return state.pending.popleft()
        if state.fault_work is not None:
            op = self._fault_recovery_op(chip_id, now)
            if op is not None:
                return op
        gc = state.gc
        if gc is not None and not gc.background:
            return self._gc_step(chip_id)
        # ---- BaseFtl._host_write_op, open-coded ----
        buffer = self.write_buffer
        if not buffer._live:
            return None
        # ---- _allocate_host_page, open-coded ----
        manager = self.managers[chip_id]
        fast = manager._fast
        sbqueue = manager._sbqueue
        wordlines = manager.wordlines
        if fast is not None and fast._next < wordlines:
            lsb_available = True
        else:
            lsb_available = len(state.free_blocks) \
                > self.config.gc_reserve_blocks
        msb_available = bool(sbqueue)
        addr = None
        alloc = None
        if lsb_available or msb_available:
            policy = self.policy
            if not msb_available:
                choice = PageType.LSB
            elif not lsb_available:
                choice = PageType.MSB
            else:
                utilization = buffer._live / buffer.capacity
                config = policy.config
                if utilization > config.u_high:
                    if self.quota.value > 0:
                        choice = PageType.LSB
                    else:
                        choice = policy._next_alternate
                        policy._next_alternate = PageType.MSB \
                            if choice is PageType.LSB else PageType.LSB
                elif utilization < config.u_low:
                    choice = PageType.MSB
                else:
                    choice = policy._next_alternate
                    policy._next_alternate = PageType.MSB \
                        if choice is PageType.LSB else PageType.LSB
            policy.decisions[choice] += 1
            if choice is PageType.LSB:
                if fast is not None:
                    # _take_lsb with an installed fast block, inlined
                    # (cannot fail; the install/free-block path below
                    # delegates to the method)
                    wordline = fast._next
                    fast._next = wordline + 1
                    block = fast.block
                    self.quota.value -= 1  # note_lsb_write, inlined
                    if fast._next >= wordlines:
                        sbqueue.append(
                            PhaseCursor(block, wordlines, PageType.MSB))
                        manager._fast = None
                        if self._trace is not None:
                            self._trace.event("2po.lsb_complete",
                                              chip=chip_id, block=block)
                        self._enqueue_parity_backup(
                            chip_id,
                            owner=self.mapping.global_block_of(
                                chip_id, block))
                    elif self.parity_interval > 0 \
                            and (wordline + 1) % self.parity_interval == 0:
                        self._enqueue_parity_backup(
                            chip_id,
                            owner=self.mapping.global_block_of(
                                chip_id, block))
                    page = 2 * wordline
                    channel, chip = self._coords[chip_id]
                    addr = tuple.__new__(PhysicalPageAddress,
                                         (channel, chip, block, page))
                    ptype = PageType.LSB
                    ppn = (chip_id * self._pages_per_chip
                           + block * self._ppb + page)
                else:
                    alloc = self._take_lsb(chip_id, for_gc=False)
                    if alloc is None:
                        alloc = self._take_msb(chip_id)
            else:
                # _take_msb, inlined (an MSB choice implies the SBQueue
                # is non-empty, so the take cannot fail)
                cursor = sbqueue[0]
                wordline = cursor._next
                cursor._next = wordline + 1
                block = cursor.block
                done = cursor._next >= wordlines
                if done:
                    sbqueue.popleft()
                quota = self.quota  # note_msb_write, inlined (saturating)
                if quota.value < quota.cap:
                    quota.value += 1
                page = 2 * wordline + 1
                channel, chip = self._coords[chip_id]
                addr = tuple.__new__(PhysicalPageAddress,
                                     (channel, chip, block, page))
                ptype = PageType.MSB
                ppn = (chip_id * self._pages_per_chip
                       + block * self._ppb + page)
                if done:
                    # Block fully written: GC-eligible, parity dead.
                    self._mark_block_full(chip_id, block)
        if addr is None:
            if alloc is None:
                # Write-blocked: start (or promote) a foreground
                # collection.
                if state.gc is None:
                    victim = self._select_victim(chip_id)
                    if victim is not None:
                        self._begin_gc(chip_id, victim, background=False)
                elif state.gc.background:
                    state.gc.background = False
                if state.gc is not None and not state.gc.background:
                    return self._gc_step(chip_id)
                return None
            addr, ptype = alloc
            # addr is a NamedTuple: index access skips the descriptor
            ppn = (addr[0] * self._cpc + addr[1]) * self._pages_per_chip \
                + addr[2] * self._ppb + addr[3]
        # ---- WriteBuffer.pop, open-coded ----
        if buffer._stale:  # stale marks exist only with coalescing on
            entry = buffer.pop()
        else:
            entry = buffer._fifo.popleft()
            elpn = entry.lpn
            resident = buffer._resident
            remaining = resident[elpn] - 1
            if remaining:
                resident[elpn] = remaining
            else:
                del resident[elpn]
            buffer._live -= 1
        lpn = entry.lpn
        # ---- MappingTable.map_write, open-coded (error paths delegate
        # so the exact exception is raised); keep in sync with
        # :meth:`repro.ftl.mapping.MappingTable.map_write` ----
        mapping = self.mapping
        p2l = mapping._p2l
        if not 0 <= lpn < mapping.logical_pages or p2l[ppn] >= 0:
            mapping.map_write(lpn, ppn)  # raises
        valid = mapping._valid
        l2p = mapping._l2p
        old = l2p[lpn]
        if old >= 0:
            p2l[old] = -1
            valid[old // self._ppb] -= 1
        else:
            mapping._mapped += 1
        l2p[lpn] = ppn
        p2l[ppn] = lpn
        gb = ppn // self._ppb
        valid[gb] += 1
        # write-clock accounting, inlined (see _note_block_write)
        self._write_clock += 1
        self._block_write_stamp[gb] = self._write_clock
        self.host_programs += 1
        hook = self._after_host_program
        if hook is not None:
            hook(chip_id, addr, ptype, now)
        # FlashOp built via object.__new__ + slot stores: skips the
        # dataclass __init__ frame (once per host program)
        op = _new(FlashOp)
        op.kind = _PROGRAM
        op.addr = addr
        op.tag = "host"
        op.lpn = lpn
        op.on_complete = None
        op.data = None
        op.source = None
        return op

    def _observe_host_program(self, chip_id, addr, ptype, now):
        # installed as the base _after_host_program hook only when a
        # predictor exists (see __init__), so predictor-less runs skip
        # the per-write hook call entirely
        self.predictor.observe_write(now)

    # ------------------------------------------------------------------
    # predictor-driven just-in-time collection (Section 6 extension)

    def _lsb_headroom(self, chip_id: int) -> int:
        """LSB pages this chip could serve before running dry."""
        manager = self.managers[chip_id]
        free_blocks = len(self.chips[chip_id].free_blocks)
        return manager.free_lsb_pages + free_blocks * self.wordlines

    def _predictor_wants_gc(self, chip_id: int,
                            now: "Optional[float]") -> bool:
        if self.predictor is None or not self.config.bg_gc_enabled:
            return False
        predicted = self.predictor.predicted_burst_pages(now)
        if predicted <= 0:
            return False
        per_chip_demand = predicted / self.geometry.total_chips
        quota_short = self.quota.value < min(self.quota.cap, predicted)
        capacity_short = self._lsb_headroom(chip_id) < per_chip_demand
        if not (quota_short or capacity_short):
            return False
        return self._select_victim(
            chip_id, self._bg_min_invalid()) is not None

    def wants_background_gc(self, chip_id: int) -> bool:
        """Base condition plus the predictor's demand trigger."""
        if super().wants_background_gc(chip_id):
            return True
        # No timestamp here: use the estimate as-is (the timestamped
        # decision happens in background_op anyway).
        return self._predictor_wants_gc(chip_id, now=None)

    def background_op(self, chip_id: int, now: float):
        """Idle-time work, including predictor-driven collection."""
        self._flush_parity_invalidations(chip_id)
        op = super().background_op(chip_id, now)
        if op is not None:
            return op
        state = self.chips[chip_id]
        if state.gc is not None or not self._predictor_wants_gc(chip_id,
                                                                now):
            return None
        victim = self._select_victim(chip_id, self._bg_min_invalid())
        if victim is None:
            return None
        self._begin_gc(chip_id, victim, background=True)
        return self._gc_step(chip_id)

    # ------------------------------------------------------------------
    # introspection

    def sbqueue_length(self, chip_id: int) -> int:
        """Blocks in the chip's slow block queue."""
        return self.managers[chip_id].sbqueue_length

    def counters(self):
        """Base counters plus flexFTL-specific state."""
        base = super().counters()
        base["quota"] = self.quota.value
        base["lsb_decisions"] = self.policy.decisions[PageType.LSB]
        base["msb_decisions"] = self.policy.decisions[PageType.MSB]
        return base
