"""Write cursors: per-block program-position trackers.

An FTL writes a block through a *cursor* that walks a program order.
FPS-based FTLs walk the fixed interleaved order of Figure 2(b); flexFTL
walks the two-phase (2PO / ``RPSfull``) order in two separate cursors —
an LSB-phase cursor while the block is *fast* and an MSB-phase cursor
while it is *slow*.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.nand.page_types import PageType, split_index


class FpsCursor:
    """Walks one block in the fixed program sequence order."""

    def __init__(self, block: int, wordlines: int) -> None:
        # Imported lazily: repro.core.block_manager imports this module,
        # so a top-level import of repro.core.rps would be circular.
        from repro.core.rps import fps_order

        self.block = block
        self.wordlines = wordlines
        self._order: List[int] = fps_order(wordlines)
        self._pos = 0

    @property
    def done(self) -> bool:
        """True when every page of the block has been taken."""
        return self._pos >= len(self._order)

    @property
    def remaining(self) -> int:
        """Pages not yet taken."""
        return len(self._order) - self._pos

    def peek_type(self) -> PageType:
        """Page type of the next page in the order."""
        if self.done:
            raise IndexError(f"block {self.block} cursor exhausted")
        return split_index(self._order[self._pos])[1]

    def take(self) -> Tuple[int, PageType]:
        """Consume and return the next ``(wordline, ptype)``."""
        if self.done:
            raise IndexError(f"block {self.block} cursor exhausted")
        index = self._order[self._pos]
        self._pos += 1
        return split_index(index)

    def __repr__(self) -> str:
        return (
            f"FpsCursor(block={self.block}, pos={self._pos}/"
            f"{len(self._order)}, next="
            + ("-" if self.done else self.peek_type().name) + ")"
        )


class PhaseCursor:
    """Walks one page type of a block in word-line order (2PO phases)."""

    def __init__(self, block: int, wordlines: int, ptype: PageType) -> None:
        self.block = block
        self.wordlines = wordlines
        self.ptype = ptype
        self._next = 0

    @property
    def done(self) -> bool:
        """True when this phase of the block is fully written."""
        return self._next >= self.wordlines

    @property
    def remaining(self) -> int:
        """Pages left in this phase."""
        return self.wordlines - self._next

    def take(self) -> Tuple[int, PageType]:
        """Consume and return the next ``(wordline, ptype)``."""
        if self.done:
            raise IndexError(
                f"block {self.block} {self.ptype.name} phase exhausted"
            )
        wordline = self._next
        self._next += 1
        return wordline, self.ptype

    def __repr__(self) -> str:
        return (
            f"PhaseCursor(block={self.block}, {self.ptype.name}, "
            f"{self._next}/{self.wordlines})"
        )
