"""Machinery shared by all evaluated FTLs.

:class:`BaseFtl` implements everything the paper's four FTLs have in
common: page-level mapping, per-chip block pools, greedy garbage
collection (foreground when a write cannot be placed, background during
idle times when free blocks drop under 10 % of capacity, as Section 4.1
specifies for *all* FTLs), and the controller-facing operation
interface.  Subclasses decide page placement — which block, which page
type, in which program order — and their backup policy.
"""

from __future__ import annotations

import abc
import dataclasses
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.ftl.backup import BackupBlockManager
from repro.ftl.mapping import MappingTable
from repro.nand.array import NandArray
from repro.nand.geometry import PhysicalPageAddress
from repro.nand.page_types import PageType
from repro.sim.ops import FlashOp, OpKind
from repro.sim.queues import WriteBuffer


@dataclasses.dataclass(frozen=True)
class FtlConfig:
    """Tunables shared by all FTLs (paper values as defaults).

    Attributes:
        op_ratio: fraction of data capacity withheld from the logical
            view (over-provisioning).
        gc_threshold_fraction: background GC triggers when a chip's
            free blocks fall below this fraction of its data blocks
            (paper: 10 % of total capacity).
        gc_reserve_blocks: free blocks kept back from host allocation
            so garbage collection always has room to relocate into.
        backup_blocks_per_chip: blocks reserved per chip for parity
            backup pages (only used by FTLs with ``uses_backup``).
        bg_gc_enabled: allow background GC during idle times.
        bg_gc_min_invalid_fraction: a background GC only starts when
            its victim has at least this fraction of invalid pages —
            idle-time collection should reclaim cheap blocks, not churn
            nearly-full ones (foreground GC, which is forced, has no
            such floor).
        gc_policy: victim selection policy — ``"greedy"`` (most
            invalid pages; what the paper's FTLs use) or
            ``"cost_benefit"`` (age-weighted benefit/cost after
            Kawaguchi et al., which separates hot and cold blocks).
        wear_aware_allocation: pick the least-worn free block instead
            of recycling in FIFO order (a light static wear-levelling
            substitute; off by default to match the paper's FTLs).
    """

    op_ratio: float = 0.20
    gc_threshold_fraction: float = 0.10
    gc_reserve_blocks: int = 2
    backup_blocks_per_chip: int = 2
    bg_gc_enabled: bool = True
    bg_gc_min_invalid_fraction: float = 0.25
    gc_policy: str = "greedy"
    wear_aware_allocation: bool = False

    def __post_init__(self) -> None:
        if not (0.0 < self.op_ratio < 1.0):
            raise ValueError("op_ratio must be in (0, 1)")
        if not (0.0 <= self.gc_threshold_fraction < 1.0):
            raise ValueError("gc_threshold_fraction must be in [0, 1)")
        if self.gc_reserve_blocks < 1:
            raise ValueError("gc_reserve_blocks must be at least 1")
        if self.backup_blocks_per_chip < 1:
            raise ValueError("backup_blocks_per_chip must be at least 1")
        if not (0.0 <= self.bg_gc_min_invalid_fraction <= 1.0):
            raise ValueError(
                "bg_gc_min_invalid_fraction must be in [0, 1]"
            )
        if self.gc_policy not in ("greedy", "cost_benefit"):
            raise ValueError(
                f"unknown gc_policy {self.gc_policy!r}; choose "
                f"'greedy' or 'cost_benefit'"
            )


class GcJob:
    """State of one in-progress garbage collection on one chip."""

    def __init__(self, victim_block: int, victim_gb: int,
                 valid_lpns: List[int], background: bool) -> None:
        self.victim_block = victim_block
        self.victim_gb = victim_gb
        self.valid_lpns: Deque[int] = deque(valid_lpns)
        self.background = background
        self.copied = 0


class ChipState:
    """Per-chip bookkeeping common to all FTLs."""

    def __init__(self, chip_id: int) -> None:
        self.chip_id = chip_id
        self.free_blocks: Deque[int] = deque()
        self.full_blocks: Set[int] = set()
        self.pending: Deque[FlashOp] = deque()
        self.gc: Optional[GcJob] = None
        self.backup: Optional[BackupBlockManager] = None


class BaseFtl(abc.ABC):
    """Abstract page-mapping FTL driving one NAND array.

    The controller interacts with an FTL through four methods:
    :meth:`next_op` (host-driven work for an idle chip),
    :meth:`wants_background_gc` / :meth:`background_op` (idle-time
    work), and :meth:`lookup` (read address resolution).
    """

    #: Human-readable FTL name (used in reports).
    name: str = "base"
    #: Whether this FTL reserves backup blocks for parity pages.
    uses_backup: bool = False
    #: Program order inside backup blocks: "fps" for FPS devices,
    #: "lsb" for RPS devices writing parity to LSB pages only.
    backup_order: str = "fps"

    def __init__(self, array: NandArray, write_buffer: WriteBuffer,
                 config: Optional[FtlConfig] = None) -> None:
        self.array = array
        self.geometry = array.geometry
        self.write_buffer = write_buffer
        self.config = config or FtlConfig()
        self.wordlines = self.geometry.wordlines_per_block
        # geometry scalars used by the per-write inlined ppn math
        self._cpc = self.geometry.chips_per_channel
        self._ppb = self.geometry.pages_per_block
        self._pages_per_chip = self.geometry.pages_per_chip

        backup_blocks = (self.config.backup_blocks_per_chip
                         if self.uses_backup else 0)
        if backup_blocks >= self.geometry.blocks_per_chip:
            raise ValueError("backup blocks exceed blocks per chip")
        self.data_blocks_per_chip = self.geometry.blocks_per_chip \
            - backup_blocks

        self.chips: List[ChipState] = []
        for chip_id in self.geometry.iter_chip_ids():
            state = ChipState(chip_id)
            state.free_blocks.extend(range(self.data_blocks_per_chip))
            if self.uses_backup:
                reserved = list(range(self.data_blocks_per_chip,
                                      self.geometry.blocks_per_chip))
                state.backup = BackupBlockManager(
                    reserved, self.wordlines, order=self.backup_order
                )
            self.chips.append(state)

        data_pages = (self.data_blocks_per_chip
                      * self.geometry.pages_per_block
                      * self.geometry.total_chips)
        self.logical_pages = max(1, int(data_pages
                                        * (1.0 - self.config.op_ratio)))
        self.mapping = MappingTable(self.geometry, self.logical_pages)

        self.gc_threshold_blocks = max(
            1, int(self.data_blocks_per_chip
                   * self.config.gc_threshold_fraction)
        )

        # logical write clock for cost-benefit victim ageing: one tick
        # per page program, per-block stamp of the latest write
        self._write_clock = 0
        self._block_write_stamp: List[int] = [0] * self.geometry.total_blocks

        # accounting
        self.host_programs = 0
        self.gc_programs = 0
        self.backup_programs = 0
        self.foreground_gcs = 0
        self.background_gcs = 0

    # ------------------------------------------------------------------
    # controller interface

    def next_op(self, chip_id: int, now: float) -> Optional[FlashOp]:
        """Host-driven work for an idle chip, or None.

        Order of precedence: queued operations (parity writes, the
        program half of a GC page copy), steps of an in-progress
        *foreground* GC, then a host page write from the write buffer
        (which may itself kick off a foreground GC when no free page
        can be allocated).
        """
        state = self.chips[chip_id]
        if state.pending:
            return state.pending.popleft()
        if state.gc is not None and not state.gc.background:
            return self._gc_step(chip_id)
        return self._host_write_op(chip_id, now)

    def wants_background_gc(self, chip_id: int) -> bool:
        """Whether idle-time work is available for this chip."""
        if not self.config.bg_gc_enabled:
            return False
        state = self.chips[chip_id]
        if state.pending or state.gc is not None:
            return True
        return (len(state.free_blocks) < self.gc_threshold_blocks
                and self._select_victim(
                    chip_id, self._bg_min_invalid()) is not None)

    def background_op(self, chip_id: int, now: float) -> Optional[FlashOp]:
        """Idle-time work: continue or start a background GC."""
        state = self.chips[chip_id]
        if state.pending:
            return state.pending.popleft()
        if state.gc is not None:
            return self._gc_step(chip_id)
        if not self.config.bg_gc_enabled:
            return None
        if len(state.free_blocks) >= self.gc_threshold_blocks:
            return None
        victim = self._select_victim(chip_id, self._bg_min_invalid())
        if victim is None:
            return None
        self._begin_gc(chip_id, victim, background=True)
        return self._gc_step(chip_id)

    def lookup(self, lpn: int) -> Optional[int]:
        """Current physical page of ``lpn`` (None when unmapped)."""
        return self.mapping.lookup(lpn)

    # ------------------------------------------------------------------
    # host write path

    def _host_write_op(self, chip_id: int, now: float) -> Optional[FlashOp]:
        buffer = self.write_buffer
        if not buffer._live:  # is_empty, inlined (polled per idle chip)
            return None
        alloc = self._allocate_host_page(chip_id, now)
        if alloc is None:
            state = self.chips[chip_id]
            if state.gc is None:
                victim = self._select_victim(chip_id)
                if victim is not None:
                    self._begin_gc(chip_id, victim, background=False)
            elif state.gc.background:
                # A background collection is in the way of an urgent
                # write: promote it and finish it in the foreground.
                state.gc.background = False
            if state.gc is not None and not state.gc.background:
                return self._gc_step(chip_id)
            return None
        addr, ptype = alloc
        entry = buffer.pop()
        # ppn math inlined (geometry.ppn re-validates an address the
        # allocator just built)
        ppn = (addr.channel * self._cpc + addr.chip) \
            * self._pages_per_chip + addr.block * self._ppb + addr.page
        self.mapping.map_write(entry.lpn, ppn)
        # write-clock accounting, inlined (see _note_block_write)
        self._write_clock += 1
        self._block_write_stamp[ppn // self._ppb] = self._write_clock
        self.host_programs += 1
        hook = self._after_host_program
        if hook is not None:
            hook(chip_id, addr, ptype, now)
        return FlashOp(OpKind.PROGRAM, addr, tag="host", lpn=entry.lpn)

    # ------------------------------------------------------------------
    # garbage collection

    def _note_block_write(self, global_block: int) -> None:
        """Advance the logical write clock and stamp the block."""
        self._write_clock += 1
        self._block_write_stamp[global_block] = self._write_clock

    def _victim_score(self, global_block: int, invalid: int) -> float:
        """Victim desirability under the configured policy (higher =
        better)."""
        if self.config.gc_policy == "greedy":
            return float(invalid)
        # cost-benefit: (1 - u) * age / (2 u); a fully-invalid block is
        # a free win regardless of age.
        pages = self.geometry.pages_per_block
        u = (pages - invalid) / pages
        if u <= 0.0:
            return float("inf")
        age = self._write_clock - self._block_write_stamp[global_block]
        return (1.0 - u) * max(1, age) / (2.0 * u)

    def _select_victim(self, chip_id: int,
                       min_invalid: int = 1) -> Optional[int]:
        """Pick a GC victim among the chip's full blocks.

        Only blocks with at least ``min_invalid`` invalid pages are
        eligible; among those the configured policy scores candidates —
        greedy (most invalid; what the paper's FTLs use) or
        age-weighted cost-benefit.
        """
        state = self.chips[chip_id]
        best_block: Optional[int] = None
        best_score = float("-inf")
        for block in state.full_blocks:
            gb = self.mapping.global_block_of(chip_id, block)
            invalid = self.mapping.invalid_count(gb)
            if invalid < min_invalid:
                continue
            score = self._victim_score(gb, invalid)
            if score > best_score:
                best_score = score
                best_block = block
        return best_block

    def _bg_min_invalid(self) -> int:
        """Invalid-page floor for background victim selection."""
        return max(1, int(self.geometry.pages_per_block
                          * self.config.bg_gc_min_invalid_fraction))

    def _begin_gc(self, chip_id: int, victim_block: int,
                  background: bool) -> None:
        state = self.chips[chip_id]
        if state.gc is not None:
            raise RuntimeError(f"chip {chip_id} already collecting")
        gb = self.mapping.global_block_of(chip_id, victim_block)
        valid = list(self.mapping.valid_lpns_in_block(gb))
        state.gc = GcJob(victim_block, gb, valid, background)
        state.full_blocks.discard(victim_block)
        if background:
            self.background_gcs += 1
        else:
            self.foreground_gcs += 1

    def _gc_step(self, chip_id: int, *_unused: object) -> Optional[FlashOp]:
        """Produce the next GC operation for the chip.

        Page copies are emitted as a read immediately followed (via the
        pending queue) by the program of the relocated page; when no
        valid pages remain the victim is erased and returned to the
        free pool.
        """
        state = self.chips[chip_id]
        job = state.gc
        if job is None:
            return None
        while job.valid_lpns:
            lpn = job.valid_lpns.popleft()
            ppn = self.mapping.lookup(lpn)
            if ppn is None or ppn // self._ppb != job.victim_gb:
                continue  # superseded by a newer host write meanwhile
            target = self._allocate_gc_page(chip_id)
            if target is None:
                # No room to relocate: abandon for now, retry later.
                job.valid_lpns.appendleft(lpn)
                return None
            target_addr, target_ptype = target
            source_addr = self.geometry.address_of(ppn)
            target_ppn = (target_addr.channel * self._cpc
                          + target_addr.chip) * self._pages_per_chip \
                + target_addr.block * self._ppb + target_addr.page
            self.mapping.map_write(lpn, target_ppn)
            # write-clock accounting, inlined (see _note_block_write)
            self._write_clock += 1
            self._block_write_stamp[target_ppn // self._ppb] = \
                self._write_clock
            self.gc_programs += 1
            job.copied += 1
            hook = self._after_gc_program
            if hook is not None:
                hook(chip_id, target_addr, target_ptype)
            state.pending.append(
                FlashOp(OpKind.PROGRAM, target_addr, tag="gc", lpn=lpn)
            )
            return FlashOp(OpKind.READ, source_addr, tag="gc", lpn=lpn)
        # victim drained: erase it and recycle
        state.gc = None
        self.mapping.note_block_erased(job.victim_gb)
        state.free_blocks.append(job.victim_block)
        hook = self._after_gc_complete
        if hook is not None:
            hook(chip_id, job)
        erase_addr = PhysicalPageAddress(
            *self.geometry.chip_coords(chip_id), job.victim_block, 0
        )
        return FlashOp(OpKind.ERASE, erase_addr, tag="gc")

    # ------------------------------------------------------------------
    # helpers for subclasses

    def _take_free_block(self, chip_id: int, for_gc: bool = False
                         ) -> Optional[int]:
        """Pop a free block; host allocations respect the GC reserve."""
        state = self.chips[chip_id]
        if not for_gc and len(state.free_blocks) \
                <= self.config.gc_reserve_blocks:
            return None
        if not state.free_blocks:
            return None
        if not self.config.wear_aware_allocation:
            return state.free_blocks.popleft()
        chip = self.array.chips[chip_id]
        chosen = min(state.free_blocks,
                     key=lambda block: chip.blocks[block].erase_count)
        state.free_blocks.remove(chosen)
        return chosen

    def _page_address(self, chip_id: int, block: int, wordline: int,
                      ptype: PageType) -> PhysicalPageAddress:
        """Build a physical address from chip-local coordinates."""
        # chip_coords + page_index inlined (per-allocation hot path)
        channel, chip = divmod(chip_id, self._cpc)
        return PhysicalPageAddress(channel, chip, block,
                                   2 * wordline + ptype)

    def _mark_block_full(self, chip_id: int, block: int) -> None:
        """Move a fully-written block into the GC-eligible full set."""
        self.chips[chip_id].full_blocks.add(block)
        self._on_block_full(chip_id, block)

    def _enqueue_parity_backup(self, chip_id: int, owner: object) -> None:
        """Queue the NAND operations for one parity-page backup.

        Allocates a parity slot for ``owner`` from the chip's backup
        manager and appends the resulting operations — possibly a
        backup-block erase plus live-parity re-programs, then the
        parity program itself — to the chip's pending queue.
        """
        state = self.chips[chip_id]
        if state.backup is None:
            raise RuntimeError(f"{self.name} has no backup blocks")
        slot, cycle = state.backup.allocate(owner)
        channel, chip = self.geometry.chip_coords(chip_id)
        if cycle is not None:
            state.pending.append(FlashOp(
                OpKind.ERASE,
                PhysicalPageAddress(channel, chip, cycle.erase_block, 0),
                tag="backup",
            ))
            for _owner, new_slot in cycle.relocations:
                state.pending.append(FlashOp(
                    OpKind.PROGRAM,
                    PhysicalPageAddress(channel, chip, new_slot.block,
                                        new_slot.page),
                    tag="backup",
                ))
                self.backup_programs += 1
        state.pending.append(FlashOp(
            OpKind.PROGRAM,
            PhysicalPageAddress(channel, chip, slot.block, slot.page),
            tag="backup",
        ))
        self.backup_programs += 1

    # ------------------------------------------------------------------
    # subclass interface

    @abc.abstractmethod
    def _allocate_host_page(
        self, chip_id: int, now: float
    ) -> Optional[Tuple[PhysicalPageAddress, PageType]]:
        """Pick the physical page for the next host write on a chip.

        Returns None when no page can be allocated without a garbage
        collection (the base class then drives one).
        """

    @abc.abstractmethod
    def _allocate_gc_page(
        self, chip_id: int
    ) -> Optional[Tuple[PhysicalPageAddress, PageType]]:
        """Pick the physical page for a GC relocation on a chip."""

    #: Hook: called as ``hook(chip_id, addr, ptype, now)`` after a host
    #: page write is placed.  ``None`` (the default) means "no hook":
    #: the per-write fast path skips the call entirely.  Subclasses
    #: override with a method, or assign a bound callable per instance.
    _after_host_program: Optional[Callable[..., None]] = None

    #: Hook: called as ``hook(chip_id, addr, ptype)`` after a GC
    #: relocation page is placed, or ``None`` for no hook.
    _after_gc_program: Optional[Callable[..., None]] = None

    def _on_block_full(self, chip_id: int, block: int) -> None:
        """Hook: called when a data block becomes fully written."""

    #: Hook: called as ``hook(chip_id, job)`` when a GC finishes
    #: (victim already recycled), or ``None`` for no hook.
    _after_gc_complete: Optional[Callable[..., None]] = None

    # ------------------------------------------------------------------
    # accounting

    def free_block_count(self, chip_id: int) -> int:
        """Free blocks currently available on a chip."""
        return len(self.chips[chip_id].free_blocks)

    def counters(self) -> Dict[str, int]:
        """Aggregate operation counters for reports."""
        return {
            "host_programs": self.host_programs,
            "gc_programs": self.gc_programs,
            "backup_programs": self.backup_programs,
            "foreground_gcs": self.foreground_gcs,
            "background_gcs": self.background_gcs,
            "erases": self.array.total_erases,
            "lsb_programs": self.array.lsb_programs,
            "msb_programs": self.array.msb_programs,
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
