"""Machinery shared by all evaluated FTLs.

:class:`BaseFtl` implements everything the paper's four FTLs have in
common: page-level mapping, per-chip block pools, greedy garbage
collection (foreground when a write cannot be placed, background during
idle times when free blocks drop under 10 % of capacity, as Section 4.1
specifies for *all* FTLs), and the controller-facing operation
interface.  Subclasses decide page placement — which block, which page
type, in which program order — and their backup policy.
"""

from __future__ import annotations

import abc
import dataclasses
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.faults.badblocks import BadBlockManager
from repro.ftl.backup import BackupBlockManager
from repro.ftl.mapping import MappingTable
from repro.nand.array import NandArray
from repro.nand.geometry import PhysicalPageAddress
from repro.nand.page_types import PageType
from repro.nand.power import apply_power_loss_to_in_flight
from repro.sim.ops import FlashOp, OpKind
from repro.sim.queues import WriteBuffer

if False:  # typing-only import; repro.sim.stats needs no runtime binding
    from repro.sim.stats import FaultStats


@dataclasses.dataclass(frozen=True)
class FtlConfig:
    """Tunables shared by all FTLs (paper values as defaults).

    Attributes:
        op_ratio: fraction of data capacity withheld from the logical
            view (over-provisioning).
        gc_threshold_fraction: background GC triggers when a chip's
            free blocks fall below this fraction of its data blocks
            (paper: 10 % of total capacity).
        gc_reserve_blocks: free blocks kept back from host allocation
            so garbage collection always has room to relocate into.
        backup_blocks_per_chip: blocks reserved per chip for parity
            backup pages (only used by FTLs with ``uses_backup``).
        bg_gc_enabled: allow background GC during idle times.
        bg_gc_min_invalid_fraction: a background GC only starts when
            its victim has at least this fraction of invalid pages —
            idle-time collection should reclaim cheap blocks, not churn
            nearly-full ones (foreground GC, which is forced, has no
            such floor).
        gc_policy: victim selection policy — ``"greedy"`` (most
            invalid pages; what the paper's FTLs use) or
            ``"cost_benefit"`` (age-weighted benefit/cost after
            Kawaguchi et al., which separates hot and cold blocks).
        wear_aware_allocation: pick the least-worn free block instead
            of recycling in FIFO order (a light static wear-levelling
            substitute; off by default to match the paper's FTLs).
        spare_blocks_per_chip: blocks held back per chip as the
            bad-block replacement reserve (:mod:`repro.faults`).  Zero
            (the default, matching the paper's fault-free evaluation)
            means the first retired block already degrades the device
            to read-only.
    """

    op_ratio: float = 0.20
    gc_threshold_fraction: float = 0.10
    gc_reserve_blocks: int = 2
    backup_blocks_per_chip: int = 2
    bg_gc_enabled: bool = True
    bg_gc_min_invalid_fraction: float = 0.25
    gc_policy: str = "greedy"
    wear_aware_allocation: bool = False
    spare_blocks_per_chip: int = 0

    def __post_init__(self) -> None:
        if not (0.0 < self.op_ratio < 1.0):
            raise ValueError("op_ratio must be in (0, 1)")
        if not (0.0 <= self.gc_threshold_fraction < 1.0):
            raise ValueError("gc_threshold_fraction must be in [0, 1)")
        if self.gc_reserve_blocks < 1:
            raise ValueError("gc_reserve_blocks must be at least 1")
        if self.backup_blocks_per_chip < 1:
            raise ValueError("backup_blocks_per_chip must be at least 1")
        if not (0.0 <= self.bg_gc_min_invalid_fraction <= 1.0):
            raise ValueError(
                "bg_gc_min_invalid_fraction must be in [0, 1]"
            )
        if self.gc_policy not in ("greedy", "cost_benefit"):
            raise ValueError(
                f"unknown gc_policy {self.gc_policy!r}; choose "
                f"'greedy' or 'cost_benefit'"
            )
        if self.spare_blocks_per_chip < 0:
            raise ValueError("spare_blocks_per_chip must be non-negative")


class GcJob:
    """State of one in-progress garbage collection on one chip."""

    def __init__(self, victim_block: int, victim_gb: int,
                 valid_lpns: List[int], background: bool) -> None:
        self.victim_block = victim_block
        self.victim_gb = victim_gb
        self.valid_lpns: Deque[int] = deque(valid_lpns)
        self.background = background
        self.copied = 0


class SalvageJob:
    """Live pages to relocate off a retired (still readable) block."""

    __slots__ = ("block", "gb", "valid_lpns")

    def __init__(self, block: int, gb: int, valid_lpns: List[int]) -> None:
        self.block = block
        self.gb = gb
        self.valid_lpns: Deque[int] = deque(valid_lpns)


class FaultWork:
    """Per-chip recovery backlog created by fault handling.

    ``redrive`` holds logical pages whose data is controller-RAM
    resident (an interrupted write, or an LSB page the parity backup
    reconstructed) waiting to be re-programmed to a fresh page;
    ``salvage`` holds relocation jobs draining the live pages off
    retired blocks.  :meth:`BaseFtl._fault_recovery_op` services both
    ahead of new host writes.
    """

    __slots__ = ("redrive", "salvage")

    def __init__(self) -> None:
        self.redrive: Deque[int] = deque()
        self.salvage: Deque[SalvageJob] = deque()


class ChipState:
    """Per-chip bookkeeping common to all FTLs."""

    def __init__(self, chip_id: int) -> None:
        self.chip_id = chip_id
        self.free_blocks: Deque[int] = deque()
        self.full_blocks: Set[int] = set()
        self.pending: Deque[FlashOp] = deque()
        self.gc: Optional[GcJob] = None
        self.backup: Optional[BackupBlockManager] = None
        self.bad_blocks: Optional[BadBlockManager] = None
        #: recovery backlog, or None when there is none (the common
        #: case; ``next_op`` only pays a None check for it)
        self.fault_work: Optional[FaultWork] = None


class BaseFtl(abc.ABC):
    """Abstract page-mapping FTL driving one NAND array.

    The controller interacts with an FTL through four methods:
    :meth:`next_op` (host-driven work for an idle chip),
    :meth:`wants_background_gc` / :meth:`background_op` (idle-time
    work), and :meth:`lookup` (read address resolution).
    """

    #: Human-readable FTL name (used in reports).
    name: str = "base"
    #: Whether this FTL reserves backup blocks for parity pages.
    uses_backup: bool = False
    #: Program order inside backup blocks: "fps" for FPS devices,
    #: "lsb" for RPS devices writing parity to LSB pages only.
    backup_order: str = "fps"

    #: Observability hooks (:mod:`repro.observability`), planted by
    #: ``Tracer.install``.  Class-level ``None`` keeps untraced runs
    #: free of any per-site cost beyond one attribute load; only cold
    #: paths (GC begin, block close, parity backup, fault recovery)
    #: carry emission sites.
    _trace = None
    _metrics = None
    #: pre-resolved per-chip parity.writes counters, planted by
    #: Tracer.install (the parity path is too frequent for labeled
    #: registry lookups)
    _parity_counters = None

    def __init__(self, array: NandArray, write_buffer: WriteBuffer,
                 config: Optional[FtlConfig] = None) -> None:
        self.array = array
        self.geometry = array.geometry
        self.write_buffer = write_buffer
        self.config = config or FtlConfig()
        self.wordlines = self.geometry.wordlines_per_block
        # geometry scalars used by the per-write inlined ppn math
        self._cpc = self.geometry.chips_per_channel
        self._ppb = self.geometry.pages_per_block
        self._pages_per_chip = self.geometry.pages_per_chip

        backup_blocks = (self.config.backup_blocks_per_chip
                         if self.uses_backup else 0)
        spare_blocks = self.config.spare_blocks_per_chip
        if backup_blocks + spare_blocks >= self.geometry.blocks_per_chip:
            raise ValueError(
                "backup and spare blocks exceed blocks per chip")
        # Per-chip block layout: [data | spares | backup].  Spares sit
        # between so the backup region keeps its historical position at
        # the top of the chip.
        self.data_blocks_per_chip = self.geometry.blocks_per_chip \
            - backup_blocks - spare_blocks
        self.spare_blocks_per_chip = spare_blocks
        #: first chip-local block id of the backup region (== the end
        #: of the data+spare region, whether or not backup is used)
        self.backup_block_start = self.data_blocks_per_chip + spare_blocks

        #: fault counters shared with the controller
        #: (:class:`repro.sim.stats.FaultStats`); None while fault
        #: injection is not armed.
        self.fault_stats: "Optional[FaultStats]" = None
        #: True once a chip ran out of spare blocks — the controller
        #: then stops accepting writes (read-only degraded mode).
        self.degraded = False

        self.chips: List[ChipState] = []
        for chip_id in self.geometry.iter_chip_ids():
            state = ChipState(chip_id)
            state.free_blocks.extend(range(self.data_blocks_per_chip))
            state.bad_blocks = BadBlockManager(
                spare_blocks=range(self.data_blocks_per_chip,
                                   self.backup_block_start)
            )
            if self.uses_backup:
                reserved = list(range(self.backup_block_start,
                                      self.geometry.blocks_per_chip))
                state.backup = BackupBlockManager(
                    reserved, self.wordlines, order=self.backup_order
                )
            self.chips.append(state)

        data_pages = (self.data_blocks_per_chip
                      * self.geometry.pages_per_block
                      * self.geometry.total_chips)
        self.logical_pages = max(1, int(data_pages
                                        * (1.0 - self.config.op_ratio)))
        self.mapping = MappingTable(self.geometry, self.logical_pages)

        self.gc_threshold_blocks = max(
            1, int(self.data_blocks_per_chip
                   * self.config.gc_threshold_fraction)
        )

        # logical write clock for cost-benefit victim ageing: one tick
        # per page program, per-block stamp of the latest write
        self._write_clock = 0
        self._block_write_stamp: List[int] = [0] * self.geometry.total_blocks

        # accounting
        self.host_programs = 0
        self.gc_programs = 0
        self.backup_programs = 0
        self.foreground_gcs = 0
        self.background_gcs = 0

    # ------------------------------------------------------------------
    # controller interface

    def next_op(self, chip_id: int, now: float) -> Optional[FlashOp]:
        """Host-driven work for an idle chip, or None.

        Order of precedence: queued operations (parity writes, the
        program half of a GC page copy), steps of an in-progress
        *foreground* GC, then a host page write from the write buffer
        (which may itself kick off a foreground GC when no free page
        can be allocated).
        """
        state = self.chips[chip_id]
        if state.pending:
            return state.pending.popleft()
        if state.fault_work is not None:
            op = self._fault_recovery_op(chip_id, now)
            if op is not None:
                return op
        if state.gc is not None and not state.gc.background:
            return self._gc_step(chip_id)
        return self._host_write_op(chip_id, now)

    def wants_background_gc(self, chip_id: int) -> bool:
        """Whether idle-time work is available for this chip."""
        state = self.chips[chip_id]
        if state.fault_work is not None:
            return True  # drain recovery work even with bg GC off
        if not self.config.bg_gc_enabled:
            return False
        if state.pending or state.gc is not None:
            return True
        return (len(state.free_blocks) < self.gc_threshold_blocks
                and self._select_victim(
                    chip_id, self._bg_min_invalid()) is not None)

    def background_op(self, chip_id: int, now: float) -> Optional[FlashOp]:
        """Idle-time work: recovery backlog, then garbage collection."""
        state = self.chips[chip_id]
        if state.pending:
            return state.pending.popleft()
        if state.fault_work is not None:
            op = self._fault_recovery_op(chip_id, now)
            if op is not None:
                return op
        if state.gc is not None:
            return self._gc_step(chip_id)
        if not self.config.bg_gc_enabled:
            return None
        if len(state.free_blocks) >= self.gc_threshold_blocks:
            return None
        victim = self._select_victim(chip_id, self._bg_min_invalid())
        if victim is None:
            return None
        self._begin_gc(chip_id, victim, background=True)
        return self._gc_step(chip_id)

    def lookup(self, lpn: int) -> Optional[int]:
        """Current physical page of ``lpn`` (None when unmapped)."""
        return self.mapping.lookup(lpn)

    # ------------------------------------------------------------------
    # host write path

    def _host_write_op(self, chip_id: int, now: float) -> Optional[FlashOp]:
        buffer = self.write_buffer
        if not buffer._live:  # is_empty, inlined (polled per idle chip)
            return None
        alloc = self._allocate_host_page(chip_id, now)
        if alloc is None:
            state = self.chips[chip_id]
            if state.gc is None:
                victim = self._select_victim(chip_id)
                if victim is not None:
                    self._begin_gc(chip_id, victim, background=False)
            elif state.gc.background:
                # A background collection is in the way of an urgent
                # write: promote it and finish it in the foreground.
                state.gc.background = False
            if state.gc is not None and not state.gc.background:
                return self._gc_step(chip_id)
            return None
        addr, ptype = alloc
        entry = buffer.pop()
        # ppn math inlined (geometry.ppn re-validates an address the
        # allocator just built)
        ppn = (addr.channel * self._cpc + addr.chip) \
            * self._pages_per_chip + addr.block * self._ppb + addr.page
        self.mapping.map_write(entry.lpn, ppn)
        # write-clock accounting, inlined (see _note_block_write)
        self._write_clock += 1
        self._block_write_stamp[ppn // self._ppb] = self._write_clock
        self.host_programs += 1
        hook = self._after_host_program
        if hook is not None:
            hook(chip_id, addr, ptype, now)
        return FlashOp(OpKind.PROGRAM, addr, tag="host", lpn=entry.lpn)

    # ------------------------------------------------------------------
    # garbage collection

    def _note_block_write(self, global_block: int) -> None:
        """Advance the logical write clock and stamp the block."""
        self._write_clock += 1
        self._block_write_stamp[global_block] = self._write_clock

    def _victim_score(self, global_block: int, invalid: int) -> float:
        """Victim desirability under the configured policy (higher =
        better)."""
        if self.config.gc_policy == "greedy":
            return float(invalid)
        # cost-benefit: (1 - u) * age / (2 u); a fully-invalid block is
        # a free win regardless of age.
        pages = self.geometry.pages_per_block
        u = (pages - invalid) / pages
        if u <= 0.0:
            return float("inf")
        age = self._write_clock - self._block_write_stamp[global_block]
        return (1.0 - u) * max(1, age) / (2.0 * u)

    def _select_victim(self, chip_id: int,
                       min_invalid: int = 1) -> Optional[int]:
        """Pick a GC victim among the chip's full blocks.

        Only blocks with at least ``min_invalid`` invalid pages are
        eligible; among those the configured policy scores candidates —
        greedy (most invalid; what the paper's FTLs use) or
        age-weighted cost-benefit.
        """
        state = self.chips[chip_id]
        best_block: Optional[int] = None
        best_score = float("-inf")
        for block in state.full_blocks:
            gb = self.mapping.global_block_of(chip_id, block)
            invalid = self.mapping.invalid_count(gb)
            if invalid < min_invalid:
                continue
            score = self._victim_score(gb, invalid)
            if score > best_score:
                best_score = score
                best_block = block
        return best_block

    def _bg_min_invalid(self) -> int:
        """Invalid-page floor for background victim selection."""
        return max(1, int(self.geometry.pages_per_block
                          * self.config.bg_gc_min_invalid_fraction))

    def _begin_gc(self, chip_id: int, victim_block: int,
                  background: bool) -> None:
        state = self.chips[chip_id]
        if state.gc is not None:
            raise RuntimeError(f"chip {chip_id} already collecting")
        gb = self.mapping.global_block_of(chip_id, victim_block)
        valid = list(self.mapping.valid_lpns_in_block(gb))
        state.gc = GcJob(victim_block, gb, valid, background)
        state.full_blocks.discard(victim_block)
        if background:
            self.background_gcs += 1
        else:
            self.foreground_gcs += 1
        if self._trace is not None:
            self._trace.event("gc.victim", chip=chip_id,
                              block=victim_block, valid=len(valid),
                              background=int(background))
        if self._metrics is not None:
            self._metrics.counter(
                "gc.collections", chip=chip_id,
                mode="background" if background else "foreground").inc()

    def _gc_step(self, chip_id: int, *_unused: object) -> Optional[FlashOp]:
        """Produce the next GC operation for the chip.

        Page copies are emitted as a read immediately followed (via the
        pending queue) by the program of the relocated page; when no
        valid pages remain the victim is erased and returned to the
        free pool.
        """
        state = self.chips[chip_id]
        job = state.gc
        if job is None:
            return None
        while job.valid_lpns:
            lpn = job.valid_lpns.popleft()
            ppn = self.mapping.lookup(lpn)
            if ppn is None or ppn // self._ppb != job.victim_gb:
                continue  # superseded by a newer host write meanwhile
            target = self._allocate_gc_page(chip_id)
            if target is None:
                # No room to relocate: abandon for now, retry later.
                job.valid_lpns.appendleft(lpn)
                return None
            target_addr, target_ptype = target
            source_addr = self.geometry.address_of(ppn)
            target_ppn = (target_addr.channel * self._cpc
                          + target_addr.chip) * self._pages_per_chip \
                + target_addr.block * self._ppb + target_addr.page
            self.mapping.map_write(lpn, target_ppn)
            # write-clock accounting, inlined (see _note_block_write)
            self._write_clock += 1
            self._block_write_stamp[target_ppn // self._ppb] = \
                self._write_clock
            self.gc_programs += 1
            job.copied += 1
            hook = self._after_gc_program
            if hook is not None:
                hook(chip_id, target_addr, target_ptype)
            state.pending.append(
                FlashOp(OpKind.PROGRAM, target_addr, tag="gc", lpn=lpn,
                        source=source_addr)
            )
            return FlashOp(OpKind.READ, source_addr, tag="gc", lpn=lpn)
        # victim drained: erase it and recycle
        state.gc = None
        self.mapping.note_block_erased(job.victim_gb)
        state.free_blocks.append(job.victim_block)
        hook = self._after_gc_complete
        if hook is not None:
            hook(chip_id, job)
        erase_addr = PhysicalPageAddress(
            *self.geometry.chip_coords(chip_id), job.victim_block, 0
        )
        return FlashOp(OpKind.ERASE, erase_addr, tag="gc")

    # ------------------------------------------------------------------
    # helpers for subclasses

    def _take_free_block(self, chip_id: int, for_gc: bool = False
                         ) -> Optional[int]:
        """Pop a free block; host allocations respect the GC reserve."""
        state = self.chips[chip_id]
        if not for_gc and len(state.free_blocks) \
                <= self.config.gc_reserve_blocks:
            return None
        if not state.free_blocks:
            return None
        if not self.config.wear_aware_allocation:
            return state.free_blocks.popleft()
        chip = self.array.chips[chip_id]
        chosen = min(state.free_blocks,
                     key=lambda block: chip.blocks[block].erase_count)
        state.free_blocks.remove(chosen)
        return chosen

    def _page_address(self, chip_id: int, block: int, wordline: int,
                      ptype: PageType) -> PhysicalPageAddress:
        """Build a physical address from chip-local coordinates."""
        # chip_coords + page_index inlined (per-allocation hot path)
        channel, chip = divmod(chip_id, self._cpc)
        return PhysicalPageAddress(channel, chip, block,
                                   2 * wordline + ptype)

    def _mark_block_full(self, chip_id: int, block: int) -> None:
        """Move a fully-written block into the GC-eligible full set."""
        self.chips[chip_id].full_blocks.add(block)
        if self._trace is not None:
            self._trace.event("2po.block_full", chip=chip_id,
                              block=block)
        self._on_block_full(chip_id, block)

    def _enqueue_parity_backup(self, chip_id: int, owner: object) -> None:
        """Queue the NAND operations for one parity-page backup.

        Allocates a parity slot for ``owner`` from the chip's backup
        manager and appends the resulting operations — possibly a
        backup-block erase plus live-parity re-programs, then the
        parity program itself — to the chip's pending queue.
        """
        state = self.chips[chip_id]
        if state.backup is None:
            raise RuntimeError(f"{self.name} has no backup blocks")
        slot, cycle = state.backup.allocate(owner)
        channel, chip = self.geometry.chip_coords(chip_id)
        if cycle is not None:
            state.pending.append(FlashOp(
                OpKind.ERASE,
                PhysicalPageAddress(channel, chip, cycle.erase_block, 0),
                tag="backup",
            ))
            for _owner, new_slot in cycle.relocations:
                state.pending.append(FlashOp(
                    OpKind.PROGRAM,
                    PhysicalPageAddress(channel, chip, new_slot.block,
                                        new_slot.page),
                    tag="backup",
                ))
                self.backup_programs += 1
        state.pending.append(FlashOp(
            OpKind.PROGRAM,
            PhysicalPageAddress(channel, chip, slot.block, slot.page),
            tag="backup",
        ))
        self.backup_programs += 1
        trace = self._trace
        if trace is not None:
            # owner is a global block id; warm path — see Tracer.warm_parity
            trace.warm_parity(chip_id, int(owner), slot.block,
                              slot.page, int(cycle is not None))
        counters = self._parity_counters
        if counters is not None:
            counters[chip_id].inc()

    # ------------------------------------------------------------------
    # fault handling (driven by the controller; see repro.faults)

    def _fault_work(self, chip_id: int) -> FaultWork:
        state = self.chips[chip_id]
        if state.fault_work is None:
            state.fault_work = FaultWork()
        return state.fault_work

    def _ppn(self, addr: PhysicalPageAddress) -> int:
        return (addr.channel * self._cpc + addr.chip) \
            * self._pages_per_chip + addr.block * self._ppb + addr.page

    def parity_covers(self, chip_id: int,
                      addr: PhysicalPageAddress) -> bool:
        """Whether a live parity page protects the block of ``addr``.

        True means an LSB page destroyed in that block is
        reconstructable by XOR-ing the block's surviving LSB pages with
        the parity page (Section 3.3); FTLs without backup blocks
        always answer False.
        """
        backup = self.chips[chip_id].backup
        if backup is None:
            return False
        gb = self.mapping.global_block_of(chip_id, addr.block)
        return backup.slot_of(gb) is not None

    def handle_program_failure(self, chip_id: int, op: FlashOp) -> None:
        """Recover from a program-status failure reported for ``op``.

        The physical outcome matches an interrupted program (the
        in-flight page never became durable; a failed MSB program also
        corrupts its paired LSB page).  The op's own data is still in
        controller RAM, so it is re-driven to a fresh page; a destroyed
        paired LSB is reconstructed from parity when a live parity page
        covers the block, and counted as lost otherwise.  The failed
        block is then retired.
        """
        addr = op.addr
        if addr.block >= self.backup_block_start:
            self._handle_backup_program_failure(chip_id, op)
            return
        stats = self.fault_stats
        if stats is not None:
            stats.program_failures += 1
        destroyed = apply_power_loss_to_in_flight(self.array, addr)
        work = self._fault_work(chip_id)
        mapping = self.mapping
        own_ppn = self._ppn(addr)
        redriven = lost_count = 0
        for lost in destroyed:
            ppn = self._ppn(lost)
            lpn = mapping.lpn_of(ppn)
            if lpn is None:
                continue
            if ppn == own_ppn or self.parity_covers(chip_id, lost):
                if stats is not None:
                    stats.redriven_writes += 1
                    if ppn != own_ppn:
                        stats.reconstructed_pages += 1
                mapping.unmap(lpn)
                work.redrive.append(lpn)
                redriven += 1
            else:
                mapping.unmap(lpn)
                if stats is not None:
                    stats.lost_pages += 1
                lost_count += 1
        if self._trace is not None:
            if redriven:
                self._trace.event("fault.recover", chip=chip_id,
                                  fault="program_fail",
                                  outcome="redriven", pages=redriven)
            if lost_count:
                self._trace.event("fault.recover", chip=chip_id,
                                  fault="program_fail", outcome="lost",
                                  pages=lost_count)
        self._retire_block(chip_id, addr.block)

    def _handle_backup_program_failure(self, chip_id: int,
                                       op: FlashOp) -> None:
        """A parity-page program failed: re-drive the affected parity.

        Parity content is RAM-resident until its protected block
        closes, so every owner whose live slot the failure destroyed
        simply gets a fresh slot and a re-program.  Backup blocks sit
        outside the spare/replacement pools and are not retired.
        """
        stats = self.fault_stats
        if stats is not None:
            stats.backup_program_failures += 1
        destroyed = apply_power_loss_to_in_flight(self.array, op.addr)
        backup = self.chips[chip_id].backup
        if backup is None:
            return
        lost_slots = {(lost.block, lost.page) for lost in destroyed}
        owners = [owner for owner, slot in backup._live.items()
                  if (slot.block, slot.page) in lost_slots]
        for owner in owners:
            self._enqueue_parity_backup(chip_id, owner)
            if stats is not None:
                stats.redriven_writes += 1

    def handle_erase_failure(self, chip_id: int, op: FlashOp) -> None:
        """Recover from an erase failure reported for ``op``.

        A failed data-block erase retires the block (its mapping was
        already cleared before the erase was issued).  A failed
        backup-block erase is simply retried: the backup region has no
        replacement pool, and erase failures are transient far more
        often than program failures.
        """
        stats = self.fault_stats
        if stats is not None:
            stats.erase_failures += 1
        block = op.addr.block
        state = self.chips[chip_id]
        if block >= self.backup_block_start:
            if stats is not None:
                stats.erase_retries += 1
            state.pending.appendleft(
                FlashOp(OpKind.ERASE, op.addr, tag="backup"))
            return
        try:
            state.free_blocks.remove(block)
        except ValueError:
            pass
        self._retire_block(chip_id, block)

    def handle_grown_bad(self, chip_id: int, op: FlashOp) -> None:
        """A block was detected grown-bad after a successful program.

        The block's data is intact and readable; it is retired and its
        live pages are salvaged off it.  Backup blocks are skipped —
        they are outside the replacement pools.
        """
        block = op.addr.block
        if block >= self.backup_block_start:
            return
        state = self.chips[chip_id]
        if state.bad_blocks is not None and state.bad_blocks.is_bad(block):
            return
        if self.fault_stats is not None:
            self.fault_stats.grown_bad_blocks += 1
        self._retire_block(chip_id, block)

    def _retire_block(self, chip_id: int, block: int) -> None:
        """Pull a data block out of service, replacing it with a spare.

        Removes the block from every pool, abandons a GC relocating out
        of it, re-routes pending programs aimed at it, queues a salvage
        job for its remaining live pages (retired blocks stay
        readable), and consumes a spare — or flips the FTL into
        degraded mode when the reserve is dry.
        """
        state = self.chips[chip_id]
        stats = self.fault_stats
        if self._metrics is not None:
            self._metrics.counter("blocks.retired", chip=chip_id).inc()
        state.full_blocks.discard(block)
        try:
            state.free_blocks.remove(block)
        except ValueError:
            pass
        gb = self.mapping.global_block_of(chip_id, block)
        job = state.gc
        if job is not None and job.victim_block == block:
            # The salvage job below covers whatever the abandoned GC
            # had not relocated yet.
            state.gc = None
        if state.pending:
            kept: Deque[FlashOp] = deque()
            for pending_op in state.pending:
                if pending_op.kind is OpKind.PROGRAM \
                        and pending_op.addr.block == block:
                    lpn = pending_op.lpn
                    if lpn is not None:
                        ppn = self.mapping.lookup(lpn)
                        if ppn is not None and ppn // self._ppb == gb:
                            self.mapping.unmap(lpn)
                            self._fault_work(chip_id).redrive.append(lpn)
                            if stats is not None:
                                stats.redriven_writes += 1
                    continue  # drop the op: it would program bad silicon
                kept.append(pending_op)
            state.pending = kept
        self._release_block(chip_id, block)
        valid = list(self.mapping.valid_lpns_in_block(gb))
        if valid:
            self._fault_work(chip_id).salvage.append(
                SalvageJob(block, gb, valid))
        spare = None
        if state.bad_blocks is not None:
            spare = state.bad_blocks.retire(block)
        if stats is not None:
            stats.retired_blocks += 1
        if spare is not None:
            state.free_blocks.append(spare)
            if stats is not None:
                stats.spares_consumed += 1
        else:
            self.degraded = True
            if stats is not None:
                stats.degraded_mode = True

    def _release_block(self, chip_id: int, block: int) -> None:
        """Hook: ``block`` left the allocation pools (retirement).

        Subclasses drop any allocation-cursor or parity state that
        refers to it; the base class has none.
        """

    def mark_factory_bad(self, chip_id: int, block: int) -> None:
        """Record a factory bad block before the run starts.

        The block must still be free (factory tables are applied before
        any traffic); a spare replaces it when the reserve allows.
        """
        if not (0 <= block < self.data_blocks_per_chip):
            raise ValueError(
                f"factory bad block {block} outside the data region "
                f"[0, {self.data_blocks_per_chip})"
            )
        state = self.chips[chip_id]
        try:
            state.free_blocks.remove(block)
        except ValueError:
            raise ValueError(
                f"block {block} on chip {chip_id} is not free; factory "
                f"bad blocks must be marked before the run"
            ) from None
        spare = None
        if state.bad_blocks is not None:
            spare = state.bad_blocks.mark_factory_bad(block)
        if spare is not None:
            state.free_blocks.append(spare)
        else:
            self.degraded = True
            if self.fault_stats is not None:
                self.fault_stats.degraded_mode = True

    def _force_gc_op(self, chip_id: int) -> Optional[FlashOp]:
        """Start (or promote to foreground) a GC to free room for
        recovery writes."""
        state = self.chips[chip_id]
        if state.gc is None:
            victim = self._select_victim(chip_id)
            if victim is None:
                return None
            self._begin_gc(chip_id, victim, background=False)
        elif state.gc.background:
            state.gc.background = False
        return self._gc_step(chip_id)

    def _fault_recovery_op(self, chip_id: int,
                           now: float) -> Optional[FlashOp]:
        """Next recovery operation for the chip, or None.

        Re-drives of RAM-resident pages go first (their data exists
        nowhere on flash), then salvage relocations off retired blocks.
        Both allocate like GC relocations — ignoring the host reserve —
        and fall back to forcing a foreground GC when the chip is out
        of room.
        """
        state = self.chips[chip_id]
        work = state.fault_work
        if work is None:
            return None
        mapping = self.mapping
        while work.redrive:
            lpn = work.redrive[0]
            target = self._allocate_gc_page(chip_id)
            if target is None:
                return self._force_gc_op(chip_id)
            work.redrive.popleft()
            addr, ptype = target
            ppn = self._ppn(addr)
            mapping.map_write(lpn, ppn)
            self._write_clock += 1
            self._block_write_stamp[ppn // self._ppb] = self._write_clock
            hook = self._after_gc_program
            if hook is not None:
                hook(chip_id, addr, ptype)
            return FlashOp(OpKind.PROGRAM, addr, tag="recovery", lpn=lpn)
        while work.salvage:
            job = work.salvage[0]
            while job.valid_lpns:
                lpn = job.valid_lpns.popleft()
                ppn = mapping.lookup(lpn)
                if ppn is None or ppn // self._ppb != job.gb:
                    continue  # superseded meanwhile
                target = self._allocate_gc_page(chip_id)
                if target is None:
                    job.valid_lpns.appendleft(lpn)
                    return self._force_gc_op(chip_id)
                addr, ptype = target
                target_ppn = self._ppn(addr)
                mapping.map_write(lpn, target_ppn)
                self._write_clock += 1
                self._block_write_stamp[target_ppn // self._ppb] = \
                    self._write_clock
                if self.fault_stats is not None:
                    self.fault_stats.salvaged_pages += 1
                hook = self._after_gc_program
                if hook is not None:
                    hook(chip_id, addr, ptype)
                source_addr = self.geometry.address_of(ppn)
                state.pending.append(FlashOp(
                    OpKind.PROGRAM, addr, tag="salvage", lpn=lpn,
                    source=source_addr))
                return FlashOp(OpKind.READ, source_addr,
                               tag="salvage", lpn=lpn)
            work.salvage.popleft()
        state.fault_work = None
        return None

    def quarantine_interrupted_block(self, chip_id: int,
                                     block: int) -> None:
        """Close a block whose in-flight program a power cut destroyed.

        The destroyed page leaves a hole in the block's program
        sequence, so no further page of it can legally be programmed.
        The block is pulled from every allocation cursor and parked in
        the full pool: its surviving pages stay readable and normal
        garbage collection reclaims it (relocate valid pages, erase,
        back to the free pool) — unlike retirement, no spare is spent.
        """
        state = self.chips[chip_id]
        try:
            state.free_blocks.remove(block)
        except ValueError:
            pass
        self._release_block(chip_id, block)
        state.full_blocks.add(block)

    def note_read_loss(self, op: FlashOp) -> None:
        """A host read of ``op`` exhausted the retry ladder: the page's
        data is gone.  Unmap it so later reads fail fast rather than
        re-walking the ladder."""
        lpn = op.lpn
        if lpn is None:
            return
        if self.mapping.lookup(lpn) == self._ppn(op.addr):
            self.mapping.unmap(lpn)

    def note_read_reconstructed(self, chip_id: int, op: FlashOp) -> None:
        """A host read was served via parity reconstruction: scrub the
        decayed page by re-driving the reconstructed data to a fresh
        location."""
        lpn = op.lpn
        if lpn is None:
            return
        if self.mapping.lookup(lpn) == self._ppn(op.addr):
            self.mapping.unmap(lpn)
            self._fault_work(chip_id).redrive.append(lpn)
            if self.fault_stats is not None:
                self.fault_stats.redriven_writes += 1

    def reset_after_power_loss(self) -> List[int]:
        """Drop volatile per-chip work after a power cut.

        Pending GC/salvage relocation programs are rolled back to their
        durable source copy (the reboot metadata scan finds it — the
        victim block has not been erased).  Re-drive entries lived only
        in controller RAM; their logical pages are lost.  Returns the
        lost lpns.
        """
        dropped: List[int] = []
        mapping = self.mapping
        for state in self.chips:
            for pending_op in state.pending:
                if pending_op.kind is not OpKind.PROGRAM \
                        or pending_op.lpn is None:
                    continue
                lpn = pending_op.lpn
                if mapping.lookup(lpn) != self._ppn(pending_op.addr):
                    continue
                mapping.unmap(lpn)
                source = pending_op.source
                if source is not None \
                        and self.array.is_programmed(source):
                    mapping.map_write(lpn, self._ppn(source))
                else:
                    dropped.append(lpn)
            state.pending.clear()
            job = state.gc
            if job is not None:
                state.gc = None
                state.full_blocks.add(job.victim_block)
            work = state.fault_work
            if work is not None:
                dropped.extend(work.redrive)
                work.redrive.clear()
                if not work.salvage:
                    state.fault_work = None
        return dropped

    # ------------------------------------------------------------------
    # subclass interface

    @abc.abstractmethod
    def _allocate_host_page(
        self, chip_id: int, now: float
    ) -> Optional[Tuple[PhysicalPageAddress, PageType]]:
        """Pick the physical page for the next host write on a chip.

        Returns None when no page can be allocated without a garbage
        collection (the base class then drives one).
        """

    @abc.abstractmethod
    def _allocate_gc_page(
        self, chip_id: int
    ) -> Optional[Tuple[PhysicalPageAddress, PageType]]:
        """Pick the physical page for a GC relocation on a chip."""

    #: Hook: called as ``hook(chip_id, addr, ptype, now)`` after a host
    #: page write is placed.  ``None`` (the default) means "no hook":
    #: the per-write fast path skips the call entirely.  Subclasses
    #: override with a method, or assign a bound callable per instance.
    _after_host_program: Optional[Callable[..., None]] = None

    #: Hook: called as ``hook(chip_id, addr, ptype)`` after a GC
    #: relocation page is placed, or ``None`` for no hook.
    _after_gc_program: Optional[Callable[..., None]] = None

    def _on_block_full(self, chip_id: int, block: int) -> None:
        """Hook: called when a data block becomes fully written."""

    #: Hook: called as ``hook(chip_id, job)`` when a GC finishes
    #: (victim already recycled), or ``None`` for no hook.
    _after_gc_complete: Optional[Callable[..., None]] = None

    # ------------------------------------------------------------------
    # accounting

    def free_block_count(self, chip_id: int) -> int:
        """Free blocks currently available on a chip."""
        return len(self.chips[chip_id].free_blocks)

    def counters(self) -> Dict[str, int]:
        """Aggregate operation counters for reports."""
        return {
            "host_programs": self.host_programs,
            "gc_programs": self.gc_programs,
            "backup_programs": self.backup_programs,
            "foreground_gcs": self.foreground_gcs,
            "background_gcs": self.background_gcs,
            "erases": self.array.total_erases,
            "lsb_programs": self.array.lsb_programs,
            "msb_programs": self.array.msb_programs,
        }

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
