"""Page-level logical-to-physical mapping.

All four evaluated FTLs are page-mapping FTLs: any logical page can
live on any physical page.  The table also maintains per-block valid
page counts, which drive greedy garbage-collection victim selection.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from repro.nand.geometry import NandGeometry, PhysicalPageAddress


class MappingTable:
    """L2P map plus reverse map and per-block validity accounting.

    Physical pages are identified by their flat physical page number
    (ppn); blocks by their global block id
    (``chip_id * blocks_per_chip + block``).  Both directions are flat
    integer lists (-1 = unmapped) — the reverse map used to be a dict,
    but every host/GC write touches it and the list is both faster and
    a fraction of the memory at device scale.
    """

    def __init__(self, geometry: NandGeometry, logical_pages: int) -> None:
        if logical_pages <= 0:
            raise ValueError(
                f"logical_pages must be positive, got {logical_pages}"
            )
        if logical_pages > geometry.total_pages:
            raise ValueError(
                f"logical_pages ({logical_pages}) exceeds physical pages "
                f"({geometry.total_pages})"
            )
        self.geometry = geometry
        self.logical_pages = logical_pages
        self._pages_per_block = geometry.pages_per_block
        self._l2p: List[int] = [-1] * logical_pages
        self._p2l: List[int] = [-1] * geometry.total_pages
        self._mapped = 0
        self._valid: List[int] = [0] * geometry.total_blocks

    # ------------------------------------------------------------------
    # identifiers

    def global_block(self, ppn: int) -> int:
        """Global block id owning physical page ``ppn``."""
        return ppn // self.geometry.pages_per_block

    def global_block_of(self, chip_id: int, block: int) -> int:
        """Global block id of ``block`` on ``chip_id``."""
        return chip_id * self.geometry.blocks_per_chip + block

    # ------------------------------------------------------------------
    # queries

    def lookup(self, lpn: int) -> Optional[int]:
        """Current ppn of logical page ``lpn``, or None if unmapped."""
        # bounds check open-coded (this runs once per read page); the
        # failure path delegates for the exact error message
        if 0 <= lpn < self.logical_pages:
            ppn = self._l2p[lpn]
            return None if ppn < 0 else ppn
        self._check_lpn(lpn)
        return None  # pragma: no cover - _check_lpn always raises here

    def lookup_address(self, lpn: int) -> Optional[PhysicalPageAddress]:
        """Current physical address of ``lpn``, or None if unmapped."""
        ppn = self.lookup(lpn)
        return None if ppn is None else self.geometry.address_of(ppn)

    def lpn_of(self, ppn: int) -> Optional[int]:
        """Logical page stored at ``ppn`` if that page is valid."""
        lpn = self._p2l[ppn]
        return None if lpn < 0 else lpn

    def is_valid(self, ppn: int) -> bool:
        """Whether ``ppn`` holds current (not superseded) data."""
        return self._p2l[ppn] >= 0

    def valid_count(self, global_block: int) -> int:
        """Number of valid pages in a block."""
        return self._valid[global_block]

    def invalid_count(self, global_block: int) -> int:
        """Invalid (superseded) data pages a GC of the block reclaims.

        Note this counts written-and-superseded pages only; it is the
        caller's job to only consider fully-written blocks.
        """
        return self.geometry.pages_per_block - self._valid[global_block]

    def valid_lpns_in_block(self, global_block: int) -> Iterator[int]:
        """Yield the logical pages currently living in a block."""
        base = global_block * self._pages_per_block
        p2l = self._p2l
        for ppn in range(base, base + self._pages_per_block):
            lpn = p2l[ppn]
            if lpn >= 0:
                yield lpn

    # ------------------------------------------------------------------
    # updates

    def map_write(self, lpn: int, ppn: int) -> Optional[int]:
        """Point ``lpn`` at ``ppn``; returns the superseded ppn if any."""
        if not 0 <= lpn < self.logical_pages:
            raise IndexError(
                f"lpn {lpn} out of range [0, {self.logical_pages})"
            )
        p2l = self._p2l
        if p2l[ppn] >= 0:
            raise ValueError(f"ppn {ppn} already holds lpn {p2l[ppn]}")
        old = self._l2p[lpn]
        old_ppn: Optional[int] = None
        if old >= 0:
            old_ppn = old
            p2l[old] = -1
            self._valid[old // self._pages_per_block] -= 1
            self._mapped -= 1
        self._l2p[lpn] = ppn
        p2l[ppn] = lpn
        self._valid[ppn // self._pages_per_block] += 1
        self._mapped += 1
        return old_ppn

    def unmap(self, lpn: int) -> Optional[int]:
        """Drop the mapping for ``lpn`` (TRIM); returns the freed ppn."""
        self._check_lpn(lpn)
        ppn = self._l2p[lpn]
        if ppn < 0:
            return None
        self._l2p[lpn] = -1
        self._p2l[ppn] = -1
        self._mapped -= 1
        self._valid[ppn // self._pages_per_block] -= 1
        return ppn

    def note_block_erased(self, global_block: int) -> None:
        """Sanity hook: a block must be empty of valid data when erased."""
        if self._valid[global_block] != 0:
            raise ValueError(
                f"erasing block {global_block} with "
                f"{self._valid[global_block]} valid pages"
            )

    # ------------------------------------------------------------------

    @property
    def mapped_pages(self) -> int:
        """Number of logical pages currently mapped."""
        return self._mapped

    def _check_lpn(self, lpn: int) -> None:
        if not (0 <= lpn < self.logical_pages):
            raise IndexError(
                f"lpn {lpn} out of range [0, {self.logical_pages})"
            )

    def __repr__(self) -> str:
        return (
            f"MappingTable(logical={self.logical_pages}, "
            f"mapped={self.mapped_pages})"
        )
