"""pageFTL: the FPS-based page-mapping baseline.

The paper's performance reference point: a page-level mapping FTL that
writes each chip's single active block strictly in the fixed program
sequence order and — operating under a no-sudden-power-off assumption —
performs **no** paired-page backup.  It therefore marks the maximum
performance an FPS-based page-mapping FTL can reach.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.ftl.base import BaseFtl, FtlConfig
from repro.ftl.cursor import FpsCursor
from repro.nand.array import NandArray
from repro.nand.geometry import PhysicalPageAddress
from repro.nand.page_types import PageType
from repro.sim.queues import WriteBuffer


class PageFtl(BaseFtl):
    """Baseline FPS page-mapping FTL (no backup overhead)."""

    name = "pageFTL"
    uses_backup = False

    def __init__(self, array: NandArray, write_buffer: WriteBuffer,
                 config: Optional[FtlConfig] = None) -> None:
        super().__init__(array, write_buffer, config)
        self._active: List[Optional[FpsCursor]] = \
            [None] * self.geometry.total_chips

    # ------------------------------------------------------------------

    def _allocate(self, chip_id: int, for_gc: bool
                  ) -> Optional[Tuple[PhysicalPageAddress, PageType]]:
        cursor = self._active[chip_id]
        if cursor is None:
            block = self._take_free_block(chip_id, for_gc=for_gc)
            if block is None:
                return None
            cursor = FpsCursor(block, self.wordlines)
            self._active[chip_id] = cursor
        wordline, ptype = cursor.take()
        addr = self._page_address(chip_id, cursor.block, wordline, ptype)
        if cursor.done:
            self._active[chip_id] = None
            self._mark_block_full(chip_id, cursor.block)
        return addr, ptype

    def _allocate_host_page(
        self, chip_id: int, now: float
    ) -> Optional[Tuple[PhysicalPageAddress, PageType]]:
        return self._allocate(chip_id, for_gc=False)

    def _allocate_gc_page(
        self, chip_id: int
    ) -> Optional[Tuple[PhysicalPageAddress, PageType]]:
        return self._allocate(chip_id, for_gc=True)

    def _release_block(self, chip_id: int, block: int) -> None:
        # Retired mid-write: drop the chip's active cursor on it.
        cursor = self._active[chip_id]
        if cursor is not None and cursor.block == block:
            self._active[chip_id] = None
