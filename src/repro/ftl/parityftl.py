"""parityFTL: FPS baseline with the adaptive parity pre-backup of [6].

Identical page placement to :class:`~repro.ftl.pageftl.PageFtl`, but
power-loss safe: after every two LSB-page host writes a parity page
protecting the pair is pre-programmed into a reserved backup block.
Under FPS at most two LSB pages can share a parity page before their
paired MSB pages are programmed (footnote 4 of the paper), so the
backup overhead is one extra fast-page program per two LSB writes —
roughly one extra write per four host writes.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.ftl.base import FtlConfig
from repro.ftl.pageftl import PageFtl
from repro.nand.array import NandArray
from repro.nand.geometry import PhysicalPageAddress
from repro.nand.page_types import PageType
from repro.sim.queues import WriteBuffer


class ParityFtl(PageFtl):
    """FPS page-mapping FTL with 2-LSB-shared parity pre-backup."""

    name = "parityFTL"
    uses_backup = True

    #: LSB host writes protected by one parity page (FPS ceiling: 2).
    lsb_pages_per_parity = 2

    def __init__(self, array: NandArray, write_buffer: WriteBuffer,
                 config: Optional[FtlConfig] = None) -> None:
        super().__init__(array, write_buffer, config)
        #: per-block count of LSB writes since the last parity backup
        self._unprotected_lsb: Dict[int, int] = {}

    # ------------------------------------------------------------------

    def _after_host_program(self, chip_id: int,
                            addr: PhysicalPageAddress,
                            ptype: PageType, now: float) -> None:
        if ptype is not PageType.LSB:
            return
        gb = self.mapping.global_block_of(chip_id, addr.block)
        count = self._unprotected_lsb.get(gb, 0) + 1
        if count >= self.lsb_pages_per_parity:
            # The newest parity for this block supersedes the previous
            # one (the prior pair's MSB pages are already programmed
            # under FPS, so its parity is dead).
            self._enqueue_parity_backup(chip_id, owner=gb)
            count = 0
        self._unprotected_lsb[gb] = count

    def _on_block_full(self, chip_id: int, block: int) -> None:
        gb = self.mapping.global_block_of(chip_id, block)
        self._unprotected_lsb.pop(gb, None)
        backup = self.chips[chip_id].backup
        if backup is not None:
            backup.invalidate(gb)

    def _release_block(self, chip_id: int, block: int) -> None:
        super()._release_block(chip_id, block)
        gb = self.mapping.global_block_of(chip_id, block)
        self._unprotected_lsb.pop(gb, None)
        backup = self.chips[chip_id].backup
        if backup is not None:
            backup.invalidate(gb)
