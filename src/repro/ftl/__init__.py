"""Flash translation layers.

:mod:`repro.ftl.base` provides the machinery shared by all four FTLs
of the paper's evaluation — page-level mapping, block pools, greedy
garbage collection, and the controller-facing operation interface.
The three FPS-based baselines live here (:class:`PageFtl`,
:class:`ParityFtl`, :class:`RtfFtl`); the paper's RPS-aware flexFTL
lives in :mod:`repro.core.flexftl`.
"""

from repro.ftl.base import BaseFtl, FtlConfig
from repro.ftl.mapping import MappingTable
from repro.ftl.backup import BackupBlockManager
from repro.ftl.pageftl import PageFtl
from repro.ftl.parityftl import ParityFtl
from repro.ftl.rtfftl import RtfFtl
from repro.ftl.slcftl import SlcFtl

__all__ = [
    "BaseFtl",
    "FtlConfig",
    "MappingTable",
    "BackupBlockManager",
    "PageFtl",
    "ParityFtl",
    "RtfFtl",
    "SlcFtl",
]
