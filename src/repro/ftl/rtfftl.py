"""rtfFTL: the return-to-fast baseline after Grupp et al. [5].

Under FPS a single block cannot serve two LSB writes in a row, so
rtfFTL keeps a **pool of active blocks per chip** (the paper's setup:
eight).  A host write prefers a block whose next FPS page is an LSB
page; a burst can thus be served with up to ``active_blocks`` fast
writes per chip before the pool is exhausted.  During idle times an
aggressive background garbage collector relocates valid data into the
pool's pending MSB pages so the blocks "return to fast" for the next
burst.  Like parityFTL it pre-backups one parity page per two LSB
writes, since it also operates under FPS with sudden power-offs.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ftl.base import BaseFtl, FtlConfig
from repro.ftl.cursor import FpsCursor
from repro.nand.array import NandArray
from repro.nand.geometry import PhysicalPageAddress
from repro.nand.page_types import PageType
from repro.sim.queues import WriteBuffer


class RtfFtl(BaseFtl):
    """FPS FTL with multiple active blocks and return-to-fast bg GC."""

    name = "rtfFTL"
    uses_backup = True

    #: LSB host writes protected by one parity page (FPS ceiling: 2).
    lsb_pages_per_parity = 2

    def __init__(self, array: NandArray, write_buffer: WriteBuffer,
                 config: Optional[FtlConfig] = None,
                 active_blocks: int = 8) -> None:
        if active_blocks < 1:
            raise ValueError("active_blocks must be at least 1")
        super().__init__(array, write_buffer, config)
        self.active_blocks = active_blocks
        self._pools: List[List[FpsCursor]] = \
            [[] for _ in self.geometry.iter_chip_ids()]
        self._unprotected_lsb: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # allocation

    def _refill_pool(self, chip_id: int, for_gc: bool) -> None:
        pool = self._pools[chip_id]
        while len(pool) < self.active_blocks:
            block = self._take_free_block(chip_id, for_gc=for_gc)
            if block is None:
                return
            pool.append(FpsCursor(block, self.wordlines))

    def _allocate(self, chip_id: int, prefer: PageType, for_gc: bool
                  ) -> Optional[Tuple[PhysicalPageAddress, PageType]]:
        pool = self._pools[chip_id]
        if not for_gc or not pool:
            # Host writes keep the pool at full strength; GC targets
            # reuse the existing pool (only bootstrapping when empty)
            # so relocations do not drain the free blocks they reclaim.
            self._refill_pool(chip_id, for_gc)
        if not pool:
            return None
        cursor = next((c for c in pool if c.peek_type() is prefer), pool[0])
        wordline, ptype = cursor.take()
        addr = self._page_address(chip_id, cursor.block, wordline, ptype)
        if cursor.done:
            pool.remove(cursor)
            self._mark_block_full(chip_id, cursor.block)
        return addr, ptype

    def _allocate_host_page(
        self, chip_id: int, now: float
    ) -> Optional[Tuple[PhysicalPageAddress, PageType]]:
        return self._allocate(chip_id, prefer=PageType.LSB, for_gc=False)

    def _allocate_gc_page(
        self, chip_id: int
    ) -> Optional[Tuple[PhysicalPageAddress, PageType]]:
        # Return-to-fast: relocations soak up the pool's MSB pages.
        # While free blocks are plentiful the collector *waits* for MSB
        # slots rather than burning LSB pages (which would re-arm the
        # return-to-fast trigger and churn forever); once space is
        # genuinely low it relocates into whatever page comes next.
        state = self.chips[chip_id]
        space_is_low = len(state.free_blocks) < self.gc_threshold_blocks
        if not space_is_low and not self._pool_has_pending_msb(chip_id):
            return None
        return self._allocate(chip_id, prefer=PageType.MSB, for_gc=True)

    # ------------------------------------------------------------------
    # parity pre-backup (same policy as parityFTL)

    def _after_host_program(self, chip_id: int,
                            addr: PhysicalPageAddress,
                            ptype: PageType, now: float) -> None:
        if ptype is not PageType.LSB:
            return
        gb = self.mapping.global_block_of(chip_id, addr.block)
        count = self._unprotected_lsb.get(gb, 0) + 1
        if count >= self.lsb_pages_per_parity:
            self._enqueue_parity_backup(chip_id, owner=gb)
            count = 0
        self._unprotected_lsb[gb] = count

    def _on_block_full(self, chip_id: int, block: int) -> None:
        gb = self.mapping.global_block_of(chip_id, block)
        self._unprotected_lsb.pop(gb, None)
        backup = self.chips[chip_id].backup
        if backup is not None:
            backup.invalidate(gb)

    def _release_block(self, chip_id: int, block: int) -> None:
        pool = self._pools[chip_id]
        for cursor in pool:
            if cursor.block == block:
                pool.remove(cursor)
                break
        gb = self.mapping.global_block_of(chip_id, block)
        self._unprotected_lsb.pop(gb, None)
        backup = self.chips[chip_id].backup
        if backup is not None:
            backup.invalidate(gb)

    # ------------------------------------------------------------------
    # aggressive idle-time return-to-fast collection

    def _pool_has_pending_msb(self, chip_id: int) -> bool:
        return any(c.peek_type() is PageType.MSB
                   for c in self._pools[chip_id])

    def wants_background_gc(self, chip_id: int) -> bool:
        """Base condition plus the return-to-fast trigger."""
        if super().wants_background_gc(chip_id):
            return True
        if not self.config.bg_gc_enabled:
            return False
        return (self._pool_has_pending_msb(chip_id)
                and self._select_victim(
                    chip_id, self._bg_min_invalid()) is not None)

    def background_op(self, chip_id: int, now: float):
        """Idle-time work, including return-to-fast collection."""
        op = super().background_op(chip_id, now)
        if op is not None:
            return op
        if not self.config.bg_gc_enabled:
            return None
        state = self.chips[chip_id]
        if state.gc is not None:
            return None
        if not self._pool_has_pending_msb(chip_id):
            return None
        victim = self._select_victim(chip_id, self._bg_min_invalid())
        if victim is None:
            return None
        self._begin_gc(chip_id, victim, background=True)
        return self._gc_step(chip_id)
