"""Reserved backup blocks for parity pages.

Both the parityFTL baseline (one parity page per two LSB pages, after
[6]) and flexFTL (one parity page per block, Section 3.3) persist
parity pages into reserved *backup blocks*.

The program order inside a backup block depends on the device's
sequence scheme: under RPS, flexFTL writes parity pages to the **LSB
pages only** (the paper's footnote 2 — each backup costs just the fast
program time and the block is recycled after ``wordlines`` parities);
under FPS the backup block must itself follow the fixed order, so
parity writes alternate between LSB and MSB positions.

When a backup block runs out of slots it is erased and reused.  Parity
pages that are still *live* (their protected block has not finished its
MSB phase) are re-programmed into the fresh block from the controller's
RAM-resident parity buffers before new slots are handed out.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple


def _slot_pages(wordlines: int, order: str) -> List[int]:
    """Canonical page indices a backup block hands out, in order."""
    from repro.core.rps import fps_order, rps_full_order  # lazy: cycle
    from repro.nand.page_types import PageType, page_index

    if order == "lsb":
        return [page_index(w, PageType.LSB) for w in range(wordlines)]
    if order == "fps":
        return fps_order(wordlines)
    if order == "2po":
        return rps_full_order(wordlines)
    raise ValueError(f"unknown backup order {order!r}")


@dataclasses.dataclass(frozen=True)
class ParitySlot:
    """A parity page location: (backup block local id, page index)."""

    block: int
    page: int


@dataclasses.dataclass
class BackupCycle:
    """What reusing a backup block costs: one erase + relocations."""

    erase_block: int
    relocations: List[Tuple[object, ParitySlot]]  # (owner, new slot)


class BackupBlockManager:
    """Manages one chip's reserved backup blocks.

    Args:
        block_ids: local block ids reserved for backup on this chip
            (at least one; two avoid relocation corner cases).
        wordlines: word lines per block.
        order: slot program order — ``"lsb"`` (RPS devices: LSB pages
            only), ``"fps"`` (FPS devices: the fixed order) or
            ``"2po"`` (RPS devices using the full two-phase order).
    """

    def __init__(self, block_ids: List[int], wordlines: int,
                 order: str = "lsb") -> None:
        if not block_ids:
            raise ValueError("need at least one backup block")
        if wordlines <= 0:
            raise ValueError(f"wordlines must be positive, got {wordlines}")
        self.block_ids = list(block_ids)
        self.wordlines = wordlines
        self.order = order
        self._pages = _slot_pages(wordlines, order)
        self._ring = 0  # index into block_ids of the block being filled
        self._cursor = 0  # next slot position in the current block
        #: live parity pages: owner key -> slot
        self._live: Dict[object, ParitySlot] = {}
        self.parity_writes = 0
        self.cycles = 0
        self.relocated = 0

    # ------------------------------------------------------------------

    @property
    def current_block(self) -> int:
        """Local id of the backup block currently receiving parity."""
        return self.block_ids[self._ring]

    @property
    def live_count(self) -> int:
        """Number of parity pages still protecting an open block."""
        return len(self._live)

    def allocate(self, owner: object
                 ) -> "tuple[ParitySlot, Optional[BackupCycle]]":
        """Reserve the next parity slot for ``owner``.

        Returns the slot and, when the current backup block had to be
        recycled first, a :class:`BackupCycle` describing the erase and
        the live-parity relocations the caller must turn into NAND
        operations (the relocations consume slots *before* the returned
        one).

        An owner may allocate repeatedly (e.g. parityFTL's rolling
        2-LSB parity); the newest slot supersedes the previous one.
        """
        cycle: Optional[BackupCycle] = None
        if self._cursor >= len(self._pages):
            cycle = self._recycle()
            if self._cursor >= len(self._pages):
                # Every slot of the recycled block is consumed by live
                # parity relocations: the pool cannot host one more
                # page.  Real FTLs keep at most a couple of live
                # parities per chip (one per active block), far below
                # a block's slot count — reaching this means the
                # manager was provisioned too small for its users.
                raise RuntimeError(
                    f"backup blocks exhausted: {self.live_count} live "
                    f"parity pages fill a {len(self._pages)}-slot "
                    f"block; reserve more backup blocks"
                )
        slot = ParitySlot(self.current_block, self._pages[self._cursor])
        self._cursor += 1
        self._live[owner] = slot
        self.parity_writes += 1
        return slot, cycle

    def invalidate(self, owner: object) -> Optional[ParitySlot]:
        """Drop ``owner``'s parity (its protected block closed safely)."""
        return self._live.pop(owner, None)

    def rewind_slot(self, slot: ParitySlot) -> bool:
        """Give back the most recently allocated slot.

        Used after a power cut interrupts a parity program: the page
        is erased again, and re-using it keeps the block's program
        sequence hole-free.  Only the newest slot of the current block
        can be rewound; anything else returns False.
        """
        if slot.block == self.current_block and self._cursor > 0 \
                and self._pages[self._cursor - 1] == slot.page:
            self._cursor -= 1
            return True
        return False

    def slot_of(self, owner: object) -> Optional[ParitySlot]:
        """Current parity slot protecting ``owner``, if any."""
        return self._live.get(owner)

    # ------------------------------------------------------------------

    def _recycle(self) -> BackupCycle:
        """Advance to the next backup block, erasing and relocating."""
        self._ring = (self._ring + 1) % len(self.block_ids)
        self._cursor = 0
        target = self.current_block
        relocations: List[Tuple[object, ParitySlot]] = []
        for owner, slot in sorted(self._live.items(),
                                  key=lambda kv: id(kv[0])):
            if slot.block == target:
                new_slot = ParitySlot(target, self._pages[self._cursor])
                self._cursor += 1
                relocations.append((owner, new_slot))
        for owner, new_slot in relocations:
            self._live[owner] = new_slot
        self.cycles += 1
        self.relocated += len(relocations)
        return BackupCycle(erase_block=target, relocations=relocations)
