"""slcFTL: the LSB-only related-work baseline (Lee et al. [4]).

Section 5 of the paper discusses a flash file system that services
write requests using **only fast LSB pages**, reaching SLC-class peak
performance — at the cost of "wasting half the capacity of the block"
because every MSB page is skipped.  flexFTL's argument is that RPS
delivers the same burst speed *without* the capacity loss.

This FTL makes that trade-off measurable: every host and GC write
lands on an LSB page, MSB pages are never programmed, and the logical
space is therefore built over half the physical pages.  On equal
footprints the halved capacity means structurally higher utilisation,
more garbage collection and more erasures than flexFTL.

(The original system predates RPS and relied on vendor SLC-mode
commands; we host it on an RPS device, where an LSB-only order is
legal — Constraints 1-3 never force an MSB program.)
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.ftl.base import BaseFtl, FtlConfig
from repro.ftl.cursor import PhaseCursor
from repro.ftl.mapping import MappingTable
from repro.nand.array import NandArray
from repro.nand.geometry import PhysicalPageAddress
from repro.nand.page_types import PageType
from repro.nand.sequence import SequenceScheme
from repro.sim.queues import WriteBuffer


class SlcFtl(BaseFtl):
    """LSB-only page-mapping FTL (SLC-mode usage of MLC blocks)."""

    name = "slcFTL"
    uses_backup = False  # no MSB programs => no destructive programs

    def __init__(self, array: NandArray, write_buffer: WriteBuffer,
                 config: Optional[FtlConfig] = None) -> None:
        if array.scheme is SequenceScheme.FPS:
            raise ValueError(
                "LSB-only programming violates FPS Constraint 4; "
                "slcFTL needs an RPS (or SLC-mode capable) device"
            )
        super().__init__(array, write_buffer, config)
        # Half the pages exist as far as the host is concerned: the
        # logical space is rebuilt over LSB pages only.
        data_lsb_pages = (self.data_blocks_per_chip * self.wordlines
                          * self.geometry.total_chips)
        self.logical_pages = max(
            1, int(data_lsb_pages * (1.0 - self.config.op_ratio))
        )
        self.mapping = MappingTable(self.geometry, self.logical_pages)
        self._active: List[Optional[PhaseCursor]] = \
            [None] * self.geometry.total_chips

    # ------------------------------------------------------------------

    def _allocate(self, chip_id: int, for_gc: bool
                  ) -> Optional[Tuple[PhysicalPageAddress, PageType]]:
        cursor = self._active[chip_id]
        if cursor is None:
            block = self._take_free_block(chip_id, for_gc=for_gc)
            if block is None:
                return None
            cursor = PhaseCursor(block, self.wordlines, PageType.LSB)
            self._active[chip_id] = cursor
        wordline, ptype = cursor.take()
        addr = self._page_address(chip_id, cursor.block, wordline, ptype)
        if cursor.done:
            # All LSB pages used; the MSB half is deliberately wasted.
            self._active[chip_id] = None
            self._mark_block_full(chip_id, cursor.block)
        return addr, ptype

    def _allocate_host_page(
        self, chip_id: int, now: float
    ) -> Optional[Tuple[PhysicalPageAddress, PageType]]:
        return self._allocate(chip_id, for_gc=False)

    def _allocate_gc_page(
        self, chip_id: int
    ) -> Optional[Tuple[PhysicalPageAddress, PageType]]:
        return self._allocate(chip_id, for_gc=True)

    def _release_block(self, chip_id: int, block: int) -> None:
        cursor = self._active[chip_id]
        if cursor is not None and cursor.block == block:
            self._active[chip_id] = None

    # ------------------------------------------------------------------
    # accounting: a "full" SLC block holds only `wordlines` data pages,
    # so the invalid count must be computed against that, not against
    # pages_per_block — otherwise victim scores see 50% phantom
    # invalidity everywhere.

    def _select_victim(self, chip_id: int,
                       min_invalid: int = 1) -> Optional[int]:
        state = self.chips[chip_id]
        best_block: Optional[int] = None
        best_invalid = min_invalid - 1
        for block in state.full_blocks:
            gb = self.mapping.global_block_of(chip_id, block)
            invalid = self.wordlines - self.mapping.valid_count(gb)
            if invalid > best_invalid:
                best_invalid = invalid
                best_block = block
        return best_block

    def _bg_min_invalid(self) -> int:
        return max(1, int(self.wordlines
                          * self.config.bg_gc_min_invalid_fraction))
