"""Reliability substrate: cell-to-cell interference, Vth and BER models.

The paper validates RPS on real 2X-nm MLC chips by measuring Vth
distribution widths (``WPi``) and bit error rates under worst-case
operating conditions (3K P/E cycles, 1-year retention).  We have no
silicon, so this subpackage provides the closest synthetic equivalent:

* :mod:`repro.reliability.interference` counts, for a given in-block
  program order, the *aggressor* program operations each word line
  suffers after its data is finalised — the quantity the paper states
  the total interference is proportional to;
* :mod:`repro.reliability.vth` turns aggressor counts into Monte-Carlo
  threshold-voltage distributions and ``WPi`` widths;
* :mod:`repro.reliability.ber` adds P/E-cycling noise and retention
  loss and derives gray-coded bit error rates;
* :mod:`repro.reliability.montecarlo` drives the block/page population
  of Figure 4 (90+ blocks, 5000+ pages);
* :mod:`repro.reliability.physics` arms the same models inside the live
  simulation (a seeded runtime error engine driven by each page's real
  program/read history), and :mod:`repro.reliability.runner` runs whole
  workloads with it attached.
"""

from repro.reliability.interference import (
    aggressor_counts,
    aggressor_events,
    max_aggressors,
)
from repro.reliability.vth import MlcVthModel, PageVthSample, simulate_page_vth
from repro.reliability.ber import (
    OperatingCondition,
    StressModel,
    expected_page_ber,
    page_bit_error_rate,
)
from repro.reliability.ecc import (
    EccConfig,
    codeword_failure_probability,
    max_tolerable_ber,
    page_failure_probability,
)
from repro.reliability.montecarlo import (
    BoxStats,
    ReliabilityResult,
    run_reliability_experiment,
)
from repro.reliability.physics import (
    PhysicsConfig,
    PhysicsEngine,
    ReadOutcome,
    oracle_page_state,
    oracle_read_probability,
)
from repro.reliability.runner import PhysicsRunResult, run_physics_workload

__all__ = [
    "aggressor_counts",
    "aggressor_events",
    "max_aggressors",
    "MlcVthModel",
    "PageVthSample",
    "simulate_page_vth",
    "OperatingCondition",
    "StressModel",
    "expected_page_ber",
    "page_bit_error_rate",
    "EccConfig",
    "codeword_failure_probability",
    "page_failure_probability",
    "max_tolerable_ber",
    "BoxStats",
    "ReliabilityResult",
    "run_reliability_experiment",
    "PhysicsConfig",
    "PhysicsEngine",
    "ReadOutcome",
    "oracle_page_state",
    "oracle_read_probability",
    "PhysicsRunResult",
    "run_physics_workload",
]
