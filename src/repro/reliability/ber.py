"""Bit-error-rate model under P/E cycling and retention stress.

The paper measures BER at the device's worst-case operating condition:
3K P/E cycles followed by one year of retention.  We model the two
stress components the way the flash literature describes them:

* **P/E cycling** damages the tunnel oxide; the damage widens every
  state's distribution.  We model the extra noise std-dev as growing
  linearly with cycle count.
* **Retention** leaks stored charge; programmed states drift down
  (left), by an amount that grows logarithmically with time and is
  amplified by prior cycling damage.

Combined with the interference right-shift from aggressor programs,
these produce gray-coded bit errors at the read references.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

import numpy as np

from repro.reliability.vth import MlcVthModel, bit_errors, simulate_page_vth


@dataclasses.dataclass(frozen=True)
class OperatingCondition:
    """A P/E-cycling + retention stress point.

    Attributes:
        pe_cycles: program/erase cycles endured before the measurement.
        retention_hours: elapsed time since programming, in hours.
    """

    pe_cycles: int = 0
    retention_hours: float = 0.0

    def __post_init__(self) -> None:
        if self.pe_cycles < 0:
            raise ValueError("pe_cycles must be non-negative")
        if self.retention_hours < 0:
            raise ValueError("retention_hours must be non-negative")


#: The paper's worst-case condition: 3K P/E cycles and 1-year retention.
WORST_CASE = OperatingCondition(pe_cycles=3000, retention_hours=24 * 365)


@dataclasses.dataclass(frozen=True)
class StressModel:
    """Coefficients translating an operating condition into Vth stress.

    Attributes:
        cycling_sigma_per_kcycle: extra per-cell noise std-dev added per
            1000 P/E cycles.
        retention_shift_coeff: downward shift (volts) per decade of
            retention hours at zero cycling damage.
        retention_cycling_factor: how strongly cycling damage amplifies
            retention loss (fraction per 1000 cycles).
    """

    cycling_sigma_per_kcycle: float = 0.025
    retention_shift_coeff: float = 0.005
    retention_cycling_factor: float = 0.65

    def extra_sigma(self, condition: OperatingCondition) -> float:
        """Additional Gaussian noise std-dev from cycling damage."""
        return self.cycling_sigma_per_kcycle * condition.pe_cycles / 1000.0

    def retention_shift(self, condition: OperatingCondition) -> float:
        """Downward Vth shift of programmed states (negative volts)."""
        if condition.retention_hours <= 0.0:
            return 0.0
        decades = np.log10(1.0 + condition.retention_hours)
        amplification = 1.0 + self.retention_cycling_factor \
            * condition.pe_cycles / 1000.0
        return -self.retention_shift_coeff * decades * amplification


def page_bit_error_rate(
    aggressors: int,
    condition: OperatingCondition = WORST_CASE,
    model: Optional[MlcVthModel] = None,
    stress: Optional[StressModel] = None,
    rng: Optional[np.random.Generator] = None,
) -> float:
    """Monte-Carlo raw BER of one word line.

    Args:
        aggressors: aggressor program count for the word line.
        condition: cycling/retention stress point.
        model: Vth model parameters.
        stress: stress-translation coefficients.
        rng: numpy random generator (seeded by the caller).

    Returns:
        Raw bit error rate (bit errors / stored bits) of the word line.
    """
    model = model or MlcVthModel()
    stress = stress or StressModel()
    sample = simulate_page_vth(
        aggressors,
        model=model,
        rng=rng,
        extra_shift=stress.retention_shift(condition),
        extra_sigma=stress.extra_sigma(condition),
    )
    total_bits = 2 * model.cells_per_page
    return bit_errors(sample) / total_bits
