"""Bit-error-rate model under P/E cycling and retention stress.

The paper measures BER at the device's worst-case operating condition:
3K P/E cycles followed by one year of retention.  We model the two
stress components the way the flash literature describes them:

* **P/E cycling** damages the tunnel oxide; the damage widens every
  state's distribution.  We model the extra noise std-dev as growing
  linearly with cycle count.
* **Retention** leaks stored charge; programmed states drift down
  (left), by an amount that grows logarithmically with time and is
  amplified by prior cycling damage.
* **Read disturb** weakly programs the block's unselected cells: the
  erased state creeps up (right) with the number of reads the block
  absorbed since the page was programmed.

Combined with the interference right-shift from aggressor programs,
these produce gray-coded bit errors at the read references.

Two evaluators share the model.  :func:`page_bit_error_rate` is the
Monte-Carlo oracle (sample a cell population, count gray-coded
mismatches); :func:`expected_page_ber` is the closed-form expectation
of the same experiment (Gaussian state mixtures against the read
references, with the aggressor rectified-normal sum moment-matched).
The runtime physics engine (:mod:`repro.reliability.physics`) uses the
closed form on every read; the differential tests pin the two together.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Optional, Tuple

import numpy as np

from repro.reliability.vth import (
    GRAY_CODE,
    MlcVthModel,
    bit_errors,
    simulate_page_vth,
)


@dataclasses.dataclass(frozen=True)
class OperatingCondition:
    """A P/E-cycling + retention + read-disturb stress point.

    Attributes:
        pe_cycles: program/erase cycles endured before the measurement.
        retention_hours: elapsed time since programming, in hours.
        read_disturbs: reads the page's block absorbed since the page
            was programmed.
    """

    pe_cycles: int = 0
    retention_hours: float = 0.0
    read_disturbs: int = 0

    def __post_init__(self) -> None:
        if self.pe_cycles < 0:
            raise ValueError("pe_cycles must be non-negative")
        if self.retention_hours < 0:
            raise ValueError("retention_hours must be non-negative")
        if self.read_disturbs < 0:
            raise ValueError("read_disturbs must be non-negative")


#: The paper's worst-case condition: 3K P/E cycles and 1-year retention.
WORST_CASE = OperatingCondition(pe_cycles=3000, retention_hours=24 * 365)


@dataclasses.dataclass(frozen=True)
class StressModel:
    """Coefficients translating an operating condition into Vth stress.

    Attributes:
        cycling_sigma_per_kcycle: extra per-cell noise std-dev added per
            1000 P/E cycles.
        retention_shift_coeff: downward shift (volts) per decade of
            retention hours at zero cycling damage.
        retention_cycling_factor: how strongly cycling damage amplifies
            retention loss (fraction per 1000 cycles).
        read_disturb_coeff: upward shift (volts) of the erased state per
            decade of block reads since the page was programmed.
    """

    cycling_sigma_per_kcycle: float = 0.025
    retention_shift_coeff: float = 0.005
    retention_cycling_factor: float = 0.65
    read_disturb_coeff: float = 0.02

    def extra_sigma(self, condition: OperatingCondition) -> float:
        """Additional Gaussian noise std-dev from cycling damage."""
        return self.cycling_sigma_per_kcycle * condition.pe_cycles / 1000.0

    def retention_shift(self, condition: OperatingCondition) -> float:
        """Downward Vth shift of programmed states (negative volts)."""
        if condition.retention_hours <= 0.0:
            return 0.0
        decades = np.log10(1.0 + condition.retention_hours)
        amplification = 1.0 + self.retention_cycling_factor \
            * condition.pe_cycles / 1000.0
        return -self.retention_shift_coeff * decades * amplification

    def disturb_shift(self, condition: OperatingCondition) -> float:
        """Upward Vth shift of the erased state (positive volts)."""
        if condition.read_disturbs <= 0:
            return 0.0
        return self.read_disturb_coeff * math.log10(
            1.0 + condition.read_disturbs)


def page_bit_error_rate(
    aggressors: int,
    condition: OperatingCondition = WORST_CASE,
    model: Optional[MlcVthModel] = None,
    stress: Optional[StressModel] = None,
    rng: Optional[np.random.Generator] = None,
    ref_shift: float = 0.0,
) -> float:
    """Monte-Carlo raw BER of one word line.

    Args:
        aggressors: aggressor program count for the word line.
        condition: cycling/retention/read-disturb stress point.
        model: Vth model parameters.
        stress: stress-translation coefficients.
        rng: numpy random generator (seeded by the caller).
        ref_shift: common shift applied to the read references — the
            voltage-shift read-retry knob.

    Returns:
        Raw bit error rate (bit errors / stored bits) of the word line.
    """
    model = model or MlcVthModel()
    stress = stress or StressModel()
    sample = simulate_page_vth(
        aggressors,
        model=model,
        rng=rng,
        extra_shift=stress.retention_shift(condition),
        extra_sigma=stress.extra_sigma(condition),
        disturb_shift=stress.disturb_shift(condition),
    )
    total_bits = 2 * model.cells_per_page
    return bit_errors(sample, ref_shift=ref_shift) / total_bits


def _norm_cdf(x: float, mu: float, sigma: float) -> float:
    """Gaussian CDF via :func:`math.erf` (no scipy dependency here)."""
    return 0.5 * (1.0 + math.erf((x - mu) / (sigma * math.sqrt(2.0))))


def _rectified_moments(mean: float, std: float) -> Tuple[float, float]:
    """Mean and variance of ``max(N(mean, std), 0)``.

    The Monte-Carlo model clips each aggressor's per-cell movement at
    zero; this is the matching rectified-Gaussian moment pair used to
    approximate the k-aggressor coupling sum with a normal.
    """
    if std <= 0.0:
        m = max(mean, 0.0)
        return m, 0.0
    alpha = mean / std
    phi = math.exp(-0.5 * alpha * alpha) / math.sqrt(2.0 * math.pi)
    cdf = 0.5 * (1.0 + math.erf(alpha / math.sqrt(2.0)))
    first = mean * cdf + std * phi
    second = (mean * mean + std * std) * cdf + mean * std * phi
    return first, max(second - first * first, 0.0)


def expected_page_ber(
    aggressors: int,
    condition: OperatingCondition = WORST_CASE,
    model: Optional[MlcVthModel] = None,
    stress: Optional[StressModel] = None,
    *,
    ref_shift: float = 0.0,
    page: str = "both",
    finalized: bool = True,
) -> float:
    """Closed-form expected raw BER of one word line.

    The analytic counterpart of :func:`page_bit_error_rate`: each of the
    four MLC states is a Gaussian (centre shifted by retention or read
    disturb, variance widened by cycling damage and the moment-matched
    aggressor coupling sum); the confusion matrix against the (possibly
    shifted) read references is integrated exactly, and gray-coded bit
    mismatches are weighted by uniform state priors.  The runtime
    physics engine evaluates this on every read; the Monte-Carlo
    function above is kept as the convergence oracle.

    Args:
        aggressors: aggressor program count for the word line.
        condition: cycling/retention/read-disturb stress point.
        model: Vth model parameters.
        stress: stress-translation coefficients.
        ref_shift: common shift applied to the read references — each
            voltage-shift retry rung re-evaluates this function with a
            different shift (arXiv:2209.01424).
        page: ``"lsb"``, ``"msb"``, or ``"both"`` — which of the word
            line's pages (gray bit columns) the BER is computed over.
        finalized: ``False`` models a word line whose MSB page is not
            yet programmed: one bit in two widely separated states
            (erased vs the intermediate ``lsb_center`` state), read
            binary against ``read_refs[0]`` — the SLC-like margin
            unfinalised RPS pages enjoy.

    Returns:
        Expected raw bit error rate in ``[0, 1]``.
    """
    if page not in ("lsb", "msb", "both"):
        raise ValueError("page must be 'lsb', 'msb' or 'both'")
    model = model or MlcVthModel()
    stress = stress or StressModel()

    agg_mean_1, agg_var_1 = _rectified_moments(
        model.aggressor_shift_mean, model.aggressor_shift_std)
    c = model.coupling_ratio
    agg_mean = aggressors * c * agg_mean_1
    agg_var = aggressors * c * c * agg_var_1

    extra_sigma = stress.extra_sigma(condition)
    retention = stress.retention_shift(condition)
    disturb = stress.disturb_shift(condition)

    def state_params(state: int, center: float,
                     base_sigma: float) -> Tuple[float, float]:
        mu = center + agg_mean + (disturb if state == 0 else retention)
        var = base_sigma * base_sigma + extra_sigma * extra_sigma + agg_var
        return mu, math.sqrt(var)

    if not finalized:
        # LSB-only word line: erased (bit 1) vs intermediate (bit 0),
        # one reference.  Retention acts on the charged intermediate
        # state, read disturb on the erased one.
        ref = model.read_refs[0] + ref_shift
        mu_e, sig_e = state_params(0, model.state_centers[0],
                                   model.sigma_erased)
        mu_i, sig_i = state_params(1, model.lsb_center,
                                   model.sigma_programmed)
        # Error if an erased cell reads above the ref, or an
        # intermediate cell reads at/below it.
        p = 0.5 * (1.0 - _norm_cdf(ref, mu_e, sig_e)) \
            + 0.5 * _norm_cdf(ref, mu_i, sig_i)
        return min(max(p, 0.0), 1.0)

    sigmas = (model.sigma_erased, model.sigma_programmed,
              model.sigma_programmed, model.sigma_programmed)
    refs = [r + ref_shift for r in model.read_refs]
    gray = GRAY_CODE
    if page == "lsb":
        bits = (0,)
    elif page == "msb":
        bits = (1,)
    else:
        bits = (0, 1)

    total = 0.0
    for stored in range(4):
        mu, sig = state_params(stored, model.state_centers[stored],
                               sigmas[stored])
        # P(read state j | stored) from the Gaussian mass between refs.
        cdfs = [_norm_cdf(r, mu, sig) for r in refs]
        probs = (cdfs[0], cdfs[1] - cdfs[0], cdfs[2] - cdfs[1],
                 1.0 - cdfs[2])
        for observed in range(4):
            if observed == stored:
                continue
            mismatches = sum(
                1 for b in bits if gray[stored][b] != gray[observed][b])
            if mismatches:
                total += 0.25 * probs[observed] * mismatches
    ber = total / len(bits)
    return min(max(ber, 0.0), 1.0)
