"""Aggressor-program analysis of in-block program orders.

Cell-to-cell interference couples a programmed word line to program
operations on its immediate neighbours.  Once word line *k*'s data is
final (its MSB page programmed), every later program to WL(k-1) or
WL(k+1) is an *aggressor* that shifts WL(k)'s threshold voltages to the
right.  The paper's key device-level observation is that the FPS order
admits exactly one aggressor per word line, and that any RPS-legal
order admits no more — Constraint 4 buys nothing.

These functions quantify that: given a program order (a sequence of
canonical page indices), they report the aggressor operations each word
line experiences after its MSB program.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.nand.page_types import PageType, page_index, split_index


def aggressor_events(
    order: Sequence[int], wordlines: int
) -> List[List[Tuple[int, PageType]]]:
    """Aggressor program operations per word line.

    Args:
        order: full in-block program order (canonical page indices).
        wordlines: number of word lines in the block.

    Returns:
        For each word line ``k``, the list of ``(wordline, ptype)``
        program operations applied to WL(k-1) or WL(k+1) **after**
        MSB(k) was programmed.  A word line whose MSB page never
        appears in the order gets an empty list (its final state is
        never formed, so the metric does not apply).
    """
    positions = {index: pos for pos, index in enumerate(order)}
    events: List[List[Tuple[int, PageType]]] = [[] for _ in range(wordlines)]
    for victim in range(wordlines):
        msb_pos = positions.get(page_index(victim, PageType.MSB))
        if msb_pos is None:
            continue
        for neighbour in (victim - 1, victim + 1):
            if not (0 <= neighbour < wordlines):
                continue
            for ptype in (PageType.LSB, PageType.MSB):
                pos = positions.get(page_index(neighbour, ptype))
                if pos is not None and pos > msb_pos:
                    events[victim].append((neighbour, ptype))
    return events


def aggressor_counts(order: Sequence[int], wordlines: int) -> List[int]:
    """Number of aggressor program operations per word line.

    For the FPS order and any RPS-legal order this is at most 1 (the
    MSB program of the next word line); for unconstrained orders it can
    reach 4 — the Figure 2(a) worst case.
    """
    return [len(ops) for ops in aggressor_events(order, wordlines)]


def max_aggressors(order: Sequence[int], wordlines: int) -> int:
    """The worst per-word-line aggressor count of an order."""
    counts = aggressor_counts(order, wordlines)
    return max(counts) if counts else 0


def interference_exposure(
    order: Sequence[int],
    wordlines: int,
    lsb_weight: float = 1.0,
    msb_weight: float = 1.0,
) -> List[float]:
    """Weighted aggressor exposure per word line.

    Allows LSB and MSB aggressor programs to contribute differently
    (an MSB program moves less charge per step than the first LSB
    program from the erased state); the paper's argument uses equal
    weights, which is the default.
    """
    exposures: List[float] = []
    for ops in aggressor_events(order, wordlines):
        total = 0.0
        for _, ptype in ops:
            total += lsb_weight if ptype is PageType.LSB else msb_weight
        exposures.append(total)
    return exposures


def victim_pages(order: Sequence[int], wordlines: int) -> List[int]:
    """Word lines whose final state exists (MSB page programmed)."""
    programmed = {split_index(i)[0] for i in order
                  if split_index(i)[1] is PageType.MSB}
    return sorted(programmed)
