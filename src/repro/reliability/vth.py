"""Monte-Carlo threshold-voltage (Vth) model for 2-bit MLC pages.

A programmed 2-bit MLC cell sits in one of four Vth states — the erased
state ``11`` and three programmed states ``01``, ``00``, ``10`` (gray
coded, Figure 1 of the paper).  This module simulates the Vth of every
cell of a word line after programming, adds the right-shift caused by
aggressor programs on neighbouring word lines, and reports the paper's
reliability metric: the width ``WPi`` of each state's distribution and
their total sum.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

#: Gray coding of the four MLC states, LSB first: state index -> (LSB, MSB).
GRAY_CODE: Tuple[Tuple[int, int], ...] = ((1, 1), (0, 1), (0, 0), (1, 0))


@dataclasses.dataclass(frozen=True)
class MlcVthModel:
    """Parameters of the synthetic 2X-nm MLC Vth model.

    Voltages are in arbitrary volt-like units; what matters for the
    reproduction is the *relative* behaviour of FPS vs RPS orders, which
    depends only on aggressor counts and coupling, not on absolute
    calibration.

    Attributes:
        state_centers: nominal Vth centre of each of the 4 states.
        read_refs: the three read reference voltages separating them.
        sigma_erased: intrinsic std-dev of the erased state.
        sigma_programmed: intrinsic std-dev of a programmed state
            (tight, thanks to incremental-step-pulse programming).
        coupling_ratio: fraction of an aggressor cell's Vth change that
            couples onto the victim cell.
        aggressor_shift_mean: mean Vth movement of one aggressor
            program operation on the aggressor's own cells.
        aggressor_shift_std: per-cell variation of that movement.
        cells_per_page: Monte-Carlo population per page.
        width_quantiles: lower/upper quantiles defining a state's width.
        lsb_center: Vth centre of the *intermediate* state an LSB-only
            program leaves behind on a word line whose MSB page is not
            yet written.  Such a word line stores one bit in two widely
            separated states (erased vs intermediate, read against
            ``read_refs[0]``), which is why unfinalised RPS pages enjoy
            SLC-like error margins.
    """

    state_centers: Tuple[float, float, float, float] = (-2.8, 0.9, 1.9, 2.9)
    read_refs: Tuple[float, float, float] = (-0.7, 1.4, 2.4)
    sigma_erased: float = 0.32
    sigma_programmed: float = 0.12
    coupling_ratio: float = 0.10
    aggressor_shift_mean: float = 1.0
    aggressor_shift_std: float = 0.55
    cells_per_page: int = 4096
    width_quantiles: Tuple[float, float] = (0.005, 0.995)
    lsb_center: float = 1.4

    def __post_init__(self) -> None:
        if len(self.state_centers) != 4 or len(self.read_refs) != 3:
            raise ValueError("MLC model needs 4 state centres and 3 refs")
        if not (0.0 < self.coupling_ratio < 1.0):
            raise ValueError("coupling_ratio must be in (0, 1)")
        if self.cells_per_page <= 0:
            raise ValueError("cells_per_page must be positive")


@dataclasses.dataclass
class PageVthSample:
    """One simulated word line: per-cell Vth plus bookkeeping."""

    states: np.ndarray  #: programmed state index per cell (0..3)
    vth: np.ndarray  #: simulated Vth per cell
    model: MlcVthModel

    def state_widths(self) -> List[float]:
        """``WPi`` of each state present on the word line."""
        lo_q, hi_q = self.model.width_quantiles
        widths: List[float] = []
        for state in range(4):
            mask = self.states == state
            if not np.any(mask):
                widths.append(0.0)
                continue
            values = self.vth[mask]
            lo, hi = np.quantile(values, [lo_q, hi_q])
            widths.append(float(hi - lo))
        return widths

    def total_width(self) -> float:
        """The paper's Figure 4(a) metric: the sum of the WPi's."""
        return float(sum(self.state_widths()))


def simulate_page_vth(
    aggressors: int,
    model: Optional[MlcVthModel] = None,
    rng: Optional[np.random.Generator] = None,
    extra_shift: float = 0.0,
    extra_sigma: float = 0.0,
    disturb_shift: float = 0.0,
) -> PageVthSample:
    """Simulate the final Vth of one word line's cells.

    Args:
        aggressors: number of neighbour program operations applied
            after this word line's MSB program (from
            :func:`repro.reliability.interference.aggressor_counts`).
        model: Vth model parameters.
        rng: numpy random generator (seeded by the caller).
        extra_shift: additional uniform Vth shift (e.g. retention loss,
            negative) applied to programmed states.
        extra_sigma: additional per-cell Gaussian noise std-dev (e.g.
            P/E-cycling damage).
        disturb_shift: additional positive Vth shift applied to
            *erased* cells only — read disturb weakly programs the
            block's unselected cells, pushing the erased state toward
            the first read reference.

    Returns:
        A :class:`PageVthSample` with random data (uniform over the 4
        states) and the resulting per-cell Vth.
    """
    model = model or MlcVthModel()
    rng = rng or np.random.default_rng()
    n = model.cells_per_page
    states = rng.integers(0, 4, size=n)
    centers = np.asarray(model.state_centers)[states]
    sigma = np.where(states == 0, model.sigma_erased, model.sigma_programmed)
    vth = centers + rng.normal(0.0, 1.0, size=n) * sigma
    for _ in range(aggressors):
        # Each aggressor program moves its own cells by a random amount;
        # a fraction (the coupling ratio) of that movement appears as a
        # positive shift on the victim's cells.
        movement = np.clip(
            rng.normal(model.aggressor_shift_mean, model.aggressor_shift_std,
                       size=n),
            0.0, None,
        )
        vth = vth + model.coupling_ratio * movement
    if extra_sigma > 0.0:
        vth = vth + rng.normal(0.0, extra_sigma, size=n)
    if extra_shift != 0.0:
        # Retention charge loss affects programmed states (stored charge
        # leaks); the erased state barely moves.
        vth = vth + np.where(states == 0, 0.0, extra_shift)
    if disturb_shift != 0.0:
        # Read disturb is the dual: the erased state creeps up, the
        # programmed states barely move.
        vth = vth + np.where(states == 0, disturb_shift, 0.0)
    return PageVthSample(states=states, vth=vth, model=model)


def read_states(sample: PageVthSample,
                ref_shift: float = 0.0) -> np.ndarray:
    """Read back each cell's state by comparing Vth to the read refs.

    ``ref_shift`` moves all three references together — the voltage-
    shift read-retry knob (arXiv:2209.01424): a negative shift tracks
    retention charge loss, recovering margin without rewriting data.
    """
    refs = np.asarray(sample.model.read_refs) + ref_shift
    return np.searchsorted(refs, sample.vth, side="left")


def bit_errors(sample: PageVthSample, ref_shift: float = 0.0) -> int:
    """Gray-coded bit errors when reading the sampled word line."""
    gray = np.asarray(GRAY_CODE)
    observed = np.clip(read_states(sample, ref_shift), 0, 3)
    stored_bits = gray[sample.states]
    read_bits = gray[observed]
    return int(np.sum(stored_bits != read_bits))
