"""ECC capability model: from raw BER to uncorrectable page errors.

The paper's reliability argument stops at raw bit error rates; a
storage system lives or dies by what its ECC makes of them.  This
module models a BCH-style code correcting ``t`` bits per codeword and
derives, from a raw BER, the probability that a codeword (and hence a
page) is uncorrectable — which turns the Figure 4(b) measurement into
an *endurance* statement: the highest P/E cycle count at which the
device still meets an uncorrectable-error target.  Used by
:mod:`repro.experiments.endurance` to show that RPS preserves not just
the raw BER but the usable lifetime.
"""

from __future__ import annotations

import dataclasses

from scipy import stats


@dataclasses.dataclass(frozen=True)
class EccConfig:
    """A BCH-like code: ``correctable_bits`` per ``codeword_bytes``.

    The default — 40 bits per 1-KB codeword — is typical of the BCH
    engines shipped with 2X-nm MLC controllers.
    """

    codeword_bytes: int = 1024
    correctable_bits: int = 40

    def __post_init__(self) -> None:
        if self.codeword_bytes <= 0:
            raise ValueError("codeword_bytes must be positive")
        if self.correctable_bits < 0:
            raise ValueError("correctable_bits must be non-negative")

    @property
    def codeword_bits(self) -> int:
        """Payload bits per codeword."""
        return 8 * self.codeword_bytes


def codeword_failure_probability(raw_ber: float,
                                 config: EccConfig = EccConfig()
                                 ) -> float:
    """P[more than t bit errors in one codeword] for i.i.d. errors."""
    if not (0.0 <= raw_ber <= 1.0):
        raise ValueError(f"raw_ber must be in [0, 1], got {raw_ber}")
    if raw_ber == 0.0:
        return 0.0
    return float(stats.binom.sf(config.correctable_bits,
                                config.codeword_bits, raw_ber))


def page_failure_probability(raw_ber: float, page_size: int = 4096,
                             config: EccConfig = EccConfig()) -> float:
    """P[any codeword of a page is uncorrectable]."""
    if page_size <= 0:
        raise ValueError("page_size must be positive")
    codewords = max(1, page_size // config.codeword_bytes)
    p_codeword = codeword_failure_probability(raw_ber, config)
    return float(1.0 - (1.0 - p_codeword) ** codewords)


def max_tolerable_ber(target_page_failure: float = 1e-12,
                      page_size: int = 4096,
                      config: EccConfig = EccConfig()) -> float:
    """Highest raw BER the ECC absorbs within a page-failure target.

    Solved by bisection; the failure probability is monotonic in the
    raw BER.
    """
    if not (0.0 < target_page_failure < 1.0):
        raise ValueError("target_page_failure must be in (0, 1)")
    low, high = 0.0, 0.5
    for _ in range(200):
        mid = (low + high) / 2.0
        if page_failure_probability(mid, page_size, config) \
                <= target_page_failure:
            low = mid
        else:
            high = mid
    return low
