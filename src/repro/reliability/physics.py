"""Runtime physics-grounded error engine.

Turns the offline reliability models (:mod:`repro.reliability.vth`,
:mod:`repro.reliability.ber`, :mod:`repro.reliability.interference`,
:mod:`repro.reliability.ecc`) into a live, default-off error source for
the simulator: every host read samples a bit-error outcome from the
closed-form BER of the page's *actual* history — the aggressor programs
its word line absorbed under the FTL's real in-block program order, the
block's P/E cycle count, the sim-time elapsed since the page was
programmed (retention), and the reads the block absorbed since then
(read disturb).  RPS vs FPS ordering therefore modulates error rates
end to end, which is the paper's fig4 lifetime argument made emergent.

Error recovery is a voltage-shift read-retry ladder (arXiv:2209.01424):
each retry re-reads at a shifted reference voltage and re-evaluates the
BER at that shift, escalating to a stronger soft-decision ECC mode and
finally to parity reconstruction.  The controller charges latency per
rung actually attempted.

Determinism contract: one ``random.Random(seed)`` stream, consumed only
on sampled (host) reads, in completion order — which both kernels and
both stepping modes retire identically — so results are byte-identical
across ``kernel``/``stepping`` choices and across process boundaries.
The engine is default-off: nothing in this module runs unless a
:class:`PhysicsEngine` is attached to the controller.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Dict, Optional, Sequence, Tuple

from repro.nand.page_types import PageType, page_index
from repro.reliability.ber import (
    OperatingCondition,
    StressModel,
    expected_page_ber,
)
from repro.reliability.ecc import EccConfig, page_failure_probability
from repro.reliability.interference import aggressor_counts
from repro.reliability.vth import MlcVthModel


@dataclasses.dataclass(frozen=True)
class PhysicsConfig:
    """Configuration of the runtime error engine.

    Attributes:
        seed: seed of the engine's dedicated RNG stream.
        pe_baseline: P/E cycles assumed already endured before the
            simulation starts (added to each block's live erase count),
            so short runs can be evaluated at end-of-life wear.
        retention_baseline_hours: retention age assumed for every page
            on top of its in-simulation age — models a device read
            after sitting on a shelf.
        retention_hours_per_second: scale factor from simulated seconds
            to retention hours (time acceleration).  Zero freezes the
            retention clock at the baseline.
        retention_quantum_hours: retention ages are bucketed to this
            quantum before the BER lookup, bounding the memo table.
        disturb_quantum: read-disturb counts are bucketed likewise.
        ecc_escalated_bits: correctable bits of the escalated
            (soft-decision) ECC mode the ladder falls back to after the
            voltage shifts are exhausted.
        ecc_escalation_reads: extra page reads the escalated ECC mode
            costs (soft sensing needs multiple strobes).
        retry_shifts: read-reference shifts tried in order by the retry
            ladder.  Signs alternate because the two dominant stresses
            move Vth in opposite directions: retention drifts
            programmed states left (negative shift recovers), while
            aggressor coupling pushes right (positive shift recovers).
        model: Vth model shared with the Monte-Carlo oracle.
        stress: stress-translation coefficients shared with the oracle.
        ecc: baseline hard-decision ECC capability.
    """

    seed: int = 20417
    pe_baseline: int = 0
    retention_baseline_hours: float = 0.0
    retention_hours_per_second: float = 0.0
    retention_quantum_hours: float = 1.0
    disturb_quantum: int = 64
    ecc_escalated_bits: int = 72
    ecc_escalation_reads: int = 3
    retry_shifts: Tuple[float, ...] = (-0.04, 0.08, -0.08, 0.16)
    model: MlcVthModel = dataclasses.field(default_factory=MlcVthModel)
    stress: StressModel = dataclasses.field(default_factory=StressModel)
    ecc: EccConfig = dataclasses.field(default_factory=EccConfig)

    def __post_init__(self) -> None:
        if self.pe_baseline < 0:
            raise ValueError("pe_baseline must be non-negative")
        if self.retention_baseline_hours < 0:
            raise ValueError("retention_baseline_hours must be non-negative")
        if self.retention_hours_per_second < 0:
            raise ValueError("retention_hours_per_second must be "
                             "non-negative")
        if self.retention_quantum_hours <= 0:
            raise ValueError("retention_quantum_hours must be positive")
        if self.disturb_quantum <= 0:
            raise ValueError("disturb_quantum must be positive")
        if self.ecc_escalated_bits <= self.ecc.correctable_bits:
            raise ValueError("ecc_escalated_bits must exceed the baseline "
                             "ECC capability")
        if self.ecc_escalation_reads < 0:
            raise ValueError("ecc_escalation_reads must be non-negative")

    def to_dict(self) -> dict:
        """Serialize (JSON-compatible; inverse of :meth:`from_dict`)."""
        data = dataclasses.asdict(self)
        data["retry_shifts"] = list(self.retry_shifts)
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "PhysicsConfig":
        """Reconstruct a config serialized by :meth:`to_dict`."""
        kwargs = dict(data)
        kwargs["retry_shifts"] = tuple(kwargs.get("retry_shifts", ()))
        for key, factory in (("model", MlcVthModel), ("stress", StressModel),
                             ("ecc", EccConfig)):
            value = kwargs.get(key)
            if isinstance(value, dict):
                nested = dict(value)
                for tup in ("state_centers", "read_refs", "width_quantiles"):
                    if tup in nested:
                        nested[tup] = tuple(nested[tup])
                kwargs[key] = factory(**nested)
        return cls(**kwargs)


@dataclasses.dataclass(slots=True)
class ReadOutcome:
    """Result of sampling one host read against the physics model.

    Attributes:
        ber: rung-0 (unshifted) expected raw BER of the read.
        probability: rung-0 page ECC-failure probability.
        error: whether the baseline read + hard ECC failed.
        shifts_tried: voltage-shift rungs attempted (0 when no error).
        recovered_shift: the reference shift that recovered the read,
            or None.
        ecc_escalated: whether the soft-decision ECC mode was invoked.
        uncorrectable: whether the ladder was exhausted (the controller
            then tries parity reconstruction).
        best_ber: lowest BER seen across the rungs attempted.
    """

    ber: float
    probability: float
    error: bool = False
    shifts_tried: int = 0
    recovered_shift: Optional[float] = None
    ecc_escalated: bool = False
    uncorrectable: bool = False
    best_ber: float = 0.0


class _BlockState:
    """Per-(chip, block) program-order and read bookkeeping."""

    __slots__ = ("msb", "agg", "prog_time", "prog_reads", "reads")

    def __init__(self) -> None:
        self.msb: set = set()               # word lines with MSB programmed
        self.agg: Dict[int, int] = {}       # word line -> aggressor count
        self.prog_time: Dict[int, float] = {}   # page -> program sim-time
        self.prog_reads: Dict[int, int] = {}    # page -> block reads then
        self.reads = 0                      # block reads since erase


class PhysicsEngine:
    """Samples physics-grounded read errors from live device state.

    Attach with :meth:`repro.sim.controller.Controller.attach_physics`
    after warmup; :meth:`prime` replays each block's recorded program
    history (``track_history=True`` required) so warmup-written pages
    carry their true aggressor counts into the measured phase.
    """

    def __init__(self, config: Optional[PhysicsConfig] = None) -> None:
        self.config = config or PhysicsConfig()
        self._rng = random.Random(self.config.seed)
        self._array = None
        self._page_size = 4096
        self._blocks: Dict[Tuple[int, int], _BlockState] = {}
        self._memo: Dict[tuple, Tuple[float, float]] = {}
        self._ecc_escalated = EccConfig(
            codeword_bytes=self.config.ecc.codeword_bytes,
            correctable_bits=self.config.ecc_escalated_bits,
        )
        # Summary counters (updated in deterministic completion order).
        self.reads_sampled = 0
        self.ber_sum = 0.0
        self.max_ber = 0.0
        self.read_errors = 0
        self.shift_retries = 0
        self.shift_recoveries = 0
        self.ecc_escalations = 0
        self.ecc_recoveries = 0
        self.uncorrectable = 0
        self.first_error_read: Optional[int] = None
        self.first_uncorrectable_read: Optional[int] = None

    # ------------------------------------------------------------------
    # attachment / history replay

    def bind(self, array, now: float) -> None:
        """Bind to the NAND array and replay recorded program history."""
        self._array = array
        self._page_size = array.geometry.page_size
        self.prime(now)

    def prime(self, now: float) -> None:
        """Replay ``block.program_history`` into the engine's state.

        Pages programmed before attachment get their true aggressor
        counts but a retention age of zero at ``now`` (their program
        timestamps were not observed).
        """
        if self._array is None:
            raise RuntimeError("bind() the engine to an array first")
        for chip_id, chip in enumerate(self._array.chips):
            for block_id, blk in enumerate(chip.blocks):
                if not blk.program_history:
                    continue
                for page in blk.program_history:
                    self.note_program(chip_id, block_id, page, now)

    # ------------------------------------------------------------------
    # bookkeeping hooks (called by the controller on op completion)

    def _block_state(self, chip_id: int, block_id: int) -> _BlockState:
        key = (chip_id, block_id)
        st = self._blocks.get(key)
        if st is None:
            st = self._blocks[key] = _BlockState()
        return st

    def note_program(self, chip_id: int, block_id: int, page: int,
                     now: float) -> None:
        """Record a page program: aggressor counts + retention clock."""
        st = self._block_state(chip_id, block_id)
        wl = page >> 1
        # This program is an aggressor for any finalised neighbour.
        for nb in (wl - 1, wl + 1):
            if nb in st.msb:
                st.agg[nb] = st.agg.get(nb, 0) + 1
        if page & 1:
            st.msb.add(wl)
            st.agg.setdefault(wl, 0)
        st.prog_time[page] = now
        st.prog_reads[page] = st.reads

    def note_erase(self, chip_id: int, block_id: int) -> None:
        """Reset a block's physics state on erase."""
        self._blocks.pop((chip_id, block_id), None)

    # ------------------------------------------------------------------
    # read sampling

    def on_read(self, chip_id: int, block_id: int, page: int, now: float,
                *, sample: bool = True) -> Optional[ReadOutcome]:
        """Account one read; when ``sample``, draw an error outcome.

        Every read (host, GC, parity backup) advances the block's
        read-disturb counter; only host reads are sampled for errors —
        internal relocation reads go through the same ECC but their
        failures surface as host-visible effects elsewhere, and keeping
        the RNG stream host-only makes outcomes independent of GC
        scheduling details.
        """
        st = self._block_state(chip_id, block_id)
        disturbs = st.reads - st.prog_reads.get(page, st.reads)
        st.reads += 1
        if not sample:
            return None
        return self._sample(st, chip_id, block_id, page, now, disturbs)

    def _sample(self, st: _BlockState, chip_id: int, block_id: int,
                page: int, now: float, disturbs: int) -> ReadOutcome:
        cfg = self.config
        wl = page >> 1
        finalized = (wl in st.msb)
        # Aggressor coupling is defined relative to the final (MSB-
        # programmed) state; unfinalised LSB pages read binary with
        # SLC-like margins instead.
        aggr = st.agg.get(wl, 0) if finalized else 0
        blk = self._array.chips[chip_id].blocks[block_id]
        pe = cfg.pe_baseline + blk.erase_count
        age = cfg.retention_baseline_hours
        prog_t = st.prog_time.get(page)
        if prog_t is not None and cfg.retention_hours_per_second > 0.0:
            age += (now - prog_t) * cfg.retention_hours_per_second
        q = cfg.retention_quantum_hours
        age_q = math.floor(age / q) * q
        dist_q = (disturbs // cfg.disturb_quantum) * cfg.disturb_quantum
        kind = "msb" if page & 1 else "lsb"

        ber, pfail = self._probabilities(aggr, pe, age_q, dist_q, kind,
                                         finalized, 0.0, False)
        self.reads_sampled += 1
        self.ber_sum += ber
        if ber > self.max_ber:
            self.max_ber = ber
        outcome = ReadOutcome(ber=ber, probability=pfail, best_ber=ber)
        if self._rng.random() >= pfail:
            return outcome

        outcome.error = True
        self.read_errors += 1
        if self.first_error_read is None:
            self.first_error_read = self.reads_sampled
        best_ber = ber
        for shift in cfg.retry_shifts:
            outcome.shifts_tried += 1
            self.shift_retries += 1
            ber_s, p_s = self._probabilities(aggr, pe, age_q, dist_q, kind,
                                             finalized, shift, False)
            if ber_s < best_ber:
                best_ber = ber_s
            outcome.best_ber = best_ber
            if self._rng.random() >= p_s:
                outcome.recovered_shift = shift
                self.shift_recoveries += 1
                return outcome

        outcome.ecc_escalated = True
        self.ecc_escalations += 1
        # The controller re-reads at the best voltage found, then runs
        # the soft-decision ECC mode against that BER.
        _, p_esc = self._probabilities(aggr, pe, age_q, dist_q, kind,
                                       finalized, 0.0, True,
                                       ber_override=best_ber)
        if self._rng.random() >= p_esc:
            self.ecc_recoveries += 1
            return outcome

        outcome.uncorrectable = True
        self.uncorrectable += 1
        if self.first_uncorrectable_read is None:
            self.first_uncorrectable_read = self.reads_sampled
        return outcome

    def _probabilities(self, aggr: int, pe: int, age_hours: float,
                       disturbs: int, kind: str, finalized: bool,
                       ref_shift: float, escalated: bool,
                       ber_override: Optional[float] = None,
                       ) -> Tuple[float, float]:
        """Memoised (raw BER, page ECC-failure probability)."""
        key = (aggr, pe, age_hours, disturbs, kind, finalized, ref_shift,
               escalated, ber_override)
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if ber_override is not None:
            ber = ber_override
        else:
            condition = OperatingCondition(
                pe_cycles=pe,
                retention_hours=age_hours,
                read_disturbs=disturbs,
            )
            ber = expected_page_ber(
                aggr, condition, self.config.model, self.config.stress,
                ref_shift=ref_shift, page=kind, finalized=finalized,
            )
        ecc = self._ecc_escalated if escalated else self.config.ecc
        pfail = page_failure_probability(ber, page_size=self._page_size,
                                         config=ecc)
        result = (ber, float(pfail))
        self._memo[key] = result
        return result

    # ------------------------------------------------------------------
    # inspection / reporting

    def block_aggressors(self, chip_id: int, block_id: int) -> Dict[int, int]:
        """Per-word-line aggressor counts of a block (finalised WLs only)."""
        st = self._blocks.get((chip_id, block_id))
        if st is None:
            return {}
        return {wl: st.agg.get(wl, 0) for wl in sorted(st.msb)}

    def mean_ber(self) -> float:
        """Mean rung-0 BER over all sampled reads."""
        if self.reads_sampled == 0:
            return 0.0
        return self.ber_sum / self.reads_sampled

    def summary(self) -> dict:
        """JSON-compatible summary of the engine's counters."""
        return {
            "reads_sampled": self.reads_sampled,
            "mean_ber": self.mean_ber(),
            "max_ber": self.max_ber,
            "read_errors": self.read_errors,
            "shift_retries": self.shift_retries,
            "shift_recoveries": self.shift_recoveries,
            "ecc_escalations": self.ecc_escalations,
            "ecc_recoveries": self.ecc_recoveries,
            "uncorrectable": self.uncorrectable,
            "first_error_read": self.first_error_read,
            "first_uncorrectable_read": self.first_uncorrectable_read,
        }


# ----------------------------------------------------------------------
# offline oracle (differential-test counterpart of the runtime engine)

def oracle_page_state(history: Sequence[int], wordlines: int,
                      page: int) -> Tuple[int, bool]:
    """(aggressor count, finalized) of a page from a program history.

    Recomputes, via :func:`repro.reliability.interference
    .aggressor_counts` over the block's *recorded* program history, the
    exact state the runtime engine tracks incrementally — the
    differential tests pin the two implementations together.
    """
    wl = page >> 1
    finalized = page_index(wl, PageType.MSB) in history
    if not finalized:
        return 0, False
    counts = aggressor_counts(history, wordlines)
    return counts[wl], True


def oracle_read_probability(
    history: Sequence[int], wordlines: int, page: int,
    *,
    pe_cycles: int,
    retention_hours: float,
    read_disturbs: int,
    config: Optional[PhysicsConfig] = None,
    ref_shift: float = 0.0,
    page_size: int = 4096,
) -> Tuple[float, float]:
    """(raw BER, page ECC-failure probability) recomputed from scratch.

    The offline mirror of :meth:`PhysicsEngine._probabilities`: same
    closed-form BER, same ECC model, but fed from the recorded program
    history rather than the engine's incremental counters.  Quantise
    ``retention_hours``/``read_disturbs`` with the engine's quanta
    before calling if comparing against a live engine.
    """
    config = config or PhysicsConfig()
    aggressors, finalized = oracle_page_state(history, wordlines, page)
    condition = OperatingCondition(
        pe_cycles=pe_cycles,
        retention_hours=retention_hours,
        read_disturbs=read_disturbs,
    )
    kind = "msb" if page & 1 else "lsb"
    ber = expected_page_ber(
        aggressors, condition, config.model, config.stress,
        ref_shift=ref_shift, page=kind, finalized=finalized,
    )
    pfail = page_failure_probability(ber, page_size=page_size,
                                     config=config.ecc)
    return ber, float(pfail)
