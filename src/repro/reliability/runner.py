"""Measured runs with the physics-grounded error engine armed.

:func:`run_physics_workload` mirrors
:func:`repro.faults.runner.run_fault_workload` — same fault-free
preconditioning, same measured-phase counter deltas — but arms a
:class:`~repro.reliability.physics.PhysicsEngine` for the measured
phase.  The warmup stays physics-free (no RNG draws), then the engine
is attached and primed from each block's recorded program history, so
warmup-written pages enter the measured phase with their true aggressor
counts.  Because the engine replays ``block.program_history``, the run
requires ``track_history=True`` (the :class:`ExperimentConfig`
default).

The result couples the ordinary workload metrics with the engine's
error summary: cumulative BER, retry-ladder activity, and the
pages-to-ECC-failure onset the ``lifetime_physics`` experiment reports.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Optional, Sequence

from repro.experiments.runner import (
    ExperimentConfig,
    RunResult,
    begin_measured_phase,
    build_system,
    coerce_scenario,
    scenario_host,
    warmup_device,
    _snapshot,
)
from repro.reliability.physics import PhysicsConfig, PhysicsEngine
from repro.sim.host import StreamOp


@dataclasses.dataclass
class PhysicsRunResult:
    """One measured run plus the physics engine's error summary."""

    run: RunResult
    physics: Dict[str, Any]

    @property
    def mean_ber(self) -> float:
        """Mean rung-0 raw BER over the run's sampled host reads."""
        return float(self.physics["mean_ber"])

    @property
    def read_errors(self) -> int:
        """Host reads whose baseline read + hard ECC failed."""
        return int(self.physics["read_errors"])

    @property
    def uncorrectable(self) -> int:
        """Host reads the whole ladder (incl. escalated ECC) lost."""
        return int(self.physics["uncorrectable"])

    @property
    def first_uncorrectable_read(self) -> Optional[int]:
        """1-based sampled-read index of the first ECC failure, or None."""
        value = self.physics["first_uncorrectable_read"]
        return None if value is None else int(value)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot, invertible via :meth:`from_dict`."""
        return {"run": self.run.to_dict(), "physics": dict(self.physics)}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "PhysicsRunResult":
        """Inverse of :meth:`to_dict`."""
        return cls(run=RunResult.from_dict(data["run"]),
                   physics=dict(data["physics"]))


def run_physics_workload(
    *,
    ftl_name: str,
    streams: Optional[Sequence[Sequence[StreamOp]]] = None,
    scenario: Any = None,
    physics: Optional[PhysicsConfig] = None,
    config: Optional[ExperimentConfig] = None,
    max_events: Optional[int] = None,
    warmup_span: Optional[int] = None,
    tracer: Optional[object] = None,
) -> PhysicsRunResult:
    """Precondition physics-free, then measure with errors emerging.

    The workload comes from ``scenario`` (a
    :class:`~repro.scenarios.base.Scenario` or spec dict) or legacy
    ``streams`` — exactly one of the two.  ``physics`` defaults to
    :class:`~repro.reliability.physics.PhysicsConfig` defaults (fresh
    device, frozen retention clock).

    The returned result carries the measured phase's
    :class:`~repro.sim.stats.FaultStats` in ``run.stats.faults`` (the
    ladder counters) plus the engine summary in ``physics``.
    """
    workload = coerce_scenario(streams, scenario, "run_physics_workload")
    config = config or ExperimentConfig()
    if not config.track_history:
        raise ValueError(
            "run_physics_workload() needs config.track_history=True: "
            "the engine primes aggressor counts from block histories")
    sim, array, buffer, ftl, controller = build_system(ftl_name, config)

    tracing = tracer is not None and getattr(tracer, "enabled", True)
    if tracing:
        tracer.install(controller)
        tracer.begin_phase("warmup")
    warmup_device(sim, controller, ftl, config,
                  footprint=workload.footprint,
                  warmup_span=warmup_span, max_events=max_events)
    baseline, measured_stats = begin_measured_phase(controller, ftl,
                                                    config)
    if tracing:
        tracer.begin_phase("measured")

    engine = PhysicsEngine(physics or PhysicsConfig())
    controller.attach_physics(engine)
    ftl.fault_stats = measured_stats.faults

    host = scenario_host(sim, controller, workload)
    host.start()
    sim.run(max_events=max_events)
    if tracing:
        tracer.finish()
        measured_stats.metrics = tracer.metrics
        tracer.detach()

    final = _snapshot(ftl)
    deltas = {key: final[key] - baseline.get(key, 0) for key in final}
    run = RunResult(
        ftl_name=ftl_name,
        stats=measured_stats,
        counters=deltas,
        events=sim.processed,
        logical_pages=ftl.logical_pages,
    )
    return PhysicsRunResult(run=run, physics=engine.summary())
