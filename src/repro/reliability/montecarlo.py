"""Monte-Carlo driver for the Figure 4 reliability comparison.

The paper verifies RPS on >90 blocks (>5000 pages) of real 2X-nm MLC
chips, comparing FPS, ``RPSfull`` and ``RPShalf``: Figure 4(a) shows
box plots of the per-page total Vth width (sum of ``WPi``), Figure 4(b)
shows bit error rates at the worst-case condition.  This driver
recreates that population synthetically, and additionally includes the
unconstrained random order of Figure 2(a) to show what the constraints
are protecting against.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.core.rps import (
    ProgramOrder,
    fps_order,
    rps_full_order,
    rps_half_order,
    random_rps_order,
    unconstrained_random_order,
)
from repro.reliability.ber import (
    OperatingCondition,
    StressModel,
    WORST_CASE,
)
from repro.reliability.interference import aggressor_counts
from repro.reliability.vth import MlcVthModel, bit_errors, simulate_page_vth

#: Builds a program order for a block: ``factory(wordlines, rng)``.
OrderFactory = Callable[[int, random.Random], ProgramOrder]

#: The program orders compared in Figure 4, plus the unconstrained
#: worst case of Figure 2(a).
ORDER_FACTORIES: Dict[str, OrderFactory] = {
    "FPS": lambda n, rng: fps_order(n),
    "RPSfull": lambda n, rng: rps_full_order(n),
    "RPShalf": lambda n, rng: rps_half_order(n),
    "RPSrandom": random_rps_order,
    "unconstrained": unconstrained_random_order,
}


@dataclasses.dataclass(frozen=True)
class BoxStats:
    """Five-number summary (plus mean) of a sample population."""

    minimum: float
    p25: float
    median: float
    p75: float
    maximum: float
    mean: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "BoxStats":
        """Compute the summary from raw per-page samples."""
        arr = np.asarray(samples, dtype=float)
        if arr.size == 0:
            raise ValueError("cannot summarise an empty sample set")
        lo, q1, med, q3, hi = np.quantile(arr, [0.0, 0.25, 0.5, 0.75, 1.0])
        return cls(float(lo), float(q1), float(med), float(q3), float(hi),
                   float(arr.mean()))

    def __str__(self) -> str:
        return (
            f"min={self.minimum:.4g} p25={self.p25:.4g} "
            f"med={self.median:.4g} p75={self.p75:.4g} "
            f"max={self.maximum:.4g} mean={self.mean:.4g}"
        )


@dataclasses.dataclass
class ReliabilityResult:
    """Per-scheme outcome of the Figure 4 experiment."""

    scheme: str
    wpi_samples: np.ndarray
    ber_samples: np.ndarray
    aggressor_histogram: Dict[int, int]

    @property
    def wpi(self) -> BoxStats:
        """Box statistics of the per-page total Vth width (Fig. 4(a))."""
        return BoxStats.from_samples(self.wpi_samples)

    @property
    def ber(self) -> BoxStats:
        """Box statistics of the per-page bit error rate (Fig. 4(b))."""
        return BoxStats.from_samples(self.ber_samples)


def run_reliability_experiment(
    scheme: str,
    blocks: int = 90,
    wordlines: int = 64,
    condition: OperatingCondition = WORST_CASE,
    model: Optional[MlcVthModel] = None,
    stress: Optional[StressModel] = None,
    seed: int = 0,
) -> ReliabilityResult:
    """Measure WPi and BER distributions for one program-order scheme.

    Args:
        scheme: one of :data:`ORDER_FACTORIES` (``"FPS"``,
            ``"RPSfull"``, ``"RPShalf"``, ``"RPSrandom"``,
            ``"unconstrained"``).
        blocks: number of blocks in the measured population (paper: 90).
        wordlines: word lines per block (paper's chips: 128; the reboot
            example uses 64-LSB blocks, and 64 keeps the run fast).
        condition: stress point for the BER measurement.
        model: Vth model parameters.
        stress: stress-translation coefficients.
        seed: base RNG seed; the experiment is fully deterministic.

    Returns:
        A :class:`ReliabilityResult` with one WPi and one BER sample
        per fully-programmed word line of the population.
    """
    if scheme not in ORDER_FACTORIES:
        raise ValueError(
            f"unknown scheme {scheme!r}; choose from "
            f"{sorted(ORDER_FACTORIES)}"
        )
    factory = ORDER_FACTORIES[scheme]
    model = model or MlcVthModel()
    stress = stress or StressModel()
    order_rng = random.Random(seed)
    cell_rng = np.random.default_rng(seed + 1)

    extra_sigma = stress.extra_sigma(condition)
    extra_shift = stress.retention_shift(condition)

    wpi_samples: List[float] = []
    ber_samples: List[float] = []
    histogram: Dict[int, int] = {}
    for _ in range(blocks):
        order = factory(wordlines, order_rng)
        for count in aggressor_counts(order, wordlines):
            histogram[count] = histogram.get(count, 0) + 1
            fresh = simulate_page_vth(count, model=model, rng=cell_rng)
            wpi_samples.append(fresh.total_width())
            stressed = simulate_page_vth(
                count, model=model, rng=cell_rng,
                extra_shift=extra_shift, extra_sigma=extra_sigma,
            )
            ber_samples.append(
                bit_errors(stressed) / (2 * model.cells_per_page)
            )
    return ReliabilityResult(
        scheme=scheme,
        wpi_samples=np.asarray(wpi_samples),
        ber_samples=np.asarray(ber_samples),
        aggressor_histogram=histogram,
    )


def compare_schemes(
    schemes: Sequence[str] = ("FPS", "RPSfull", "RPShalf", "unconstrained"),
    **kwargs: object,
) -> Dict[str, ReliabilityResult]:
    """Run :func:`run_reliability_experiment` for several schemes."""
    return {
        scheme: run_reliability_experiment(scheme, **kwargs)  # type: ignore[arg-type]
        for scheme in schemes
    }
