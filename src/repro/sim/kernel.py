"""Minimal discrete-event simulation kernel.

A single global event queue ordered by ``(time, priority, seq)``.
Events carry a plain callback; cancellation is lazy (a flag checked at
pop time), which keeps the heap operations O(log n).

The queue stores flat mutable heap entries — ``[time, priority, seq,
fn, args, cancelled, cancel_counter]`` — and :class:`Event`, the handle
:meth:`Simulator.schedule` returns, *is* the heap entry (a ``list``
subclass).  Ordering therefore uses C-level list comparison instead of
a Python ``__lt__`` per heap swap, and scheduling allocates exactly one
object per event.  ``seq`` is unique, so a comparison never reaches the
callback slot.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional

# Heap-entry slot indices.
_TIME, _PRIORITY, _SEQ, _FN, _ARGS, _CANCELLED, _COUNTER = range(7)


def callable_label(fn: object) -> str:
    """Best-effort printable name for an event callback.

    Plain functions and bound methods have a ``__name__``; wrappers like
    ``functools.partial`` do not, and fall back to their ``repr``.
    """
    return getattr(fn, "__name__", repr(fn))


class Event(list):
    """A scheduled callback.  Create via :meth:`Simulator.schedule`.

    The instance doubles as its own heap entry; the public attributes
    are read-only views onto the entry slots.  The last slot aliases the
    simulator's live cancellation counter while the event is queued (it
    is detached once the event fires or its cancellation is collected),
    which keeps :attr:`Simulator.pending` O(1).
    """

    __slots__ = ()

    @property
    def time(self) -> float:
        """Absolute firing time."""
        return self[_TIME]

    @property
    def priority(self) -> int:
        """Tie-break priority (lower fires first)."""
        return self[_PRIORITY]

    @property
    def seq(self) -> int:
        """Scheduling sequence number (FIFO tie-break)."""
        return self[_SEQ]

    @property
    def fn(self) -> Callable[..., None]:
        """The scheduled callback."""
        return self[_FN]

    @property
    def args(self) -> "tuple[Any, ...]":
        """Arguments the callback fires with."""
        return self[_ARGS]

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called."""
        return self[_CANCELLED]

    def cancel(self) -> None:
        """Mark the event so it is skipped when popped.

        Safe to call more than once, after the event has fired, and
        after a :meth:`Simulator.halt` dropped the queue.
        """
        if not self[_CANCELLED]:
            self[_CANCELLED] = True
            counter = self[_COUNTER]
            if counter is not None:
                counter[0] += 1

    def __repr__(self) -> str:
        state = "cancelled" if self[_CANCELLED] else "pending"
        return (f"Event(t={self[_TIME]:.6f}, "
                f"{callable_label(self[_FN])}, {state})")


class Simulator:
    """The event loop: a clock plus a priority queue of events."""

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: List[Event] = []
        self._seq = itertools.count()
        #: one-slot mutable cell counting cancelled-but-still-queued
        #: events; shared with every queued Event so ``cancel`` can
        #: update it without holding a simulator reference.
        self._cancelled = [0]
        self.processed = 0

    def schedule_at(self, time: float, fn: Callable[..., None],
                    *args: Any, priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``.

        Scheduling in the past raises ``ValueError`` — that is always a
        modelling bug, never a feature.  Scheduling exactly at ``now``
        is allowed (the event fires before time advances).
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time} before now ({self.now})"
            )
        event = Event((time, priority, next(self._seq), fn, args, False,
                       self._cancelled))
        heapq.heappush(self._queue, event)
        return event

    def schedule(self, delay: float, fn: Callable[..., None],
                 *args: Any, priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` after a relative ``delay``."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        event = Event((self.now + delay, priority, next(self._seq), fn,
                       args, False, self._cancelled))
        heapq.heappush(self._queue, event)
        return event

    @property
    def pending(self) -> int:
        """Number of *live* (not cancelled) events still queued."""
        return len(self._queue) - self._cancelled[0]

    def halt(self) -> None:
        """Drop every queued event (e.g. a sudden power-off).

        The clock stays where it is; nothing scheduled before the halt
        will fire.  New events may be scheduled afterwards (a reboot).
        Handles to dropped events stay valid: cancelling one is a no-op
        (their counter cell is abandoned, not the live one).
        """
        self._queue.clear()
        self._cancelled = [0]

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None when the queue is empty."""
        queue = self._queue
        while queue and queue[0][_CANCELLED]:
            entry = heapq.heappop(queue)
            entry[_COUNTER][0] -= 1
            entry[_COUNTER] = None
        return queue[0][_TIME] if queue else None

    def step(self) -> bool:
        """Run the next live event; returns False when none remain."""
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            if entry[_CANCELLED]:
                entry[_COUNTER][0] -= 1
                entry[_COUNTER] = None
                continue
            entry[_COUNTER] = None
            self.now = entry[_TIME]
            self.processed += 1
            entry[_FN](*entry[_ARGS])
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the queue empties, ``until`` is reached, or
        ``max_events`` have been processed (a runaway-loop backstop)."""
        queue = self._queue
        pop = heapq.heappop
        if until is None and max_events is None:
            # Run-to-exhaustion fast path: no bound checks per event.
            # Semantically the general loop below with both guards
            # stripped; keep the pop/cancel handling in sync.
            while queue:
                entry = pop(queue)
                if entry[_CANCELLED]:
                    entry[_COUNTER][0] -= 1
                    entry[_COUNTER] = None
                    continue
                entry[_COUNTER] = None
                self.now = entry[_TIME]
                self.processed += 1
                entry[_FN](*entry[_ARGS])
            return
        remaining = -1 if max_events is None else max_events
        while queue:
            entry = queue[0]
            if entry[_CANCELLED]:
                pop(queue)
                entry[_COUNTER][0] -= 1
                entry[_COUNTER] = None
                continue
            if remaining == 0:
                return
            time = entry[_TIME]
            if until is not None and time > until:
                self.now = until
                return
            pop(queue)
            entry[_COUNTER] = None
            self.now = time
            self.processed += 1
            entry[_FN](*entry[_ARGS])
            remaining -= 1
