"""Minimal discrete-event simulation kernel.

A single global event queue ordered by ``(time, priority, seq)``.
Events carry a plain callback; cancellation is lazy (a flag checked at
pop time).

The queue stores flat mutable entries — ``[time, priority, seq, fn,
args, cancelled, cancel_counter]`` — and :class:`Event`, the handle
:meth:`Simulator.schedule` returns, *is* the entry (a ``list``
subclass).  Ordering therefore uses C-level list comparison instead of
a Python ``__lt__`` per compare, and scheduling allocates exactly one
object per event.  ``seq`` is unique, so a comparison never reaches the
callback slot.

Two queue implementations share that entry format:

:class:`Simulator`
    A calendar (bucket) queue.  NAND event times cluster on a handful
    of discrete latencies (t_read/t_lsb/t_msb/t_erase plus transfer
    multiples), so events land in time-indexed buckets one dominant
    latency quantum wide.  Pushing into the current or a near-future
    bucket is O(1) amortised (dict lookup + list append); a bucket is
    sorted once when the clock reaches it.  Far-future or irregular
    timers (power-loss cuts, QoS token refills, think times) overflow
    into a small binary heap and migrate into buckets as the horizon
    advances.  Pop order is exactly ``(time, priority, seq)`` — byte
    identical to the heap.

:class:`HeapSimulator`
    The original binary-heap implementation, kept as the equivalence
    oracle (``ExperimentConfig(kernel="heap")`` and the property suite
    in ``tests/test_kernel_calendar_property.py`` drive both and assert
    identical pop order).
"""

from __future__ import annotations

import itertools
from bisect import insort
from heapq import heappop, heappush
from math import isinf
from typing import Any, Callable, Dict, List, Optional

# Heap-entry slot indices.
_TIME, _PRIORITY, _SEQ, _FN, _ARGS, _CANCELLED, _COUNTER = range(7)

#: Default calendar bucket width [s].  One LSB program (t_lsb_prog)
#: under the paper's timing — the dominant latency quantum of
#: write-heavy NAND traffic.  Much narrower buckets (one read slot,
#: 50 us) leave average occupancy below one event and the run loop
#: spends its time advancing empty days instead of popping; the
#: measured sweep is in docs/PERFORMANCE.md.
DEFAULT_BUCKET_WIDTH = 500e-6

#: Buckets between the active one and the overflow horizon.  Entries
#: landing past ``active + CALENDAR_SPAN`` buckets go to the overflow
#: heap instead of allocating arbitrarily many dict slots.  256 spans
#: 128 ms at the default width — far past t_erase (5 ms), so
#: steady-state NAND traffic never touches the overflow heap.
CALENDAR_SPAN = 256


def callable_label(fn: object) -> str:
    """Best-effort printable name for an event callback.

    Plain functions and bound methods have a ``__name__``; wrappers like
    ``functools.partial`` do not, and fall back to their ``repr``.
    """
    return getattr(fn, "__name__", repr(fn))


class Event(list):
    """A scheduled callback.  Create via :meth:`Simulator.schedule`.

    The instance doubles as its own queue entry; the public attributes
    are read-only views onto the entry slots.  The last slot aliases the
    simulator's live cancellation counter while the event is queued (it
    is detached once the event fires or its cancellation is collected),
    which keeps :attr:`Simulator.pending` cheap.
    """

    __slots__ = ()

    @property
    def time(self) -> float:
        """Absolute firing time."""
        return self[_TIME]

    @property
    def priority(self) -> int:
        """Tie-break priority (lower fires first)."""
        return self[_PRIORITY]

    @property
    def seq(self) -> int:
        """Scheduling sequence number (FIFO tie-break)."""
        return self[_SEQ]

    @property
    def fn(self) -> Callable[..., None]:
        """The scheduled callback."""
        return self[_FN]

    @property
    def args(self) -> "tuple[Any, ...]":
        """Arguments the callback fires with."""
        return self[_ARGS]

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` was called."""
        return self[_CANCELLED]

    def cancel(self) -> None:
        """Mark the event so it is skipped when popped.

        Safe to call more than once, after the event has fired, and
        after a :meth:`Simulator.halt` dropped the queue.
        """
        if not self[_CANCELLED]:
            self[_CANCELLED] = True
            counter = self[_COUNTER]
            if counter is not None:
                counter[0] += 1

    def __repr__(self) -> str:
        state = "cancelled" if self[_CANCELLED] else "pending"
        return (f"Event(t={self[_TIME]:.6f}, "
                f"{callable_label(self[_FN])}, {state})")


def _check_schedule_at(time: float, now: float) -> None:
    """Validate an absolute event time (shared by both kernels).

    Scheduling in the past raises ``ValueError`` — that is always a
    modelling bug, never a feature.  NaN and infinite times are
    rejected too: a NaN would silently corrupt the queue order (every
    comparison against it is False), and an infinity would never fire.
    """
    if not time >= now:
        if time != time:
            raise ValueError("cannot schedule at NaN time")
        raise ValueError(
            f"cannot schedule at {time} before now ({now})"
        )
    if isinf(time):
        raise ValueError("cannot schedule at infinite time")


def _check_schedule(delay: float) -> None:
    """Validate a relative delay (shared by both kernels)."""
    if not delay >= 0.0:
        if delay != delay:
            raise ValueError("delay must not be NaN")
        raise ValueError(f"delay must be non-negative, got {delay}")
    if isinf(delay):
        raise ValueError(f"delay must be finite, got {delay}")


class Simulator:
    """The event loop: a clock plus a calendar queue of events.

    The calendar structure (see the module docstring):

    - ``_active`` — the bucket currently being drained, sorted
      ascending; ``_active_pos`` indexes the next entry to fire.
      Same-bucket pushes insort *at or after* ``_active_pos``, so an
      event scheduled for the current instant still fires in exact
      ``(time, priority, seq)`` order.
    - ``_buckets`` — unsorted lists keyed by ``int(time / width)`` for
      keys within ``_span`` buckets of the active one; ``_key_heap``
      is a heap of the non-empty keys.
    - ``_far`` — binary heap of entries at or past the horizon; they
      migrate into buckets as the horizon advances.

    Bucket keys are a monotone function of time, so draining buckets
    in key order, each sorted once on activation, reproduces the heap
    pop order exactly.  When event times do *not* cluster, the
    structure degrades gracefully to roughly heap behaviour (one
    entry per bucket, or everything in the overflow heap).
    """

    def __init__(self, bucket_width: float = DEFAULT_BUCKET_WIDTH,
                 span: int = CALENDAR_SPAN) -> None:
        if not bucket_width > 0.0:
            raise ValueError(
                f"bucket_width must be positive, got {bucket_width}")
        if span < 2:
            raise ValueError(f"span must be at least 2, got {span}")
        self.now = 0.0
        self._seq = itertools.count()
        #: one-slot mutable cell counting cancelled-but-still-queued
        #: events; shared with every queued Event so ``cancel`` can
        #: update it without holding a simulator reference.
        self._cancelled = [0]
        self.processed = 0
        self._width = bucket_width
        self._inv_width = 1.0 / bucket_width
        self._span = span
        self._active: List[Event] = []
        self._active_pos = 0
        self._active_key = 0
        self._horizon_key = span
        self._buckets: Dict[int, List[Event]] = {}
        self._key_heap: List[int] = []
        self._far: List[Event] = []

    # -- scheduling ---------------------------------------------------

    def _push(self, entry: list) -> None:
        """Insert one queue entry.

        Kernel-internal, but the controller's hot dispatch path and
        the tracer's traced copy call it directly with a plain-list
        entry (an :class:`Event` without the handle subclass).
        """
        key = int(entry[0] * self._inv_width)
        if key > self._active_key:
            # Common case: a future bucket (completion latencies are at
            # least one bucket width for writes).
            if key < self._horizon_key:
                bucket = self._buckets.get(key)
                if bucket is None:
                    self._buckets[key] = [entry]
                    heappush(self._key_heap, key)
                else:
                    bucket.append(entry)
            else:
                heappush(self._far, entry)
        else:
            # Lands in the bucket being drained (or, between runs, at
            # the current instant): keep the tail sorted.  ``lo`` is
            # the drain position — entries before it already fired.
            insort(self._active, entry, self._active_pos)

    def schedule_at(self, time: float, fn: Callable[..., None],
                    *args: Any, priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``.

        Scheduling in the past, at NaN, or at infinity raises
        ``ValueError``.  Scheduling exactly at ``now`` is allowed (the
        event fires before time advances).
        """
        _check_schedule_at(time, self.now)
        event = Event((time, priority, next(self._seq), fn, args, False,
                       self._cancelled))
        self._push(event)
        return event

    def schedule(self, delay: float, fn: Callable[..., None],
                 *args: Any, priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` after a relative ``delay``.

        Negative, NaN, and infinite delays raise ``ValueError``.
        """
        _check_schedule(delay)
        event = Event((self.now + delay, priority, next(self._seq), fn,
                       args, False, self._cancelled))
        self._push(event)
        return event

    # -- queue state --------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of *live* (not cancelled) events still queued."""
        live = len(self._active) - self._active_pos + len(self._far)
        for bucket in self._buckets.values():
            live += len(bucket)
        return live - self._cancelled[0]

    def halt(self) -> None:
        """Drop every queued event (e.g. a sudden power-off).

        The clock stays where it is; nothing scheduled before the halt
        will fire.  New events may be scheduled afterwards (a reboot).
        Handles to dropped events stay valid: cancelling one is a no-op
        (their counter cell is abandoned, not the live one).
        """
        # Rebind (don't clear in place): the run loop detects the new
        # active list and resets its local cursor.
        self._active = []
        self._active_pos = 0
        self._buckets.clear()
        self._key_heap.clear()
        self._far = []
        self._active_key = int(self.now * self._inv_width)
        self._horizon_key = self._active_key + self._span
        self._cancelled = [0]

    # -- draining -----------------------------------------------------

    def _advance_day(self) -> bool:
        """Activate the next non-empty bucket; False when none remain.

        Before activating, migrate overflow entries whose bucket falls
        within the new horizon — in particular any earlier than the
        candidate bucket itself, so a bucket is never activated while
        an earlier entry hides in the overflow heap.
        """
        key_heap = self._key_heap
        far = self._far
        if far:
            inv_width = self._inv_width
            span = self._span
            buckets = self._buckets
            next_key = (key_heap[0] if key_heap
                        else int(far[0][0] * inv_width))
            horizon = next_key + span
            while far:
                far_key = int(far[0][0] * inv_width)
                if far_key >= horizon:
                    break
                entry = heappop(far)
                bucket = buckets.get(far_key)
                if bucket is None:
                    buckets[far_key] = [entry]
                    heappush(key_heap, far_key)
                    if far_key < next_key:
                        next_key = far_key
                        horizon = next_key + span
                else:
                    bucket.append(entry)
        if not key_heap:
            return False
        key = heappop(key_heap)
        active = self._buckets.pop(key)
        active.sort()
        self._active = active
        self._active_pos = 0
        self._active_key = key
        self._horizon_key = key + self._span
        return True

    def _ensure_head(self) -> bool:
        """Position ``_active_pos`` on the next live entry.

        Skips (and collects) cancelled entries, advancing buckets as
        needed.  Returns False when no live event remains.
        """
        active = self._active
        pos = self._active_pos
        while True:
            if pos < len(active):
                entry = active[pos]
                if entry[_CANCELLED]:
                    entry[_COUNTER][0] -= 1
                    entry[_COUNTER] = None
                    pos += 1
                    continue
                self._active_pos = pos
                return True
            self._active_pos = pos
            if not self._advance_day():
                return False
            active = self._active
            pos = 0

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None when the queue is empty."""
        if not self._ensure_head():
            return None
        return self._active[self._active_pos][_TIME]

    def step(self) -> bool:
        """Run the next live event; returns False when none remain."""
        if not self._ensure_head():
            return False
        pos = self._active_pos
        entry = self._active[pos]
        self._active_pos = pos + 1
        entry[_COUNTER] = None
        self.now = entry[_TIME]
        self.processed += 1
        entry[_FN](*entry[_ARGS])
        return True

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the queue empties, ``until`` is reached, or
        ``max_events`` have been processed (a runaway-loop backstop)."""
        if until is None and max_events is None:
            # Run-to-exhaustion fast path: no bound checks per event.
            # Semantically the general loop below with both guards
            # stripped; keep the cancel/advance handling in sync.
            active = self._active
            pos = self._active_pos
            while True:
                if pos >= len(active):
                    self._active_pos = pos
                    if not self._advance_day():
                        return
                    active = self._active
                    pos = 0
                entry = active[pos]
                pos += 1
                if entry[_CANCELLED]:
                    entry[_COUNTER][0] -= 1
                    entry[_COUNTER] = None
                    continue
                entry[_COUNTER] = None
                # Publish the cursor before the callback: a same-bucket
                # push insorts at ``_active_pos``, and ``halt`` rebinds
                # the active list (detected below).
                self._active_pos = pos
                self.now = entry[_TIME]
                self.processed += 1
                entry[_FN](*entry[_ARGS])
                if active is not self._active:
                    active = self._active
                    pos = self._active_pos
            return
        remaining = -1 if max_events is None else max_events
        while self._ensure_head():
            if remaining == 0:
                return
            pos = self._active_pos
            entry = self._active[pos]
            time = entry[_TIME]
            if until is not None and time > until:
                self.now = until
                return
            self._active_pos = pos + 1
            entry[_COUNTER] = None
            self.now = time
            self.processed += 1
            entry[_FN](*entry[_ARGS])
            remaining -= 1


class HeapSimulator:
    """The event loop over a single binary heap.

    The original kernel implementation, preserved verbatim as the
    equivalence oracle for :class:`Simulator` (same entry format, same
    ``(time, priority, seq)`` pop order, same API).  Select it with
    ``ExperimentConfig(kernel="heap")``.
    """

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: List[Event] = []
        self._seq = itertools.count()
        #: one-slot mutable cell counting cancelled-but-still-queued
        #: events; shared with every queued Event so ``cancel`` can
        #: update it without holding a simulator reference.
        self._cancelled = [0]
        self.processed = 0

    def _push(self, entry: list) -> None:
        """Insert one queue entry (see :meth:`Simulator._push`)."""
        heappush(self._queue, entry)

    def schedule_at(self, time: float, fn: Callable[..., None],
                    *args: Any, priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``.

        Scheduling in the past, at NaN, or at infinity raises
        ``ValueError``.  Scheduling exactly at ``now`` is allowed (the
        event fires before time advances).
        """
        _check_schedule_at(time, self.now)
        event = Event((time, priority, next(self._seq), fn, args, False,
                       self._cancelled))
        heappush(self._queue, event)
        return event

    def schedule(self, delay: float, fn: Callable[..., None],
                 *args: Any, priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` after a relative ``delay``.

        Negative, NaN, and infinite delays raise ``ValueError``.
        """
        _check_schedule(delay)
        event = Event((self.now + delay, priority, next(self._seq), fn,
                       args, False, self._cancelled))
        heappush(self._queue, event)
        return event

    @property
    def pending(self) -> int:
        """Number of *live* (not cancelled) events still queued."""
        return len(self._queue) - self._cancelled[0]

    def halt(self) -> None:
        """Drop every queued event (see :meth:`Simulator.halt`)."""
        self._queue.clear()
        self._cancelled = [0]

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None when the queue is empty."""
        queue = self._queue
        while queue and queue[0][_CANCELLED]:
            entry = heappop(queue)
            entry[_COUNTER][0] -= 1
            entry[_COUNTER] = None
        return queue[0][_TIME] if queue else None

    def step(self) -> bool:
        """Run the next live event; returns False when none remain."""
        queue = self._queue
        while queue:
            entry = heappop(queue)
            if entry[_CANCELLED]:
                entry[_COUNTER][0] -= 1
                entry[_COUNTER] = None
                continue
            entry[_COUNTER] = None
            self.now = entry[_TIME]
            self.processed += 1
            entry[_FN](*entry[_ARGS])
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the queue empties, ``until`` is reached, or
        ``max_events`` have been processed (a runaway-loop backstop)."""
        queue = self._queue
        pop = heappop
        if until is None and max_events is None:
            # Run-to-exhaustion fast path: no bound checks per event.
            # Semantically the general loop below with both guards
            # stripped; keep the pop/cancel handling in sync.
            while queue:
                entry = pop(queue)
                if entry[_CANCELLED]:
                    entry[_COUNTER][0] -= 1
                    entry[_COUNTER] = None
                    continue
                entry[_COUNTER] = None
                self.now = entry[_TIME]
                self.processed += 1
                entry[_FN](*entry[_ARGS])
            return
        remaining = -1 if max_events is None else max_events
        while queue:
            entry = queue[0]
            if entry[_CANCELLED]:
                pop(queue)
                entry[_COUNTER][0] -= 1
                entry[_COUNTER] = None
                continue
            if remaining == 0:
                return
            time = entry[_TIME]
            if until is not None and time > until:
                self.now = until
                return
            pop(queue)
            entry[_COUNTER] = None
            self.now = time
            self.processed += 1
            entry[_FN](*entry[_ARGS])
            remaining -= 1
