"""Minimal discrete-event simulation kernel.

A single global event queue ordered by ``(time, priority, seq)``.
Events carry a plain callback; cancellation is lazy (a flag checked at
pop time), which keeps the heap operations O(log n).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional


class Event:
    """A scheduled callback.  Create via :meth:`Simulator.schedule`."""

    __slots__ = ("time", "priority", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, priority: int, seq: int,
                 fn: Callable[..., None], args: "tuple[Any, ...]") -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.priority, self.seq) \
            < (other.time, other.priority, other.seq)

    def cancel(self) -> None:
        """Mark the event so it is skipped when popped."""
        self.cancelled = True

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6f}, {self.fn.__name__}, {state})"


class Simulator:
    """The event loop: a clock plus a priority queue of events."""

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: List[Event] = []
        self._seq = itertools.count()
        self.processed = 0

    def schedule_at(self, time: float, fn: Callable[..., None],
                    *args: Any, priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` at absolute simulation time ``time``.

        Scheduling in the past raises ``ValueError`` — that is always a
        modelling bug, never a feature.
        """
        if time < self.now:
            raise ValueError(
                f"cannot schedule at {time} before now ({self.now})"
            )
        event = Event(time, priority, next(self._seq), fn, args)
        heapq.heappush(self._queue, event)
        return event

    def schedule(self, delay: float, fn: Callable[..., None],
                 *args: Any, priority: int = 0) -> Event:
        """Schedule ``fn(*args)`` after a relative ``delay``."""
        if delay < 0:
            raise ValueError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self.now + delay, fn, *args,
                                priority=priority)

    @property
    def pending(self) -> int:
        """Number of (possibly cancelled) events still queued."""
        return len(self._queue)

    def halt(self) -> None:
        """Drop every queued event (e.g. a sudden power-off).

        The clock stays where it is; nothing scheduled before the halt
        will fire.  New events may be scheduled afterwards (a reboot).
        """
        self._queue.clear()

    def peek_time(self) -> Optional[float]:
        """Time of the next live event, or None when the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Run the next live event; returns False when none remain."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.now = event.time
            self.processed += 1
            event.fn(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None) -> None:
        """Run events until the queue empties, ``until`` is reached, or
        ``max_events`` have been processed (a runaway-loop backstop)."""
        count = 0
        while True:
            if max_events is not None and count >= max_events:
                return
            next_time = self.peek_time()
            if next_time is None:
                return
            if until is not None and next_time > until:
                self.now = until
                return
            self.step()
            count += 1
