"""Operation-log tracing for simulation runs.

Attach an :class:`OpLog` to a controller to record every NAND
operation it executes — issue time, chip, kind, provenance tag and
address.  Used by tests to assert scheduling behaviour directly
(read priority, per-chip serialisation, GC step ordering) and by
users to debug FTL policies.

Usage::

    log = OpLog.attach(controller)
    ... run ...
    programs = log.filter(kind=OpKind.PROGRAM, tag="host")
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator, List, Optional

from repro.sim.controller import StorageController
from repro.sim.ops import FlashOp, OpKind


@dataclasses.dataclass(frozen=True)
class OpRecord:
    """One executed NAND operation."""

    time: float
    chip_id: int
    kind: OpKind
    tag: str
    channel: int
    chip: int
    block: int
    page: int
    lpn: Optional[int]


class OpLog:
    """An append-only log of executed operations.

    Attach with :meth:`attach`; it wraps the controller's internal
    ``_execute`` so every dispatched operation is recorded at its
    issue time.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self.records: List[OpRecord] = []
        self.dropped = 0

    @classmethod
    def attach(cls, controller: StorageController,
               capacity: Optional[int] = None) -> "OpLog":
        """Create a log and hook it into ``controller``."""
        log = cls(capacity)
        original = controller._execute

        def traced(chip_id: int, op: FlashOp, read_request) -> None:
            log.record(controller.sim.now, chip_id, op)
            original(chip_id, op, read_request)

        controller._execute = traced  # type: ignore[method-assign]
        return log

    def record(self, time: float, chip_id: int, op: FlashOp) -> None:
        """Append one operation (oldest entries drop at capacity)."""
        if self.capacity is not None \
                and len(self.records) >= self.capacity:
            self.records.pop(0)
            self.dropped += 1
        self.records.append(OpRecord(
            time=time,
            chip_id=chip_id,
            kind=op.kind,
            tag=op.tag,
            channel=op.addr.channel,
            chip=op.addr.chip,
            block=op.addr.block,
            page=op.addr.page,
            lpn=op.lpn,
        ))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[OpRecord]:
        return iter(self.records)

    def filter(self, kind: Optional[OpKind] = None,
               tag: Optional[str] = None,
               chip_id: Optional[int] = None,
               predicate: Optional[Callable[[OpRecord], bool]] = None
               ) -> List[OpRecord]:
        """Select records by kind/tag/chip and an optional predicate."""
        out = []
        for record in self.records:
            if kind is not None and record.kind is not kind:
                continue
            if tag is not None and record.tag != tag:
                continue
            if chip_id is not None and record.chip_id != chip_id:
                continue
            if predicate is not None and not predicate(record):
                continue
            out.append(record)
        return out

    def counts_by_tag(self) -> "dict[str, int]":
        """Histogram of operations by provenance tag."""
        histogram: dict = {}
        for record in self.records:
            histogram[record.tag] = histogram.get(record.tag, 0) + 1
        return histogram
