"""Metric collection for simulation runs.

Gathers the quantities the paper's evaluation reports: IOPS (completed
host requests over the run's makespan, Figure 8(a)), block erasure
counts (Figure 8(b), read off the NAND array), and windowed write
bandwidth samples whose CDF is Figure 8(c).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

from repro.sim.queues import Request, RequestKind

if False:  # typing-only import; keeps the sim core free of
    # observability dependencies at runtime
    from repro.observability.metrics import MetricsRegistry


class WindowedBandwidth:
    """Write bandwidth sampled over fixed time windows.

    Every completed host page write deposits its bytes into the window
    containing its completion time; :meth:`samples_mbps` then yields
    one bandwidth sample per *active* window (idle windows are not
    bandwidth observations — the paper's CDF starts at ~20 MB/s).
    """

    def __init__(self, window: float = 0.05) -> None:
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = window
        self._buckets: Dict[int, int] = {}

    def record(self, time: float, nbytes: int) -> None:
        """Deposit ``nbytes`` transferred at ``time``."""
        bucket = int(time / self.window)
        self._buckets[bucket] = self._buckets.get(bucket, 0) + nbytes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WindowedBandwidth):
            return NotImplemented
        return (self.window == other.window
                and self._buckets == other._buckets)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot (bucket indices become string keys)."""
        return {
            "window": self.window,
            "buckets": {str(bucket): nbytes
                        for bucket, nbytes in self._buckets.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WindowedBandwidth":
        """Inverse of :meth:`to_dict`."""
        tracker = cls(window=float(data["window"]))  # type: ignore[arg-type]
        buckets: Dict[str, int] = data.get("buckets", {})  # type: ignore[assignment]
        tracker._buckets = {int(bucket): int(nbytes)
                            for bucket, nbytes in buckets.items()}
        return tracker

    def samples_mbps(self) -> List[float]:
        """Per-active-window bandwidth samples in MB/s, time order."""
        return [
            self._buckets[bucket] / self.window / 1e6
            for bucket in sorted(self._buckets)
        ]

    def cdf(self) -> Tuple[List[float], List[float]]:
        """Empirical CDF: sorted bandwidth values and their fractions."""
        samples = sorted(self.samples_mbps())
        n = len(samples)
        fractions = [(i + 1) / n for i in range(n)]
        return samples, fractions

    def percentile(self, fraction: float) -> float:
        """Bandwidth at a CDF fraction (e.g. 0.99 for peak behaviour)."""
        samples = sorted(self.samples_mbps())
        if not samples:
            raise ValueError("no bandwidth samples recorded")
        index = min(len(samples) - 1, int(fraction * len(samples)))
        return samples[index]


@dataclasses.dataclass
class FaultStats:
    """Fault-injection and recovery counters of one run.

    Attached to :class:`SimStats` only when fault injection (or the
    power-loss resume path) is armed; fault-free runs keep the field
    ``None`` so their serialized form — and the golden byte-identity
    tests — are unchanged.
    """

    #: injected faults, by kind
    program_failures: int = 0
    backup_program_failures: int = 0
    erase_failures: int = 0
    read_faults: int = 0
    grown_bad_blocks: int = 0
    power_cuts: int = 0

    #: recovery-ladder activity
    read_retries: int = 0
    ecc_escalations: int = 0
    parity_reconstructions: int = 0
    erase_retries: int = 0
    redriven_writes: int = 0
    salvaged_pages: int = 0
    reconstructed_pages: int = 0
    #: itemised ladder accounting: extra page reads actually charged by
    #: recovery ladders (one per retry rung, plus escalation strobes and
    #: parity XOR reads), across both the injector and physics paths
    ladder_reads: int = 0

    #: physics-grounded error engine (repro.reliability.physics)
    physics_read_errors: int = 0
    voltage_shift_retries: int = 0

    #: bad-block management
    retired_blocks: int = 0
    spares_consumed: int = 0

    #: damage that could not be recovered
    lost_pages: int = 0
    lost_inflight_writes: int = 0
    writes_rejected: int = 0
    degraded_mode: bool = False

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot, invertible via :meth:`from_dict`."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultStats":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)  # type: ignore[arg-type]


@dataclasses.dataclass
class SimStats:
    """Aggregated outcome of one simulation run."""

    page_size: int = 4096
    bandwidth_window: float = 0.05

    completed_reads: int = 0
    completed_writes: int = 0
    read_pages: int = 0
    written_pages: int = 0
    buffer_read_hits: int = 0
    first_arrival: Optional[float] = None
    last_completion: float = 0.0
    read_latencies: List[float] = dataclasses.field(default_factory=list)
    write_latencies: List[float] = dataclasses.field(default_factory=list)
    write_bandwidth: WindowedBandwidth = dataclasses.field(default=None)  # type: ignore[assignment]
    #: fault-injection counters, present only when injection was armed
    #: (None keeps fault-free serialized results byte-identical)
    faults: Optional[FaultStats] = None
    #: labeled metrics registry, attached only when a tracer
    #: instrumented the run (same None-keeps-the-shape contract)
    metrics: "Optional[MetricsRegistry]" = None

    def __post_init__(self) -> None:
        if self.write_bandwidth is None:
            self.write_bandwidth = WindowedBandwidth(self.bandwidth_window)

    # ------------------------------------------------------------------

    def note_arrival(self, request: Request) -> None:
        """Record a request arrival (tracks the run's start)."""
        if self.first_arrival is None or request.time < self.first_arrival:
            self.first_arrival = request.time

    def note_host_page_write(self, time: float) -> None:
        """Record one host page admitted/written at ``time``."""
        self.written_pages += 1
        # WindowedBandwidth.record, inlined (once per host page)
        bandwidth = self.write_bandwidth
        buckets = bandwidth._buckets
        bucket = int(time / bandwidth.window)
        buckets[bucket] = buckets.get(bucket, 0) + self.page_size

    def note_request_complete(self, request: Request, time: float) -> None:
        """Record a host request completion."""
        request.completed_at = time
        latency = time - request.time
        if request.kind is RequestKind.READ:
            self.completed_reads += 1
            self.read_latencies.append(latency)
        else:
            self.completed_writes += 1
            self.write_latencies.append(latency)
        if time > self.last_completion:
            self.last_completion = time

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot, invertible via :meth:`from_dict`.

        The ``faults`` and ``metrics`` keys appear only when their
        objects exist, so plain snapshots keep their historical shape
        — and the round trip is lossless: an absent key restores
        ``None``, a present all-zero ``faults`` restores an (attached)
        zeroed :class:`FaultStats`, never the other way around.
        """
        data: Dict[str, object] = {
            "page_size": self.page_size,
            "bandwidth_window": self.bandwidth_window,
            "completed_reads": self.completed_reads,
            "completed_writes": self.completed_writes,
            "read_pages": self.read_pages,
            "written_pages": self.written_pages,
            "buffer_read_hits": self.buffer_read_hits,
            "first_arrival": self.first_arrival,
            "last_completion": self.last_completion,
            "read_latencies": list(self.read_latencies),
            "write_latencies": list(self.write_latencies),
            "write_bandwidth": self.write_bandwidth.to_dict(),
        }
        if self.faults is not None:
            data["faults"] = self.faults.to_dict()
        if self.metrics is not None:
            data["metrics"] = self.metrics.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimStats":
        """Inverse of :meth:`to_dict`."""
        stats = cls(
            page_size=int(data["page_size"]),  # type: ignore[arg-type]
            bandwidth_window=float(data["bandwidth_window"]),  # type: ignore[arg-type]
            completed_reads=int(data["completed_reads"]),  # type: ignore[arg-type]
            completed_writes=int(data["completed_writes"]),  # type: ignore[arg-type]
            read_pages=int(data["read_pages"]),  # type: ignore[arg-type]
            written_pages=int(data["written_pages"]),  # type: ignore[arg-type]
            buffer_read_hits=int(data["buffer_read_hits"]),  # type: ignore[arg-type]
            first_arrival=data["first_arrival"],  # type: ignore[arg-type]
            last_completion=float(data["last_completion"]),  # type: ignore[arg-type]
            read_latencies=list(data["read_latencies"]),  # type: ignore[arg-type]
            write_latencies=list(data["write_latencies"]),  # type: ignore[arg-type]
        )
        stats.write_bandwidth = WindowedBandwidth.from_dict(
            data["write_bandwidth"])  # type: ignore[arg-type]
        # An absent key and an explicit null both mean "not attached";
        # any dict — including all zeros — restores an attached object,
        # preserving the faults=None vs faults=FaultStats() distinction.
        faults = data.get("faults")
        if faults is not None:
            stats.faults = FaultStats.from_dict(faults)  # type: ignore[arg-type]
        metrics = data.get("metrics")
        if metrics is not None:
            from repro.observability.metrics import MetricsRegistry

            stats.metrics = MetricsRegistry.from_dict(metrics)  # type: ignore[arg-type]
        return stats

    # ------------------------------------------------------------------

    @property
    def completed_requests(self) -> int:
        """Total completed host requests."""
        return self.completed_reads + self.completed_writes

    @property
    def elapsed(self) -> float:
        """Makespan: first arrival to last completion."""
        if self.first_arrival is None:
            return 0.0
        return max(0.0, self.last_completion - self.first_arrival)

    def iops(self) -> float:
        """Completed host requests per second over the makespan."""
        if self.elapsed <= 0.0:
            return 0.0
        return self.completed_requests / self.elapsed

    def mean_latency(self, kind: RequestKind) -> float:
        """Mean request latency for one request kind."""
        samples = (self.read_latencies if kind is RequestKind.READ
                   else self.write_latencies)
        if not samples:
            return 0.0
        return sum(samples) / len(samples)
