"""Storage controller: ties host, FTL and NAND array to the clock.

The controller owns per-chip busy state, per-channel transfer buses,
the host write buffer and read queues.  Whenever a chip is idle it asks
for work in priority order — queued host reads, then FTL work (buffer
drains, foreground GC, parity writes), then, if the whole device is
idle of host I/O, background garbage collection.

Write requests complete on write-buffer admission (buffered-write
semantics); read requests complete when their last page is read.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.nand.array import NandArray
from repro.nand.errors import ReadOnlyDeviceError
from repro.sim.kernel import Simulator
from repro.sim.ops import FlashOp, OpKind
from repro.sim.queues import (
    REQUEST_FAILED,
    REQUEST_OK,
    REQUEST_RECOVERED,
    BufferedWrite,
    Request,
    RequestKind,
    WriteBuffer,
)
from repro.sim.stats import FaultStats, SimStats

# OpKind members hoisted to module level for the dispatch hot path
_PROGRAM = OpKind.PROGRAM
_READ = OpKind.READ
_new = object.__new__


class StorageController:
    """Dispatches FTL-produced flash operations onto timed chips."""

    #: Observability hooks (:mod:`repro.observability`): a tracer and a
    #: metrics registry, installed together by ``Tracer.install``.
    #: Class-level None defaults keep untraced runs paying nothing on
    #: hot paths and one ``is None`` check on the cold fault paths.
    #: Tracing also replaces :meth:`_execute` with a traced copy (an
    #: instance attribute), which is why the pump keeps ``_execute``
    #: late-bound.
    _trace = None
    _metrics = None

    def __init__(
        self,
        sim: Simulator,
        array: NandArray,
        ftl,  # BaseFtl; untyped to avoid a circular import
        write_buffer: WriteBuffer,
        stats: Optional[SimStats] = None,
        *,
        batching: bool = True,
        vector_min: Optional[int] = None,
    ) -> None:
        self.sim = sim
        self.array = array
        self.geometry = array.geometry
        self.timing = array.timing
        self.ftl = ftl
        self.write_buffer = write_buffer
        self.stats = stats or SimStats(page_size=self.geometry.page_size)

        # geometry scalars cached as plain ints: the pump loop reads
        # them once per dispatch attempt
        self._total_chips = self.geometry.total_chips
        self._chips_per_channel = self.geometry.chips_per_channel
        self._pages_per_chip = self.geometry.pages_per_chip

        chips = self._total_chips
        self._busy: List[bool] = [False] * chips
        #: idle chip ids in ascending order; the pump iterates this
        #: instead of scanning (and mostly skipping) every chip
        self._idle: List[int] = list(range(chips))
        self._channel_free: List[float] = [0.0] * self.geometry.channels
        self._t_transfer = self.timing.t_transfer
        # array bound methods cached: the array reference never changes
        # after construction (polymorphic dispatch is preserved — these
        # are the subclass's bound methods)
        self._array_program = array.program
        self._array_read = array.read
        self._array_erase = array.erase
        # BaseFtl.lookup is a pure delegation to mapping.lookup and no
        # FTL overrides it; bind the mapping method directly
        self._ftl_lookup = ftl.mapping.lookup
        #: ftl.next_op bound once (the ftl reference never changes and
        #: next_op is never monkey-patched; _execute stays late-bound
        #: because tracing *does* patch it)
        self._ftl_next_op = ftl.next_op
        self._read_queues: List[Deque[Tuple[int, Request]]] = \
            [deque() for _ in range(chips)]
        #: total entries across all read queues (keeps host_idle O(1))
        self._queued_reads = 0
        self._admissions: Deque[Request] = deque()
        #: optional observer called as ``hook(request, now)`` on every
        #: host-request completion (write-buffer admission for writes,
        #: last page read for reads), before the request's own
        #: ``on_complete``.  The QoS front-end (:mod:`repro.qos`) uses
        #: it for per-tenant SLO accounting and to re-arm arbitration
        #: when backpressure clears; None (the default) is free.
        self.completion_hook: Optional[Callable[[Request, float], None]] = \
            None
        self._pumping = False
        #: completion-event insertion, bound once (works for both the
        #: calendar and the heap kernel; see Simulator._push)
        self._sim_push = sim._push
        #: batched stepping: the pump collects independent ready ops
        #: from distinct idle chips and issues them as one flush (see
        #: :meth:`_flush_batch`).  Byte-identical to one-at-a-time
        #: dispatch — op production never reads another chip's issue
        #: bookkeeping — and disabled automatically while ``_execute``
        #: is patched (tracing, OpLog), since the batch path bypasses
        #: the per-op wrapper.
        self._batching = batching
        self._batch: list = []
        if vector_min is not None and vector_min < 2:
            raise ValueError(
                f"vector_min must be >= 2, got {vector_min}")
        #: minimum batch size for the vectorized NAND program path
        #: (None disables it; see NandArray.program_batch).  Arrays
        #: without a batch entry point (e.g. the TLC model) keep the
        #: per-op path.
        self._array_program_batch = getattr(array, "program_batch", None)
        self._vector_min = vector_min \
            if self._array_program_batch is not None else None
        #: op currently executing per chip (power-loss tooling inspects it)
        self.in_flight: Dict[int, FlashOp] = {}
        #: fault injector consulted after every completed flash op, or
        #: None (the default: fault-free runs pay one None check per op)
        self._injector = None
        #: physics-grounded error engine (repro.reliability.physics) or
        #: None (the default: physics-free runs pay one None check per op)
        self._physics = None
        self._physics_hist = None
        #: True once the spare-block reserve is exhausted: writes are
        #: rejected with ReadOnlyDeviceError, reads keep being served
        self.read_only = False

    # ------------------------------------------------------------------
    # host interface

    def submit(self, request: Request) -> None:
        """Accept one host request at the current simulation time."""
        # stats.note_arrival, inlined (once per host request)
        stats = self.stats
        first = stats.first_arrival
        if first is None or request.time < first:
            stats.first_arrival = request.time
        request.submitted_at = self.sim.now
        if request.kind is RequestKind.READ:
            self._submit_read(request)
        elif self.read_only:
            self._reject_write(request)
            return
        else:
            self._admissions.append(request)
        self._pump()

    @property
    def pending_admissions(self) -> int:
        """Write requests waiting for buffer space."""
        return len(self._admissions)

    def host_idle(self) -> bool:
        """No outstanding host I/O anywhere in the device."""
        return not (self._admissions or self._queued_reads
                    or len(self.write_buffer))

    # ------------------------------------------------------------------
    # internals

    def _submit_read(self, request: Request) -> None:
        touched: List[int] = []
        for offset in range(request.npages):
            lpn = request.lpn + offset
            if self.write_buffer.contains(lpn):
                self.stats.buffer_read_hits += 1
                request.pages_remaining -= 1
                continue
            ppn = self._ftl_lookup(lpn)
            if ppn is None:
                # Never-written page: served as zeroes, no NAND access.
                request.pages_remaining -= 1
                continue
            chip_id = ppn // self._pages_per_chip
            self._read_queues[chip_id].append((lpn, request))
            self._queued_reads += 1
            touched.append(chip_id)
        if request.pages_remaining == 0:
            self._complete_request(request)

    def _complete_request(self, request: Request) -> None:
        self.stats.note_request_complete(request, self.sim.now)
        if self.completion_hook is not None:
            self.completion_hook(request, self.sim.now)
        if request.on_complete is not None:
            request.on_complete(request, self.sim.now)

    def _pump(self) -> None:
        """Drive admissions and chip dispatch to a fixed point.

        The loop body open-codes :meth:`_dispatch` (minus its busy
        guard, already checked here): this runs after every completed
        flash operation and the extra call layers were measurable.
        """
        if self._pumping:
            return
        self._pumping = True
        try:
            # The prologue is deliberately tiny: a typical pump visits
            # one or two idle chips, so per-pump setup dominates; the
            # rarely-used bindings are reached through self instead.
            idle = self._idle
            read_queues = self._read_queues
            ftl_next_op = self._ftl_next_op
            admissions = self._admissions
            buffer = self.write_buffer
            capacity = buffer.capacity
            # the clock cannot advance mid-pump: hoist it
            now = self.sim.now
            # Batched stepping: collect (chip, op) pairs and issue them
            # together.  The batch MUST flush before _next_read_op runs
            # (its stale-entry scan can complete host requests, whose
            # callbacks draw event seq numbers) so the kernel sees the
            # exact unbatched event order.
            batch = self._batch \
                if self._batching and "_execute" not in self.__dict__ \
                else None
            progress = True
            while progress:
                progress = bool(admissions) \
                    and buffer._live < capacity \
                    and self._drain_admissions()
                # snapshot: _execute prunes self._idle while we iterate
                for chip_id in tuple(idle):
                    read_request: Optional[Request] = None
                    if read_queues[chip_id]:
                        if batch:
                            self._flush_batch(batch)
                        op, read_request = self._next_read_op(chip_id)
                    else:
                        op = None
                    if op is None:
                        op = ftl_next_op(chip_id, now)
                    # host_idle(), inlined
                    if op is None \
                            and not (admissions or self._queued_reads
                                     or buffer._live) \
                            and self.ftl.wants_background_gc(chip_id):
                        op = self.ftl.background_op(chip_id, now)
                    if op is None:
                        continue
                    if batch is None or read_request is not None:
                        self._execute(chip_id, op, read_request)
                    else:
                        batch.append(chip_id)
                        batch.append(op)
                    progress = True
                if batch:
                    self._flush_batch(batch)
        finally:
            self._pumping = False

    def _drain_admissions(self) -> bool:
        buffer = self.write_buffer
        if buffer.coalesce:
            return self._drain_admissions_general()
        # Fast path with WriteBuffer.push and the per-page stats call
        # open-coded: without coalescing a push can never go stale, and
        # the clock is fixed for the whole drain, so every admitted
        # page lands in the same bandwidth bucket.  Keep in sync with
        # :meth:`repro.sim.queues.WriteBuffer.push` and
        # :meth:`repro.sim.stats.SimStats.note_host_page_write`.
        capacity = buffer.capacity
        admissions = self._admissions
        now = self.sim.now
        fifo = buffer._fifo
        resident = buffer._resident
        live = buffer._live
        pushed = 0
        while admissions and live < capacity:
            request = admissions[0]
            remaining = request.pages_remaining
            next_lpn = request.lpn + request.npages - remaining
            while remaining > 0 and live < capacity:
                # BufferedWrite built via object.__new__ + slot stores:
                # skips the dataclass __init__ frame (per admitted page)
                entry = _new(BufferedWrite)
                entry.lpn = next_lpn
                entry.enqueued_at = now
                entry.request = request
                fifo.append(entry)
                resident[next_lpn] = resident.get(next_lpn, 0) + 1
                next_lpn += 1
                live += 1
                remaining -= 1
                pushed += 1
            request.pages_remaining = remaining
            if remaining > 0:
                break
            admissions.popleft()
            # publish the level before the completion callback runs
            # (hosts may submit follow-on requests from it)
            buffer._live = live
            self._complete_request(request)
            live = buffer._live
        buffer._live = live
        if not pushed:
            return False
        stats = self.stats
        stats.written_pages += pushed
        bandwidth = stats.write_bandwidth
        buckets = bandwidth._buckets
        bucket = int(now / bandwidth.window)
        buckets[bucket] = buckets.get(bucket, 0) + pushed * stats.page_size
        return True

    def _drain_admissions_general(self) -> bool:
        progress = False
        buffer = self.write_buffer
        capacity = buffer.capacity
        push = buffer.push
        admissions = self._admissions
        now = self.sim.now
        note_page = self.stats.note_host_page_write
        while admissions and buffer._live < capacity:
            request = admissions[0]
            remaining = request.pages_remaining
            lpn = request.lpn
            npages = request.npages
            while remaining > 0 and buffer._live < capacity:
                push(lpn + npages - remaining, now, request)
                remaining -= 1
                note_page(now)
                progress = True
            request.pages_remaining = remaining
            if remaining > 0:
                break
            admissions.popleft()
            self._complete_request(request)
        return progress

    def _next_read_op(self, chip_id: int
                      ) -> Tuple[Optional[FlashOp], Optional[Request]]:
        queue = self._read_queues[chip_id]
        while queue:
            lpn, request = queue.popleft()
            self._queued_reads -= 1
            ppn = self._ftl_lookup(lpn)
            if ppn is None or self.write_buffer.contains(lpn) \
                    or ppn // self._pages_per_chip != chip_id:
                # Superseded or relocated since queueing: data is
                # available elsewhere without touching this chip.
                self._complete_read_page(request)
                continue
            addr = self.geometry.address_of(ppn)
            if not self.array.is_programmed(addr):
                # The mapping already points at a relocation target
                # whose program is still in flight; the data sits in
                # controller RAM, so the read is served from there.
                self._complete_read_page(request)
                continue
            return (FlashOp(OpKind.READ, addr, tag="host", lpn=lpn),
                    request)
        return None, None

    def _dispatch(self, chip_id: int) -> bool:
        if self._busy[chip_id]:
            return False
        read_request: Optional[Request] = None
        if self._read_queues[chip_id]:
            op, read_request = self._next_read_op(chip_id)
        else:
            op = None
        if op is None:
            op = self.ftl.next_op(chip_id, self.sim.now)
        if op is None and self.host_idle() \
                and self.ftl.wants_background_gc(chip_id):
            op = self.ftl.background_op(chip_id, self.sim.now)
        if op is None:
            return False
        self._execute(chip_id, op, read_request)
        return True

    def _execute(self, chip_id: int, op: FlashOp,
                 read_request: Optional[Request]) -> None:
        sim = self.sim
        now = sim.now
        kind = op.kind
        if kind is _PROGRAM:
            channel = chip_id // self._chips_per_channel
            channel_free = self._channel_free
            start = channel_free[channel]
            if start < now:
                start = now
            t_transfer = self._t_transfer
            channel_free[channel] = start + t_transfer
            latency = self._array_program(op.addr, op.data)
            total = (start - now) + t_transfer + latency
        elif kind is _READ:
            channel = chip_id // self._chips_per_channel
            channel_free = self._channel_free
            start = channel_free[channel]
            if start < now:
                start = now
            t_transfer = self._t_transfer
            channel_free[channel] = start + t_transfer
            _, latency = self._array_read(op.addr)
            total = (start - now) + t_transfer + latency
        else:
            total = self._array_erase(op.addr.channel, op.addr.chip,
                                      op.addr.block)
        self._busy[chip_id] = True
        idle = self._idle
        del idle[bisect_left(idle, chip_id)]
        self.in_flight[chip_id] = op
        # Simulator.schedule, minus the handle and the delay check
        # (``total`` is always non-negative): a plain list is pushed
        # instead of an Event — nothing ever holds a handle to a
        # completion event, the kernel treats entries as flat lists,
        # and they compare identically.  ``_sim_push`` is the kernel's
        # queue insertion, bound once at construction.
        self._sim_push(
            [now + total, 0, next(sim._seq), self._on_op_done,
             (chip_id, op, read_request), False, sim._cancelled])

    def _flush_batch(self, batch: list) -> None:
        """Issue the collected ``[chip, op, chip, op, ...]`` pairs.

        Semantically ``for chip, op in pairs: self._execute(chip, op,
        None)`` — keep the timing arithmetic and bookkeeping in sync
        with :meth:`_execute`.  The batch shape lets the NAND state
        mutations be hoisted into one vectorized
        :meth:`~repro.nand.array.NandArray.program_batch` call when
        every op is a program: latencies depend only on page type and
        channel timing only on issue order, so hoisting the array
        mutations ahead of the per-op timing loop is invisible.
        """
        n = len(batch)
        if n == 2:
            chip_id = batch[0]
            op = batch[1]
            del batch[:]
            self._execute(chip_id, op, None)
            return
        latencies = None
        vector_min = self._vector_min
        if vector_min is not None and n >= 2 * vector_min:
            all_programs = True
            for i in range(1, n, 2):
                if batch[i].kind is not _PROGRAM:
                    all_programs = False
                    break
            if all_programs:
                latencies = self._array_program_batch(
                    [batch[i].addr for i in range(1, n, 2)],
                    [batch[i].data for i in range(1, n, 2)])
        sim = self.sim
        now = sim.now
        chips_per_channel = self._chips_per_channel
        channel_free = self._channel_free
        t_transfer = self._t_transfer
        busy = self._busy
        idle = self._idle
        in_flight = self.in_flight
        sim_push = self._sim_push
        seq = sim._seq
        cancelled = sim._cancelled
        on_op_done = self._on_op_done
        array_program = self._array_program
        array_read = self._array_read
        array_erase = self._array_erase
        j = 0
        for i in range(0, n, 2):
            chip_id = batch[i]
            op = batch[i + 1]
            kind = op.kind
            if kind is _PROGRAM:
                channel = chip_id // chips_per_channel
                start = channel_free[channel]
                if start < now:
                    start = now
                channel_free[channel] = start + t_transfer
                if latencies is None:
                    latency = array_program(op.addr, op.data)
                else:
                    latency = latencies[j]
                    j += 1
                total = (start - now) + t_transfer + latency
            elif kind is _READ:
                channel = chip_id // chips_per_channel
                start = channel_free[channel]
                if start < now:
                    start = now
                channel_free[channel] = start + t_transfer
                _, latency = array_read(op.addr)
                total = (start - now) + t_transfer + latency
            else:
                total = array_erase(op.addr.channel, op.addr.chip,
                                    op.addr.block)
            busy[chip_id] = True
            del idle[bisect_left(idle, chip_id)]
            in_flight[chip_id] = op
            sim_push([now + total, 0, next(seq), on_op_done,
                      (chip_id, op, None), False, cancelled])
        del batch[:]

    def _on_op_done(self, chip_id: int, op: FlashOp,
                    read_request: Optional[Request]) -> None:
        if self._injector is not None:
            fault = self._injector.on_op_complete(chip_id, op)
            if fault is not None and self._handle_fault(
                    chip_id, op, read_request, fault):
                # Read recovery defers this op's completion; the chip
                # stays busy until the retry ladder finishes.
                return
        if self._physics is not None:
            kind = op.kind
            addr = op.addr
            if kind is OpKind.READ:
                outcome = self._physics.on_read(
                    chip_id, addr.block, addr.page, self.sim.now,
                    sample=op.tag == "host")
                if outcome is not None and self._note_physics_read(
                        chip_id, op, read_request, outcome):
                    # Voltage-shift ladder in progress: the chip stays
                    # busy until _finish_read_recovery.
                    return
            elif kind is OpKind.PROGRAM:
                self._physics.note_program(chip_id, addr.block, addr.page,
                                           self.sim.now)
            else:
                self._physics.note_erase(chip_id, addr.block)
        self._busy[chip_id] = False
        insort(self._idle, chip_id)
        self.in_flight.pop(chip_id, None)
        if op.on_complete is not None:
            op.on_complete(self.sim.now)
        if read_request is not None:
            self._complete_read_page(read_request)
        # _pump(), open-coded (this is the kernel's only callback in
        # steady state and the extra frame was measurable).  Keep the
        # body in sync with :meth:`_pump`.
        if self._pumping:
            return
        self._pumping = True
        try:
            idle = self._idle
            read_queues = self._read_queues
            ftl_next_op = self._ftl_next_op
            admissions = self._admissions
            buffer = self.write_buffer
            capacity = buffer.capacity
            now = self.sim.now
            batch = self._batch \
                if self._batching and "_execute" not in self.__dict__ \
                else None
            progress = True
            while progress:
                progress = bool(admissions) \
                    and buffer._live < capacity \
                    and self._drain_admissions()
                for cid in tuple(idle):
                    rreq: Optional[Request] = None
                    if read_queues[cid]:
                        if batch:
                            self._flush_batch(batch)
                        next_op, rreq = self._next_read_op(cid)
                    else:
                        next_op = None
                    if next_op is None:
                        next_op = ftl_next_op(cid, now)
                    if next_op is None \
                            and not (admissions or self._queued_reads
                                     or buffer._live) \
                            and self.ftl.wants_background_gc(cid):
                        next_op = self.ftl.background_op(cid, now)
                    if next_op is None:
                        continue
                    if batch is None or rreq is not None:
                        self._execute(cid, next_op, rreq)
                    else:
                        batch.append(cid)
                        batch.append(next_op)
                    progress = True
                if batch:
                    self._flush_batch(batch)
        finally:
            self._pumping = False

    def _complete_read_page(self, request: Request) -> None:
        request.pages_remaining -= 1
        if request.pages_remaining == 0:
            self._complete_request(request)

    # ------------------------------------------------------------------
    # fault injection and recovery (see repro.faults)

    def ensure_fault_stats(self) -> FaultStats:
        """Attach (or return) the run's fault counters."""
        if self.stats.faults is None:
            self.stats.faults = FaultStats()
        return self.stats.faults

    def attach_fault_injector(self, injector) -> None:
        """Arm runtime fault injection for the rest of the run.

        ``injector`` is consulted after every completed flash op (see
        :class:`repro.faults.injector.FaultInjector`); the FTL shares
        the controller's fault counters from here on.
        """
        self._injector = injector
        self.ftl.fault_stats = self.ensure_fault_stats()

    def attach_physics(self, engine) -> None:
        """Arm the physics-grounded error engine for the rest of the run.

        ``engine`` (:class:`repro.reliability.physics.PhysicsEngine`)
        is consulted after every completed flash op: programs and
        erases update its history bookkeeping, host reads sample a
        bit-error outcome against the page's actual aggressor count,
        P/E wear, retention age and read-disturb exposure.  Attaching
        binds the engine to the array and replays each block's recorded
        program history (requires ``track_history=True`` blocks), so
        attach after warmup to measure at a warmed state.

        When a fault injector is also armed it takes precedence: a read
        the injector defers into its own ladder is not double-sampled.
        """
        engine.bind(self.array, self.sim.now)
        self._physics = engine
        self.ftl.fault_stats = self.ensure_fault_stats()

    def _note_physics_read(self, chip_id: int, op: FlashOp,
                           read_request: Optional[Request],
                           outcome) -> bool:
        """Record a sampled read; walk the shift ladder on error.

        Returns True when the op's completion is deferred (the ladder's
        extra latency is being charged)."""
        metrics = self._metrics
        if metrics is not None:
            hist = self._physics_hist
            if hist is None:
                hist = self._physics_hist = metrics.histogram(
                    "reliability.read_ber",
                    bounds=(1e-9, 1e-8, 1e-7, 1e-6, 1e-5,
                            1e-4, 1e-3, 1e-2, 1e-1))
            hist.observe(outcome.ber)
        if not outcome.error:
            return False
        return self._begin_physics_recovery(chip_id, op, read_request,
                                            outcome)

    def _begin_physics_recovery(self, chip_id: int, op: FlashOp,
                                read_request: Optional[Request],
                                outcome) -> bool:
        """Charge the voltage-shift retry ladder for a physics error.

        Mirrors :meth:`_begin_read_recovery` but the rung count comes
        from the sampled :class:`ReadOutcome` — each rung is one
        re-read at a shifted reference voltage, then the escalated
        soft-decision ECC mode, then parity reconstruction.  Latency is
        charged per rung actually attempted."""
        faults = self.stats.faults
        t_read = self.timing.t_read
        config = self._physics.config
        addr = op.addr
        if faults is not None:
            faults.read_faults += 1
            faults.physics_read_errors += 1
            faults.voltage_shift_retries += outcome.shifts_tried
            faults.ladder_reads += outcome.shifts_tried
        if self._trace is not None:
            self._trace.event("reliability.read_error", chip=chip_id,
                              block=addr.block, page=addr.page,
                              ber=outcome.ber, prob=outcome.probability)
            for rung in range(outcome.shifts_tried):
                shift = config.retry_shifts[rung]
                self._trace.event(
                    "reliability.retry_shift", chip=chip_id,
                    block=addr.block, page=addr.page, shift=shift,
                    recovered=int(outcome.recovered_shift is not None
                                  and rung == outcome.shifts_tried - 1))
        if self._metrics is not None:
            self._metrics.counter("reliability.read_errors",
                                  chip=chip_id).inc()
        extra = outcome.shifts_tried * t_read
        resolved = "retried"
        if outcome.recovered_shift is None:
            # Ladder exhausted: escalated (soft-decision) ECC mode.
            if faults is not None:
                faults.ecc_escalations += 1
                faults.ladder_reads += config.ecc_escalation_reads
            extra += config.ecc_escalation_reads * t_read
            if outcome.uncorrectable:
                if self.ftl.parity_covers(chip_id, addr):
                    if faults is not None:
                        faults.parity_reconstructions += 1
                        faults.ladder_reads += self.ftl.wordlines
                    extra += self.ftl.wordlines * t_read
                    resolved = "reconstructed"
                else:
                    resolved = "lost"
        if faults is not None:
            faults.read_retries += 1
        sim = self.sim
        self._sim_push(
            [sim.now + extra, 0, next(sim._seq),
             self._finish_read_recovery,
             (chip_id, op, read_request, resolved),
             False, sim._cancelled])
        return True

    def _handle_fault(self, chip_id: int, op: FlashOp,
                      read_request: Optional[Request], fault) -> bool:
        """Dispatch one injected fault.  Returns True when the op's
        completion is deferred (read retry ladder in progress)."""
        kind = fault.kind
        if self._trace is not None:
            addr = op.addr
            self._trace.event("fault.inject", chip=chip_id, fault=kind,
                              tag=op.tag, block=addr.block,
                              page=addr.page)
        if self._metrics is not None:
            self._metrics.counter("faults.injected", kind=kind,
                                  chip=chip_id).inc()
        if kind == "read_fault":
            return self._begin_read_recovery(chip_id, op, read_request,
                                             fault)
        ftl = self.ftl
        if kind == "program_fail":
            ftl.handle_program_failure(chip_id, op)
        elif kind == "erase_fail":
            ftl.handle_erase_failure(chip_id, op)
        else:  # grown_bad
            ftl.handle_grown_bad(chip_id, op)
        if ftl.degraded and not self.read_only:
            self._enter_read_only()
        return False

    def _begin_read_recovery(self, chip_id: int, op: FlashOp,
                             read_request: Optional[Request],
                             fault) -> bool:
        """Walk the read-retry ladder for a raw-BER excursion.

        Re-read first; if the baseline ECC still fails, escalate to the
        slow decode mode; if even that fails, reconstruct from parity
        when a live parity page covers the block — otherwise the page's
        data is lost.  The chip stays busy for the ladder's extra
        latency; completion resumes in :meth:`_finish_read_recovery`.

        Relocation reads (GC/salvage) only ever see the transient rung
        here: their source blocks are cold and the interesting
        data-loss semantics belong to host reads.
        """
        faults = self.stats.faults
        t_read = self.timing.t_read
        severity = fault.severity
        if op.tag != "host":
            severity = "transient"
        if faults is not None:
            faults.read_faults += 1
            faults.read_retries += 1
            faults.ladder_reads += 1
        # Per-rung itemised latency: a transient excursion costs exactly
        # the one re-read; deeper rungs add only their own reads.
        extra = t_read  # the re-read
        resolved = "retried"
        if severity != "transient":
            plan = self._injector.plan
            if faults is not None:
                faults.ecc_escalations += 1
                faults.ladder_reads += plan.ecc_escalation_reads
            extra += plan.ecc_escalation_reads * t_read
            if severity == "uncorrectable":
                if self.ftl.parity_covers(chip_id, op.addr):
                    if faults is not None:
                        faults.parity_reconstructions += 1
                        faults.ladder_reads += self.ftl.wordlines
                    # XOR across the block's other LSB pages
                    extra += self.ftl.wordlines * t_read
                    resolved = "reconstructed"
                else:
                    resolved = "lost"
        sim = self.sim
        self._sim_push(
            [sim.now + extra, 0, next(sim._seq),
             self._finish_read_recovery,
             (chip_id, op, read_request, resolved),
             False, sim._cancelled])
        return True

    def _finish_read_recovery(self, chip_id: int, op: FlashOp,
                              read_request: Optional[Request],
                              resolved: str) -> None:
        faults = self.stats.faults
        if resolved == "lost" and op.lpn is not None \
                and self.write_buffer.contains(op.lpn):
            # A newer copy of the page arrived in the buffer while the
            # ladder ran: nothing is actually lost.
            resolved = "retried"
        if resolved == "lost":
            if faults is not None:
                faults.lost_pages += 1
            self.ftl.note_read_loss(op)
            if read_request is not None:
                read_request.status = REQUEST_FAILED
        elif resolved == "reconstructed":
            if faults is not None:
                faults.reconstructed_pages += 1
            self.ftl.note_read_reconstructed(chip_id, op)
            if read_request is not None \
                    and read_request.status == REQUEST_OK:
                read_request.status = REQUEST_RECOVERED
        elif read_request is not None \
                and read_request.status == REQUEST_OK:
            read_request.status = REQUEST_RECOVERED
        if self._trace is not None:
            self._trace.event("fault.recover", chip=chip_id,
                              fault="read_fault", outcome=resolved,
                              pages=1)
        if self._metrics is not None:
            self._metrics.counter("faults.read_resolved",
                                  outcome=resolved, chip=chip_id).inc()
        self._busy[chip_id] = False
        insort(self._idle, chip_id)
        self.in_flight.pop(chip_id, None)
        if op.on_complete is not None:
            op.on_complete(self.sim.now)
        if read_request is not None:
            self._complete_read_page(read_request)
        self._pump()

    def _enter_read_only(self) -> None:
        """Degrade to read-only mode: the spare reserve is exhausted."""
        self.read_only = True
        faults = self.stats.faults
        if faults is not None:
            faults.degraded_mode = True
        if self._metrics is not None:
            self._metrics.gauge("device.read_only").set(1.0)
        while self._admissions:
            self._reject_write(self._admissions.popleft())

    def _reject_write(self, request: Request) -> None:
        """Fail a write with a typed error (read-only degraded mode)."""
        now = self.sim.now
        request.status = REQUEST_FAILED
        request.error = ReadOnlyDeviceError(
            "device is read-only: spare-block reserve exhausted")
        request.pages_remaining = 0
        request.completed_at = now
        faults = self.stats.faults
        if faults is not None:
            faults.writes_rejected += 1
        if self._metrics is not None:
            self._metrics.counter(
                "faults.writes_rejected",
                tenant=request.tenant or "-").inc()
        if self.completion_hook is not None:
            self.completion_hook(request, now)
        if request.on_complete is not None:
            request.on_complete(request, now)

    def reset_after_power_loss(self) -> int:
        """Clear volatile controller state after a power cut.

        Returns the number of buffered host pages whose RAM copy died
        with the power (they had already been acknowledged to the host
        under buffered-write semantics).
        """
        buffer = self.write_buffer
        dropped = buffer._live
        buffer._fifo.clear()
        buffer._resident.clear()
        buffer._stale.clear()
        buffer._live = 0
        self._admissions.clear()
        for queue in self._read_queues:
            queue.clear()
        self._queued_reads = 0
        self.in_flight.clear()
        del self._batch[:]  # always empty outside a pump; belt-and-braces
        chips = self._total_chips
        self._busy = [False] * chips
        self._idle = list(range(chips))
        self._channel_free = [0.0] * self.geometry.channels
        return dropped
