"""Storage controller: ties host, FTL and NAND array to the clock.

The controller owns per-chip busy state, per-channel transfer buses,
the host write buffer and read queues.  Whenever a chip is idle it asks
for work in priority order — queued host reads, then FTL work (buffer
drains, foreground GC, parity writes), then, if the whole device is
idle of host I/O, background garbage collection.

Write requests complete on write-buffer admission (buffered-write
semantics); read requests complete when their last page is read.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.nand.array import NandArray
from repro.sim.kernel import Simulator
from repro.sim.ops import FlashOp, OpKind
from repro.sim.queues import Request, RequestKind, WriteBuffer
from repro.sim.stats import SimStats


class StorageController:
    """Dispatches FTL-produced flash operations onto timed chips."""

    def __init__(
        self,
        sim: Simulator,
        array: NandArray,
        ftl,  # BaseFtl; untyped to avoid a circular import
        write_buffer: WriteBuffer,
        stats: Optional[SimStats] = None,
    ) -> None:
        self.sim = sim
        self.array = array
        self.geometry = array.geometry
        self.timing = array.timing
        self.ftl = ftl
        self.write_buffer = write_buffer
        self.stats = stats or SimStats(page_size=self.geometry.page_size)

        chips = self.geometry.total_chips
        self._busy: List[bool] = [False] * chips
        self._channel_free: List[float] = [0.0] * self.geometry.channels
        self._read_queues: List[Deque[Tuple[int, Request]]] = \
            [deque() for _ in range(chips)]
        self._admissions: Deque[Request] = deque()
        self._pumping = False
        #: op currently executing per chip (power-loss tooling inspects it)
        self.in_flight: Dict[int, FlashOp] = {}

    # ------------------------------------------------------------------
    # host interface

    def submit(self, request: Request) -> None:
        """Accept one host request at the current simulation time."""
        self.stats.note_arrival(request)
        request.submitted_at = self.sim.now
        if request.kind is RequestKind.READ:
            self._submit_read(request)
        else:
            self._admissions.append(request)
        self._pump()

    @property
    def pending_admissions(self) -> int:
        """Write requests waiting for buffer space."""
        return len(self._admissions)

    def host_idle(self) -> bool:
        """No outstanding host I/O anywhere in the device."""
        if self._admissions or not self.write_buffer.is_empty:
            return False
        return all(not queue for queue in self._read_queues)

    # ------------------------------------------------------------------
    # internals

    def _submit_read(self, request: Request) -> None:
        touched: List[int] = []
        for offset in range(request.npages):
            lpn = request.lpn + offset
            if self.write_buffer.contains(lpn):
                self.stats.buffer_read_hits += 1
                request.pages_remaining -= 1
                continue
            ppn = self.ftl.lookup(lpn)
            if ppn is None:
                # Never-written page: served as zeroes, no NAND access.
                request.pages_remaining -= 1
                continue
            chip_id = ppn // self.geometry.pages_per_chip
            self._read_queues[chip_id].append((lpn, request))
            touched.append(chip_id)
        if request.pages_remaining == 0:
            self._complete_request(request)

    def _complete_request(self, request: Request) -> None:
        self.stats.note_request_complete(request, self.sim.now)
        if request.on_complete is not None:
            request.on_complete(request, self.sim.now)

    def _pump(self) -> None:
        """Drive admissions and chip dispatch to a fixed point."""
        if self._pumping:
            return
        self._pumping = True
        try:
            progress = True
            while progress:
                progress = self._drain_admissions()
                for chip_id in range(self.geometry.total_chips):
                    if not self._busy[chip_id]:
                        progress = self._dispatch(chip_id) or progress
        finally:
            self._pumping = False

    def _drain_admissions(self) -> bool:
        progress = False
        while self._admissions and not self.write_buffer.is_full:
            request = self._admissions[0]
            while request.pages_remaining > 0 \
                    and not self.write_buffer.is_full:
                offset = request.npages - request.pages_remaining
                self.write_buffer.push(request.lpn + offset, self.sim.now,
                                       request)
                request.pages_remaining -= 1
                self.stats.note_host_page_write(self.sim.now)
                progress = True
            if request.pages_remaining > 0:
                break
            self._admissions.popleft()
            self._complete_request(request)
        return progress

    def _next_read_op(self, chip_id: int
                      ) -> Tuple[Optional[FlashOp], Optional[Request]]:
        queue = self._read_queues[chip_id]
        while queue:
            lpn, request = queue.popleft()
            ppn = self.ftl.lookup(lpn)
            if ppn is None or self.write_buffer.contains(lpn) \
                    or ppn // self.geometry.pages_per_chip != chip_id:
                # Superseded or relocated since queueing: data is
                # available elsewhere without touching this chip.
                self._complete_read_page(request)
                continue
            addr = self.geometry.address_of(ppn)
            if not self.array.is_programmed(addr):
                # The mapping already points at a relocation target
                # whose program is still in flight; the data sits in
                # controller RAM, so the read is served from there.
                self._complete_read_page(request)
                continue
            return (FlashOp(OpKind.READ, addr, tag="host", lpn=lpn),
                    request)
        return None, None

    def _dispatch(self, chip_id: int) -> bool:
        if self._busy[chip_id]:
            return False
        op, read_request = self._next_read_op(chip_id)
        if op is None:
            op = self.ftl.next_op(chip_id, self.sim.now)
        if op is None and self.host_idle() \
                and self.ftl.wants_background_gc(chip_id):
            op = self.ftl.background_op(chip_id, self.sim.now)
        if op is None:
            return False
        self._execute(chip_id, op, read_request)
        return True

    def _execute(self, chip_id: int, op: FlashOp,
                 read_request: Optional[Request]) -> None:
        now = self.sim.now
        channel = chip_id // self.geometry.chips_per_channel
        if op.kind is OpKind.ERASE:
            latency = self.array.erase(op.addr.channel, op.addr.chip,
                                       op.addr.block)
            total = latency
        else:
            start = max(now, self._channel_free[channel])
            self._channel_free[channel] = start + self.timing.t_transfer
            if op.kind is OpKind.PROGRAM:
                latency = self.array.program(op.addr, op.data)
            else:
                _, latency = self.array.read(op.addr)
            total = (start - now) + self.timing.t_transfer + latency
        self._busy[chip_id] = True
        self.in_flight[chip_id] = op
        self.sim.schedule(total, self._on_op_done, chip_id, op,
                          read_request)

    def _on_op_done(self, chip_id: int, op: FlashOp,
                    read_request: Optional[Request]) -> None:
        self._busy[chip_id] = False
        self.in_flight.pop(chip_id, None)
        if op.on_complete is not None:
            op.on_complete(self.sim.now)
        if read_request is not None:
            self._complete_read_page(read_request)
        self._pump()

    def _complete_read_page(self, request: Request) -> None:
        request.pages_remaining -= 1
        if request.pages_remaining == 0:
            self._complete_request(request)
