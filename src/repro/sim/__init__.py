"""Discrete-event simulation of the NAND storage system.

The layer that turns the state-level NAND model into a timed storage
device: an event-queue kernel (:mod:`repro.sim.kernel`), the flash
operation vocabulary FTLs emit (:mod:`repro.sim.ops`), the host write
buffer and request bookkeeping (:mod:`repro.sim.queues`), a
trace-replay host (:mod:`repro.sim.host`), the storage controller that
dispatches operations to chips over shared channels
(:mod:`repro.sim.controller`), and metric collection
(:mod:`repro.sim.stats`).
"""

from repro.sim.kernel import Event, Simulator
from repro.sim.ops import FlashOp, OpKind
from repro.sim.queues import Request, RequestKind, WriteBuffer
from repro.sim.stats import SimStats, WindowedBandwidth
from repro.sim.controller import StorageController
from repro.sim.tracing import OpLog, OpRecord
from repro.sim.powerloss import (
    PowerLossReport,
    ScheduledPowerLoss,
    verify_flexftl_protection,
)
from repro.sim.host import (
    ClosedLoopHost,
    StreamOp,
    TraceReplayHost,
    run_closed_loop,
    run_trace,
)

__all__ = [
    "Event",
    "Simulator",
    "FlashOp",
    "OpKind",
    "Request",
    "RequestKind",
    "WriteBuffer",
    "SimStats",
    "WindowedBandwidth",
    "StorageController",
    "TraceReplayHost",
    "ClosedLoopHost",
    "StreamOp",
    "run_trace",
    "run_closed_loop",
    "ScheduledPowerLoss",
    "PowerLossReport",
    "verify_flexftl_protection",
    "OpLog",
    "OpRecord",
]
