"""Host requests and the controller's write buffer.

The write buffer is central to the paper's adaptive page allocation:
host writes complete on buffer admission, the FTL drains the buffer at
its own pace, and the buffer *utilisation* ``u`` is the policy
manager's first input (Section 3.2).
"""

from __future__ import annotations

import dataclasses
import enum
from collections import deque
from typing import Callable, Deque, Dict, Optional


class RequestKind(enum.Enum):
    """Host request type."""

    READ = "read"
    WRITE = "write"


#: Completion statuses a request can carry (see :attr:`Request.status`).
REQUEST_OK = "ok"
REQUEST_RECOVERED = "recovered"
REQUEST_FAILED = "failed"


@dataclasses.dataclass(slots=True)
class Request:
    """One host I/O request covering ``npages`` consecutive pages.

    Attributes:
        time: arrival timestamp (seconds).
        kind: read or write.
        lpn: first logical page number.
        npages: request length in pages.
        tenant: issuing tenant id for multi-tenant QoS accounting
            (:mod:`repro.qos`), or None for untagged single-host
            traffic.  Purely descriptive: the controller schedules
            tagged and untagged requests identically.
    """

    time: float
    kind: RequestKind
    lpn: int
    npages: int = 1
    tenant: Optional[str] = None

    # -- runtime bookkeeping (filled in by the host/controller) -------
    pages_remaining: int = dataclasses.field(default=-1, repr=False)
    submitted_at: float = dataclasses.field(default=0.0, repr=False)
    #: completion status: :data:`REQUEST_OK` (default),
    #: :data:`REQUEST_RECOVERED` (served, but only after the controller
    #: walked a fault-recovery ladder) or :data:`REQUEST_FAILED`
    #: (rejected or data lost); completion hooks and SLO accounting
    #: read it.
    status: str = dataclasses.field(default=REQUEST_OK, repr=False)
    #: the typed error behind a failed request (e.g.
    #: :class:`~repro.nand.errors.ReadOnlyDeviceError`), or None.
    error: Optional[Exception] = dataclasses.field(default=None,
                                                   repr=False)
    completed_at: Optional[float] = dataclasses.field(default=None,
                                                      repr=False)
    #: called as ``on_complete(request, time)`` when the request
    #: finishes (closed-loop hosts use this to issue their next op)
    on_complete: Optional[Callable[["Request", float], None]] = \
        dataclasses.field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.npages <= 0:
            raise ValueError(f"npages must be positive, got {self.npages}")
        if self.lpn < 0:
            raise ValueError(f"lpn must be non-negative, got {self.lpn}")
        if self.pages_remaining < 0:
            self.pages_remaining = self.npages

    @property
    def latency(self) -> Optional[float]:
        """Completion latency, once the request has completed."""
        if self.completed_at is None:
            return None
        return self.completed_at - self.time


@dataclasses.dataclass(slots=True)
class BufferedWrite:
    """One page-sized write waiting in the write buffer."""

    lpn: int
    enqueued_at: float
    request: Optional[Request] = None


class WriteBuffer:
    """Fixed-capacity FIFO of page-sized host writes.

    Tracks which logical pages are currently resident so reads of
    not-yet-flushed data can be served from the buffer, and exposes the
    utilisation ``u`` the flexFTL policy manager samples.

    With ``coalesce=True``, re-writing a page that is still buffered
    supersedes the older copy (it is dropped on pop without reaching
    flash), as a RAM write cache does.  Off by default: the paper's
    evaluation drains the raw host stream, and coalescing would mask
    part of every FTL's write load equally.
    """

    def __init__(self, capacity_pages: int,
                 coalesce: bool = False) -> None:
        if capacity_pages <= 0:
            raise ValueError(
                f"capacity_pages must be positive, got {capacity_pages}"
            )
        self.capacity = capacity_pages
        self.coalesce = coalesce
        self.coalesced_writes = 0
        self._fifo: Deque[BufferedWrite] = deque()
        self._resident: Dict[int, int] = {}
        self._stale: Dict[int, int] = {}  # lpn -> stale copies to skip
        #: live (non-stale) entries; kept as a counter because the
        #: controller probes the buffer level on every dispatch, which
        #: makes a recomputed ``len()`` the simulation's hottest call.
        self._live = 0

    def __len__(self) -> int:
        return self._live

    @property
    def utilization(self) -> float:
        """Occupied fraction ``u`` in [0, 1] (live pages only)."""
        return self._live / self.capacity

    @property
    def is_full(self) -> bool:
        """True when no further page can be admitted."""
        return self._live >= self.capacity

    @property
    def is_empty(self) -> bool:
        """True when there is nothing to drain."""
        return self._live == 0

    def contains(self, lpn: int) -> bool:
        """Whether a live write for ``lpn`` is buffered (read hit)."""
        return lpn in self._resident

    def push(self, lpn: int, now: float,
             request: Optional[Request] = None) -> BufferedWrite:
        """Admit one page write; raises when full (caller must check)."""
        if self._live >= self.capacity:
            raise OverflowError("write buffer is full")
        entry = BufferedWrite(lpn, now, request)
        if self.coalesce and lpn in self._resident:
            # The older buffered copy is superseded in place: it will
            # be skipped on pop and never reaches flash.  One entry
            # joins, one goes stale: the live count is unchanged.
            self._stale[lpn] = self._stale.get(lpn, 0) + 1
            self.coalesced_writes += 1
        else:
            self._resident[lpn] = self._resident.get(lpn, 0) + 1
            self._live += 1
        self._fifo.append(entry)
        return entry

    def _drop_stale_head(self) -> None:
        # Stale marks apply to the *oldest* copies of an lpn, and the
        # fifo pops oldest-first, so a head entry with a stale mark is
        # itself stale.
        while self._fifo:
            head = self._fifo[0]
            stale = self._stale.get(head.lpn, 0)
            if not stale:
                return
            self._fifo.popleft()
            if stale == 1:
                del self._stale[head.lpn]
            else:
                self._stale[head.lpn] = stale - 1

    def pop(self) -> BufferedWrite:
        """Remove and return the oldest *live* buffered write."""
        if self._stale:  # stale marks exist only with coalescing on
            self._drop_stale_head()
        if not self._fifo:
            raise IndexError("write buffer is empty")
        entry = self._fifo.popleft()
        lpn = entry.lpn
        resident = self._resident
        remaining = resident[lpn] - 1
        if remaining:
            resident[lpn] = remaining
        else:
            del resident[lpn]
        self._live -= 1
        return entry

    def peek(self) -> BufferedWrite:
        """Return the oldest live buffered write without removing it."""
        if self._stale:
            self._drop_stale_head()
        if not self._fifo:
            raise IndexError("write buffer is empty")
        return self._fifo[0]
