"""Sudden power-off during a live simulation run.

:class:`ScheduledPowerLoss` arms a power-off event at an absolute
simulation time.  When it fires, every program operation in flight on
any chip suffers the device-level consequences (the op's own page is
not durable; an interrupted MSB program additionally destroys its
paired LSB page), and the event queue is halted — nothing scheduled
before the cut executes.

For flexFTL the interesting question afterwards is the Section 3.3
guarantee: every destroyed LSB data page must still be covered by a
*live* parity page in its chip's backup blocks, so the reboot recovery
of :mod:`repro.core.parity_backup` can reconstruct it.
:func:`verify_flexftl_protection` checks exactly that.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.nand.geometry import PhysicalPageAddress
from repro.nand.page_types import PageType, split_index
from repro.nand.power import apply_power_loss_to_in_flight
from repro.sim.controller import StorageController
from repro.sim.kernel import Simulator
from repro.sim.ops import OpKind


@dataclasses.dataclass
class PowerLossReport:
    """What a fired power-off destroyed."""

    time: float
    interrupted_programs: List[PhysicalPageAddress]
    destroyed_pages: List[PhysicalPageAddress]

    @property
    def destroyed_lsb_data_pages(self) -> List[PhysicalPageAddress]:
        """All destroyed LSB pages (in-flight and collateral)."""
        return [addr for addr in self.destroyed_pages
                if split_index(addr.page)[1] is PageType.LSB]

    @property
    def collateral_lsb_pages(self) -> List[PhysicalPageAddress]:
        """Previously-durable LSB pages destroyed by interrupted MSB
        programs — the pages Section 3.3's parity backup must cover.

        An LSB page that was *itself* the interrupted program held
        data that never became durable (it died with the controller's
        RAM write buffer); no backup scheme covers in-flight writes.
        """
        interrupted = set(self.interrupted_programs)
        return [addr for addr in self.destroyed_lsb_data_pages
                if addr not in interrupted]


class ScheduledPowerLoss:
    """Arms power-offs at absolute simulation times.

    Single-cut usage is unchanged: ``ScheduledPowerLoss(sim, ctrl, t)``
    arms one cut and :attr:`report` describes it after it fires.

    Multi-cut usage (``at_times=[t1, t2, ...]``) models a machine that
    keeps losing power across reboots: only the *next* cut is armed at
    a time; after recovery the resume loop calls :meth:`arm_next` to
    arm the following one.  Each fired cut appends to :attr:`reports`.
    """

    def __init__(self, sim: Simulator, controller: StorageController,
                 at_time: "float | None" = None, *,
                 at_times: "List[float] | None" = None) -> None:
        if (at_time is None) == (at_times is None):
            raise ValueError(
                "provide exactly one of at_time or at_times")
        self.sim = sim
        self.controller = controller
        self.reports: List[PowerLossReport] = []
        if at_times is None:
            schedule = [at_time]
        else:
            schedule = sorted(at_times)
            if not schedule:
                raise ValueError("at_times must not be empty")
        #: cut times not yet armed (the head is armed on construction
        #: and after each arm_next call)
        self._schedule: List[float] = list(schedule)
        self._event = None
        self.arm_next()

    @property
    def report(self) -> "PowerLossReport | None":
        """The most recent fired cut (None before the first)."""
        return self.reports[-1] if self.reports else None

    @property
    def fired(self) -> bool:
        """Whether at least one power-off has happened."""
        return bool(self.reports)

    @property
    def armed(self) -> bool:
        """Whether a cut event is currently live in the event queue."""
        return self._event is not None and not self._event.cancelled

    def arm_next(self) -> bool:
        """Arm the next scheduled cut; False when none remain."""
        if not self._schedule:
            return False
        at_time = self._schedule.pop(0)
        self._event = self.sim.schedule_at(at_time, self._fire,
                                           priority=-1)
        return True

    def cancel(self) -> None:
        """Disarm the power-off and drop any remaining schedule
        (e.g. the run ended cleanly first)."""
        if self._event is not None:
            self._event.cancel()
        self._schedule.clear()

    def _fire(self) -> None:
        self._event = None
        interrupted: List[PhysicalPageAddress] = []
        destroyed: List[PhysicalPageAddress] = []
        for op in self.controller.in_flight.values():
            if op.kind is not OpKind.PROGRAM:
                continue
            interrupted.append(op.addr)
            destroyed.extend(
                apply_power_loss_to_in_flight(self.controller.array,
                                              op.addr)
            )
        self.reports.append(PowerLossReport(
            time=self.sim.now,
            interrupted_programs=interrupted,
            destroyed_pages=destroyed,
        ))
        faults = self.controller.stats.faults
        if faults is not None:
            faults.power_cuts += 1
        self.sim.halt()


def verify_flexftl_protection(ftl, report: PowerLossReport) -> List[str]:
    # `ftl` is a FlexFtl; typed loosely because repro.sim must not
    # import repro.core at module load time (circular import).
    """Check the Section 3.3 guarantee after a power loss.

    For every destroyed LSB *data* page, the owning block must have a
    live parity page registered in its chip's backup manager (the
    paired-page backup flexFTL relies on for recovery).  Destroyed
    pages in reserved backup blocks are parity pages themselves; they
    only protected in-flight state that was lost anyway, so they are
    exempt.

    Returns a list of violation descriptions (empty = fully protected).
    """
    violations: List[str] = []
    for addr in report.collateral_lsb_pages:
        chip_id = ftl.geometry.chip_id(addr.channel, addr.chip)
        if addr.block >= ftl.backup_block_start:
            continue  # a backup block's own page
        backup = ftl.chips[chip_id].backup
        gb = ftl.mapping.global_block_of(chip_id, addr.block)
        if backup is None or backup.slot_of(gb) is None:
            violations.append(
                f"destroyed LSB page {tuple(addr)} has no live parity "
                f"page for block {gb}"
            )
    return violations
