"""The flash-operation vocabulary FTLs hand to the controller.

An FTL never touches the clock: it answers ``next_op(chip_id)`` with a
:class:`FlashOp` describing one physical operation (program, read or
erase), and the controller executes it against the NAND array, charges
channel and chip time, and fires the op's completion callback.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import Callable, Optional

from repro.nand.geometry import PhysicalPageAddress


class OpKind(enum.Enum):
    """Physical NAND operation type."""

    PROGRAM = "program"
    READ = "read"
    ERASE = "erase"


@dataclasses.dataclass(slots=True)
class FlashOp:
    """One physical NAND operation plus scheduling metadata.

    Attributes:
        kind: operation type.
        addr: target page (for erase, any page address inside the
            victim block; only the block field is used).
        tag: provenance label used for accounting — ``"host"``,
            ``"gc"``, ``"backup"`` or ``"meta"``.
        lpn: logical page involved (host data ops only).
        on_complete: called with the completion timestamp after the
            operation's latency has elapsed.
        data: optional payload for data-bearing runs.
        source: for relocation programs (GC/salvage copies), the page
            the data was read from.  Power-loss recovery rolls a
            not-yet-executed relocation back to this durable copy.
    """

    kind: OpKind
    addr: PhysicalPageAddress
    tag: str = "host"
    lpn: Optional[int] = None
    on_complete: Optional[Callable[[float], None]] = None
    data: Optional[bytes] = None
    source: Optional[PhysicalPageAddress] = None

    def __repr__(self) -> str:
        return (
            f"FlashOp({self.kind.value}, {tuple(self.addr)}, tag={self.tag}"
            + (f", lpn={self.lpn}" if self.lpn is not None else "")
            + ")"
        )
