"""Hosts: feed workloads into the controller.

Two host models are provided:

* :class:`TraceReplayHost` — open-loop: requests arrive at fixed trace
  timestamps (block-trace replay).
* :class:`ClosedLoopHost` — closed-loop: a set of worker streams each
  issues its next request only after the previous one completes, plus
  a per-op think time.  This is how the paper's Sysbench/Filebench
  workloads behave, and it is what lets IOPS reflect device latency:
  an intensive workload (think ~ 0) saturates the device, a moderate
  one leaves the idle gaps background GC needs.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence

from repro.sim.controller import StorageController
from repro.sim.kernel import Simulator
from repro.sim.queues import Request, RequestKind
from repro.sim.stats import SimStats


class TraceReplayHost:
    """Replays a time-ordered request trace (open-loop arrivals).

    Arrivals fire at their trace timestamps regardless of device state;
    backpressure shows up as write-buffer admission queueing inside the
    controller, exactly how a host-side block layer experiences a slow
    device.
    """

    def __init__(self, sim: Simulator, controller: StorageController,
                 trace: Sequence[Request]) -> None:
        self.sim = sim
        self.controller = controller
        self.trace = list(trace)
        for earlier, later in zip(self.trace, self.trace[1:]):
            if later.time < earlier.time:
                raise ValueError("trace must be sorted by arrival time")
        self._index = 0

    def start(self) -> None:
        """Schedule the first arrival (no-op for an empty trace)."""
        if self.trace:
            self.sim.schedule_at(max(self.sim.now, self.trace[0].time),
                                 self._arrive)

    def _arrive(self) -> None:
        request = self.trace[self._index]
        self._index += 1
        if self._index < len(self.trace):
            next_time = max(self.sim.now, self.trace[self._index].time)
            self.sim.schedule_at(next_time, self._arrive)
        self.controller.submit(request)

    @property
    def remaining(self) -> int:
        """Requests not yet injected."""
        return len(self.trace) - self._index


@dataclasses.dataclass(frozen=True)
class StreamOp:
    """One operation of a closed-loop worker stream.

    Attributes:
        kind: read or write.
        lpn: first logical page.
        npages: length in pages.
        think_after: host think time between this op's completion and
            the stream's next issue (0 inside a burst; large between
            bursts or for low-intensity workloads).
    """

    kind: RequestKind
    lpn: int
    npages: int = 1
    think_after: float = 0.0


class StreamCompletion:
    """Completion callback that advances one closed-loop stream.

    A plain class (not a lambda) so a host mid-run — including the
    callbacks attached to in-flight requests — pickles into a fleet
    snapshot.  The pickle memo keeps ``host`` pointing at the one
    host instance shared by every callback.
    """

    __slots__ = ("host", "index", "think")

    def __init__(self, host, index: int, think: float) -> None:
        self.host = host
        self.index = index
        self.think = think

    def __call__(self, _req, _now) -> None:
        self.host._advance(self.index, self.think)

    def __getstate__(self):
        return (self.host, self.index, self.think)

    def __setstate__(self, state) -> None:
        self.host, self.index, self.think = state


class ClosedLoopHost:
    """Synchronous worker streams (Sysbench/Filebench-style load).

    ``tenant`` (optional) tags every issued request with a tenant id so
    per-tenant accounting (:mod:`repro.qos.slo`) can attribute it; it
    changes nothing about how requests are scheduled.
    """

    def __init__(self, sim: Simulator, controller: StorageController,
                 streams: Sequence[Sequence[StreamOp]],
                 tenant: Optional[str] = None) -> None:
        self.sim = sim
        self.controller = controller
        self.streams: List[List[StreamOp]] = [list(s) for s in streams]
        self.tenant = tenant
        self._cursor = [0] * len(self.streams)

    def start(self) -> None:
        """Kick off every non-empty stream at the current time."""
        for index, stream in enumerate(self.streams):
            if stream:
                self.sim.schedule(0.0, self._issue, index)

    @property
    def remaining(self) -> int:
        """Operations not yet issued across all streams."""
        return sum(len(s) - c for s, c in zip(self.streams, self._cursor))

    def _issue(self, index: int) -> None:
        op = self.streams[index][self._cursor[index]]
        request = Request(self.sim.now, op.kind, op.lpn, op.npages,
                          tenant=self.tenant)
        request.on_complete = StreamCompletion(self, index, op.think_after)
        self.controller.submit(request)

    def _advance(self, index: int, think: float) -> None:
        self._cursor[index] += 1
        if self._cursor[index] < len(self.streams[index]):
            self.sim.schedule(think, self._issue, index)

    def resume(self) -> int:
        """Re-issue every unfinished stream after a power cut.

        A power-off halts the event queue, so streams whose in-flight
        request never completed are stalled on an ``on_complete`` that
        will never fire.  This re-schedules each unfinished stream at
        its current cursor — the host retries the interrupted op, as a
        real application would after a crash.  Returns the number of
        streams restarted.
        """
        restarted = 0
        for index, stream in enumerate(self.streams):
            if self._cursor[index] < len(stream):
                self.sim.schedule(0.0, self._issue, index)
                restarted += 1
        return restarted


def run_closed_loop(sim: Simulator, controller: StorageController,
                    streams: Sequence[Sequence[StreamOp]],
                    max_events: Optional[int] = None) -> SimStats:
    """Run a closed-loop workload to completion; returns statistics."""
    host = ClosedLoopHost(sim, controller, streams)
    host.start()
    sim.run(max_events=max_events)
    return controller.stats


def run_trace(sim: Simulator, controller: StorageController,
              trace: Sequence[Request],
              max_events: Optional[int] = None) -> SimStats:
    """Replay ``trace`` to completion and return the run's statistics.

    The simulation runs until the event queue drains — all requests
    completed, the write buffer flushed, and background GC settled.
    """
    host = TraceReplayHost(sim, controller, trace)
    host.start()
    sim.run(max_events=max_events)
    return controller.stats
