"""Synthetic workload primitives.

Building blocks the benchmark emulators compose: sequential fills (for
device preconditioning), uniform/Zipfian random writes, steady mixed
read/write streams, and bursty streams with idle gaps.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.sim.host import StreamOp
from repro.sim.queues import RequestKind
from repro.workloads.zipf import ZipfSampler


def sequential_fill(logical_pages: int, npages_per_request: int = 8
                    ) -> List[StreamOp]:
    """One stream writing the whole logical space once, sequentially.

    Used to precondition a device before measurement so every logical
    page is mapped and garbage collection is exercised realistically.
    """
    if logical_pages <= 0:
        raise ValueError("logical_pages must be positive")
    if npages_per_request <= 0:
        raise ValueError("npages_per_request must be positive")
    ops: List[StreamOp] = []
    lpn = 0
    while lpn < logical_pages:
        npages = min(npages_per_request, logical_pages - lpn)
        ops.append(StreamOp(RequestKind.WRITE, lpn, npages, 0.0))
        lpn += npages
    return ops


def uniform_random_writes(logical_pages: int, count: int,
                          npages: int = 1,
                          think: float = 0.0,
                          rng: Optional[np.random.Generator] = None
                          ) -> List[StreamOp]:
    """A stream of uniformly random single/multi-page writes."""
    rng = rng or np.random.default_rng()
    upper = max(1, logical_pages - npages + 1)
    return [
        StreamOp(RequestKind.WRITE, int(rng.integers(0, upper)), npages,
                 think)
        for _ in range(count)
    ]


def mixed_stream(logical_pages: int, count: int, read_fraction: float,
                 npages: int = 1, think: float = 0.0,
                 zipf_s: float = 1.0,
                 rng: Optional[np.random.Generator] = None
                 ) -> List[StreamOp]:
    """A steady stream mixing reads and writes with Zipfian locality."""
    if not (0.0 <= read_fraction <= 1.0):
        raise ValueError("read_fraction must be in [0, 1]")
    rng = rng or np.random.default_rng()
    span = max(1, logical_pages - npages + 1)
    sampler = ZipfSampler(span, zipf_s, rng)
    ops: List[StreamOp] = []
    for _ in range(count):
        kind = (RequestKind.READ if rng.random() < read_fraction
                else RequestKind.WRITE)
        ops.append(StreamOp(kind, sampler.sample(), npages, think))
    return ops


def burst_stream(logical_pages: int, bursts: int, burst_len: int,
                 idle: float, read_fraction: float = 0.0,
                 npages: int = 1, zipf_s: float = 1.0,
                 grouped: bool = True,
                 reads_follow_writes: bool = False,
                 rng: Optional[np.random.Generator] = None
                 ) -> List[StreamOp]:
    """Bursts of back-to-back ops separated by idle think times.

    Within a burst every op has zero think time; the burst's last op
    carries the inter-burst idle.  This is the shape that stresses the
    paper's peak-bandwidth mechanisms: a burst wants LSB-speed service,
    the idle gap is when background GC earns the quota back.

    With ``grouped=True`` (the default) each burst issues its writes
    as one run followed by its reads as one run — the fsync-storm
    shape of mail/file servers.  Ungrouped bursts interleave reads
    randomly, which throttles the stream on read latency and hides
    write-path differences.

    ``reads_follow_writes=True`` makes each burst's reads target pages
    the same burst just wrote (a mail server re-reading delivered
    mail); such reads are largely absorbed by the write buffer, like
    the host page cache absorbs them on a real system.
    """
    if burst_len <= 0 or bursts <= 0:
        raise ValueError("bursts and burst_len must be positive")
    if idle < 0:
        raise ValueError("idle must be non-negative")
    rng = rng or np.random.default_rng()
    span = max(1, logical_pages - npages + 1)
    sampler = ZipfSampler(span, zipf_s, rng)
    ops: List[StreamOp] = []
    for _ in range(bursts):
        kinds = [
            RequestKind.READ if rng.random() < read_fraction
            else RequestKind.WRITE
            for _ in range(burst_len)
        ]
        if grouped:
            kinds.sort(key=lambda kind: kind is RequestKind.READ)
        written: List[int] = []
        for position, kind in enumerate(kinds):
            think = idle if position == burst_len - 1 else 0.0
            if kind is RequestKind.READ and reads_follow_writes and written:
                lpn = written[int(rng.integers(0, len(written)))]
            else:
                lpn = sampler.sample()
                if kind is RequestKind.WRITE:
                    written.append(lpn)
            ops.append(StreamOp(kind, lpn, npages, think))
    return ops
