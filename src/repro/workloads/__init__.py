"""Workload generation: the five Table 1 benchmarks and primitives.

The paper evaluates on Sysbench (OLTP, NTRX) and Filebench (Webserver,
Varmail, Fileserver) running against the BlueDBM board.  We have no
host filesystem stack, so :mod:`repro.workloads.benchmarks` generates
closed-loop I/O streams matching Table 1's read:write ratios and I/O
intensiveness classes (think-time/burst structure), with Zipfian data
locality.  :mod:`repro.workloads.synthetic` provides lower-level
primitives; :mod:`repro.workloads.trace` a simple trace file format.
"""

from repro.workloads.zipf import ZipfSampler
from repro.workloads.trace import iter_trace, load_trace, save_trace
from repro.workloads.synthetic import (
    burst_stream,
    mixed_stream,
    sequential_fill,
    uniform_random_writes,
)
from repro.workloads.benchmarks import (
    PROFILES,
    WorkloadProfile,
    build_workload,
    workload_table,
)

__all__ = [
    "ZipfSampler",
    "iter_trace",
    "load_trace",
    "save_trace",
    "sequential_fill",
    "uniform_random_writes",
    "burst_stream",
    "mixed_stream",
    "WorkloadProfile",
    "PROFILES",
    "build_workload",
    "workload_table",
]
