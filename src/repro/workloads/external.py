"""Importers for externally captured block traces.

Enables trace-driven evaluation beyond the synthetic Table 1
emulators: the MSR-Cambridge CSV format (the de-facto standard for
enterprise block traces) is parsed into :class:`~repro.sim.queues.
Request` objects, and :func:`fit_trace` rescales an arbitrary trace
onto a simulated device (page-aligning offsets, folding the address
span into the device's logical space, and rebasing timestamps).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Union

from repro.sim.queues import Request, RequestKind

#: Windows FILETIME resolution used by MSR-Cambridge timestamps.
_FILETIME_TICKS_PER_SECOND = 10_000_000


def load_msr_trace(
    path: Union[str, Path],
    page_size: int = 4096,
    max_requests: Optional[int] = None,
) -> List[Request]:
    """Parse an MSR-Cambridge style CSV block trace.

    Expected columns (no header)::

        Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime

    with ``Timestamp`` in Windows FILETIME ticks (100 ns), ``Offset``
    and ``Size`` in bytes, and ``Type`` equal to ``Read`` or ``Write``
    (case-insensitive).  Timestamps are rebased so the trace starts at
    zero; offsets/sizes are converted to page-granular requests.

    Args:
        path: the CSV file.
        page_size: simulated device page size.
        max_requests: parse at most this many records.

    Returns:
        Time-sorted :class:`Request` objects (lpns may exceed any
        particular device — pass through :func:`fit_trace` before
        replay).
    """
    path = Path(path)
    requests: List[Request] = []
    base_ticks: Optional[int] = None
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split(",")
            if len(fields) < 6:
                raise ValueError(
                    f"{path}:{lineno}: expected >=6 CSV fields, got "
                    f"{len(fields)}"
                )
            ticks = int(fields[0])
            op = fields[3].strip().lower()
            offset = int(fields[4])
            size = int(fields[5])
            if op not in ("read", "write"):
                raise ValueError(f"{path}:{lineno}: unknown op {op!r}")
            if size <= 0:
                continue
            if base_ticks is None:
                base_ticks = ticks
            time = (ticks - base_ticks) / _FILETIME_TICKS_PER_SECOND
            lpn = offset // page_size
            last_byte = offset + size - 1
            npages = last_byte // page_size - lpn + 1
            requests.append(Request(
                time=time,
                kind=(RequestKind.READ if op == "read"
                      else RequestKind.WRITE),
                lpn=lpn,
                npages=npages,
            ))
            if max_requests is not None \
                    and len(requests) >= max_requests:
                break
    requests.sort(key=lambda request: request.time)
    return requests


def fit_trace(
    requests: List[Request],
    logical_pages: int,
    time_scale: float = 1.0,
    max_npages: Optional[int] = 64,
) -> List[Request]:
    """Fit an arbitrary trace onto a simulated device.

    * folds each request's address into ``[0, logical_pages)`` (keeping
      spatial locality modulo the fold);
    * clips request lengths to ``max_npages`` and to the logical end;
    * multiplies timestamps by ``time_scale`` (e.g. to compress a
      long capture onto a small fast simulation).

    Returns new :class:`Request` objects; the input is not modified.
    """
    if logical_pages <= 0:
        raise ValueError("logical_pages must be positive")
    if time_scale <= 0:
        raise ValueError("time_scale must be positive")
    fitted: List[Request] = []
    for request in requests:
        npages = request.npages
        if max_npages is not None:
            npages = min(npages, max_npages)
        lpn = request.lpn % logical_pages
        npages = min(npages, logical_pages - lpn)
        fitted.append(Request(
            time=request.time * time_scale,
            kind=request.kind,
            lpn=lpn,
            npages=max(1, npages),
        ))
    return fitted
