"""Emulators of the paper's five evaluation workloads (Table 1).

Each profile matches Table 1's two published characteristics — the
read:write ratio and the I/O-intensiveness class — and adds the
structural parameters the paper describes in prose: OLTP and NTRX are
intensive database loads "with little idle times between successive
I/O requests"; Webserver is read-dominant "with large idle times";
Varmail and Fileserver are "write-intensive workloads with a fair
amount of idle times" (bursty, with inter-burst gaps that give the
background garbage collector room to work).

======================  =====  ==========  ================
workload                R:W    intensity   structure
======================  =====  ==========  ================
OLTP (Sysbench)         7:3    very high   steady, think~0
NTRX (Sysbench)         3:7    very high   steady, think~0
Webserver (Filebench)   4:1    moderate    steady, long think
Varmail (Filebench)     1:1    high        bursts + idle
Fileserver (Filebench)  1:2    high        bursts + idle
======================  =====  ==========  ================
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from repro.sim.host import StreamOp
from repro.workloads.synthetic import burst_stream, mixed_stream


def format_rw_ratio(read_fraction: float) -> str:
    """Render a read fraction as the closest small ``R:W`` ratio.

    Both terms are kept single-digit, as Table 1 prints them (7:3,
    1:2, ...), choosing the pair minimising the fraction error.
    """
    if read_fraction <= 0.0:
        return "0:1"
    if read_fraction >= 1.0:
        return "1:0"
    from math import gcd

    best = (1, 1)
    best_error = float("inf")
    for reads in range(1, 10):
        for writes in range(1, 10):
            if gcd(reads, writes) != 1:
                continue
            error = abs(read_fraction - reads / (reads + writes))
            if error < best_error:
                best_error = error
                best = (reads, writes)
    return f"{best[0]}:{best[1]}"


@dataclasses.dataclass(frozen=True)
class WorkloadProfile:
    """Shape of one emulated benchmark workload.

    Attributes:
        name: workload name as it appears in the paper.
        read_fraction: fraction of operations that are reads.
        intensiveness: Table 1 class (``"very high"``, ``"high"``,
            ``"moderate"``).
        streams: concurrent synchronous worker streams.
        npages: request size in pages.
        think: per-op think time for steady streams (seconds).
        burst_len: ops per burst (0 means a steady stream).
        burst_idle: idle gap between bursts (seconds).
        zipf_s: address-skew exponent.
        reads_recent: burst reads target the burst's own writes
            (mail-server re-read pattern, absorbed by the buffer the
            way a host page cache absorbs it).
    """

    name: str
    read_fraction: float
    intensiveness: str
    streams: int
    npages: int
    think: float = 0.0
    burst_len: int = 0
    burst_idle: float = 0.0
    zipf_s: float = 1.0
    reads_recent: bool = False

    @property
    def read_write_ratio(self) -> str:
        """The Table 1 style ``R:W`` label (e.g. ``7:3``, ``1:2``)."""
        return format_rw_ratio(self.read_fraction)

    @property
    def is_bursty(self) -> bool:
        """Whether the workload has burst/idle structure."""
        return self.burst_len > 0


#: The five Table 1 workloads.
PROFILES: Dict[str, WorkloadProfile] = {
    "OLTP": WorkloadProfile(
        name="OLTP", read_fraction=0.7, intensiveness="very high",
        streams=16, npages=4, think=0.0, zipf_s=1.1,
    ),
    "NTRX": WorkloadProfile(
        name="NTRX", read_fraction=0.3, intensiveness="very high",
        streams=16, npages=4, think=0.0, zipf_s=1.1,
    ),
    "Webserver": WorkloadProfile(
        name="Webserver", read_fraction=0.8, intensiveness="moderate",
        streams=8, npages=2, think=4e-3, zipf_s=0.9,
    ),
    "Varmail": WorkloadProfile(
        name="Varmail", read_fraction=0.5, intensiveness="high",
        streams=4, npages=1, burst_len=512, burst_idle=0.18, zipf_s=0.9,
        reads_recent=True,
    ),
    "Fileserver": WorkloadProfile(
        name="Fileserver", read_fraction=0.33, intensiveness="high",
        streams=4, npages=4, burst_len=96, burst_idle=0.30, zipf_s=0.9,
    ),
}


def build_workload(
    name: str,
    logical_pages: int,
    total_ops: int,
    seed: int = 0,
    profile: Optional[WorkloadProfile] = None,
) -> List[List[StreamOp]]:
    """Generate the closed-loop streams of one benchmark workload.

    Args:
        name: a :data:`PROFILES` key (ignored when ``profile`` given).
        logical_pages: the target device's logical page count.
        total_ops: operations across all streams.
        seed: RNG seed; generation is deterministic.
        profile: explicit profile overriding the named one (used by
            ablation sweeps).

    Returns:
        One list of :class:`~repro.sim.host.StreamOp` per worker
        stream, ready for a
        :class:`~repro.sim.host.ClosedLoopHost`.
    """
    if profile is None:
        if name not in PROFILES:
            raise KeyError(
                f"unknown workload {name!r}; choose from {sorted(PROFILES)}"
            )
        profile = PROFILES[name]
    if total_ops <= 0:
        raise ValueError(f"total_ops must be positive, got {total_ops}")
    ops_per_stream = max(1, total_ops // profile.streams)
    streams: List[List[StreamOp]] = []
    for stream_index in range(profile.streams):
        rng = np.random.default_rng(seed * 7919 + stream_index)
        if profile.is_bursty:
            bursts = max(1, ops_per_stream // profile.burst_len)
            stream = burst_stream(
                logical_pages, bursts, profile.burst_len,
                idle=profile.burst_idle,
                read_fraction=profile.read_fraction,
                npages=profile.npages, zipf_s=profile.zipf_s,
                reads_follow_writes=profile.reads_recent, rng=rng,
            )
        else:
            stream = mixed_stream(
                logical_pages, ops_per_stream,
                read_fraction=profile.read_fraction,
                npages=profile.npages, think=profile.think,
                zipf_s=profile.zipf_s, rng=rng,
            )
        streams.append(stream)
    return streams


def workload_table(profiles: Optional[Dict[str, WorkloadProfile]] = None
                   ) -> str:
    """Render Table 1: I/O characteristics of the five workloads."""
    profiles = profiles or PROFILES
    names = list(profiles)
    header = f"{'':18s}" + "".join(f"{n:>12s}" for n in names)
    ratio = f"{'Read:Write':18s}" + "".join(
        f"{profiles[n].read_write_ratio:>12s}" for n in names
    )
    intensity = f"{'I/O intensiveness':18s}" + "".join(
        f"{profiles[n].intensiveness:>12s}" for n in names
    )
    return "\n".join([header, ratio, intensity])
