"""Plain-text trace files.

A minimal, diff-friendly format for open-loop request traces::

    # time op lpn npages
    0.000000 W 1234 4
    0.000125 R 88 1

Useful for persisting generated workloads, replaying externally
captured block traces, and writing regression tests against fixed
inputs.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence, Union

from repro.sim.queues import Request, RequestKind

_OP_CODES = {RequestKind.READ: "R", RequestKind.WRITE: "W"}
_OP_KINDS = {"R": RequestKind.READ, "W": RequestKind.WRITE}


def save_trace(path: Union[str, Path],
               requests: Sequence[Request]) -> None:
    """Write a request trace to ``path``."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        handle.write("# time op lpn npages\n")
        for request in requests:
            handle.write(
                f"{request.time:.9f} {_OP_CODES[request.kind]} "
                f"{request.lpn} {request.npages}\n"
            )


def load_trace(path: Union[str, Path]) -> List[Request]:
    """Read a request trace written by :func:`save_trace`."""
    path = Path(path)
    requests: List[Request] = []
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) != 4:
                raise ValueError(
                    f"{path}:{lineno}: expected 4 fields, got {len(fields)}"
                )
            time_str, op, lpn_str, npages_str = fields
            if op not in _OP_KINDS:
                raise ValueError(f"{path}:{lineno}: unknown op {op!r}")
            requests.append(Request(
                time=float(time_str),
                kind=_OP_KINDS[op],
                lpn=int(lpn_str),
                npages=int(npages_str),
            ))
    return requests
