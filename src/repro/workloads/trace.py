"""Plain-text trace files.

A minimal, diff-friendly format for open-loop request traces::

    # time op lpn npages
    0.000000 W 1234 4
    0.000125 R 88 1

Multi-tenant traces carry an optional fifth column naming the tenant
(``-`` for untagged requests)::

    # time op lpn npages tenant
    0.000000 W 1234 4 victim
    0.000125 R 88 1 -

:func:`save_trace` only emits the column when at least one request is
tagged, so single-tenant traces are byte-identical to the original
format, and :func:`load_trace` accepts both layouts.

Useful for persisting generated workloads, replaying externally
captured block traces, and writing regression tests against fixed
inputs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator, List, Sequence, Union

from repro.sim.queues import Request, RequestKind

_OP_CODES = {RequestKind.READ: "R", RequestKind.WRITE: "W"}
_OP_KINDS = {"R": RequestKind.READ, "W": RequestKind.WRITE}


#: Placeholder for an untagged request in the five-column format.
_NO_TENANT = "-"


def save_trace(path: Union[str, Path],
               requests: Sequence[Request]) -> None:
    """Write a request trace to ``path``.

    The tenant column is emitted only when at least one request is
    tagged, keeping single-tenant traces in the original four-column
    format.  A tenant name must survive whitespace splitting and must
    not collide with the ``-`` placeholder.
    """
    path = Path(path)
    tagged = any(request.tenant is not None for request in requests)
    for request in requests:
        tenant = request.tenant
        if tenant is None:
            continue
        if not tenant or tenant == _NO_TENANT or tenant.split() != [tenant]:
            raise ValueError(
                f"tenant {tenant!r} cannot be stored in a "
                "whitespace-separated trace"
            )
    with path.open("w", encoding="utf-8") as handle:
        header = "# time op lpn npages"
        handle.write(header + (" tenant\n" if tagged else "\n"))
        for request in requests:
            line = (f"{request.time:.9f} {_OP_CODES[request.kind]} "
                    f"{request.lpn} {request.npages}")
            if tagged:
                line += f" {request.tenant or _NO_TENANT}"
            handle.write(line + "\n")


def iter_trace(path: Union[str, Path]) -> Iterator[Request]:
    """Stream a request trace written by :func:`save_trace`.

    Yields one :class:`~repro.sim.queues.Request` per data line while
    holding only the current line in memory, so arbitrarily large
    traces replay in bounded space (feed the iterator straight to a
    :class:`~repro.scenarios.host.StreamingTraceReplayHost`).

    Accepts both the four-column format and the five-column
    multi-tenant one; the two may even be mixed line-by-line, in which
    case four-column lines load with ``tenant=None``.  Malformed lines
    raise :class:`ValueError` prefixed with ``path:lineno:``.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) not in (4, 5):
                raise ValueError(
                    f"{path}:{lineno}: expected 4 or 5 fields, "
                    f"got {len(fields)}"
                )
            time_str, op, lpn_str, npages_str = fields[:4]
            tenant = fields[4] if len(fields) == 5 else _NO_TENANT
            if op not in _OP_KINDS:
                raise ValueError(f"{path}:{lineno}: unknown op {op!r}")
            try:
                time = float(time_str)
                lpn = int(lpn_str)
                npages = int(npages_str)
            except ValueError as exc:
                raise ValueError(f"{path}:{lineno}: {exc}") from None
            yield Request(
                time=time,
                kind=_OP_KINDS[op],
                lpn=lpn,
                npages=npages,
                tenant=None if tenant == _NO_TENANT else tenant,
            )


def load_trace(path: Union[str, Path]) -> List[Request]:
    """Read a whole request trace into memory.

    Materializes :func:`iter_trace` — convenient for small traces and
    tests; prefer the iterator form for replaying large files.
    """
    return list(iter_trace(path))
