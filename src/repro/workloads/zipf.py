"""Zipfian address sampling.

Enterprise I/O is skewed: a small set of hot pages receives most of
the writes.  :class:`ZipfSampler` draws from a Zipf(s) distribution
over ``n`` items via a precomputed CDF (O(log n) per sample), with the
item ranks shuffled so the hot set is scattered across the address
space rather than clustered at low LPNs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np


class ZipfSampler:
    """Draw skewed indices from ``[0, n)``.

    Args:
        n: population size.
        s: skew exponent; 0 degenerates to uniform, ~1 is typical for
            storage workloads.
        rng: numpy generator (seeded by the caller for determinism).
        shuffle: permute ranks so hot items spread over the range.
    """

    def __init__(self, n: int, s: float = 1.0,
                 rng: Optional[np.random.Generator] = None,
                 shuffle: bool = True) -> None:
        if n <= 0:
            raise ValueError(f"n must be positive, got {n}")
        if s < 0:
            raise ValueError(f"s must be non-negative, got {s}")
        self.n = n
        self.s = s
        self.rng = rng or np.random.default_rng()
        weights = 1.0 / np.power(np.arange(1, n + 1, dtype=float), s)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        if shuffle:
            self._perm = self.rng.permutation(n)
        else:
            self._perm = np.arange(n)

    def sample(self) -> int:
        """Draw one index."""
        u = self.rng.random()
        rank = int(np.searchsorted(self._cdf, u, side="left"))
        return int(self._perm[min(rank, self.n - 1)])

    def sample_many(self, count: int) -> np.ndarray:
        """Draw ``count`` indices (vectorised)."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        u = self.rng.random(count)
        ranks = np.searchsorted(self._cdf, u, side="left")
        ranks = np.minimum(ranks, self.n - 1)
        return self._perm[ranks]
