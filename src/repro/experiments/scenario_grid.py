"""The ``scenario_grid`` experiment: Table-1 presets × FTLs.

Runs every requested scenario preset against every requested FTL
through the engine (one ``workload`` cell per pair, so ``--jobs``
fan-out and the result cache apply), and reports the Figure-8 metrics
plus a *mix audit*: the measured read fraction of the completed
traffic against the preset's declared read fraction.  The audit is the
end-to-end check that the generator's probability tables survive the
whole pipeline — phase schedule, per-stream seeding, closed-loop
delivery — unchanged.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments import registry
from repro.experiments.engine import (
    EngineOptions,
    derive_seed,
    run_cells,
    workload_cell,
)
from repro.experiments.runner import (
    ExperimentConfig,
    FTL_REGISTRY,
    PAPER_FTLS,
    RunResult,
    experiment_span,
)
from repro.metrics.report import render_table
from repro.scenarios.presets import PRESETS, TABLE1_PRESETS, make_preset

#: Measured operations per preset (across all streams and phases).
DEFAULT_OPS = 8000


def measured_read_fraction(result: RunResult) -> float:
    """Read share of the completed measured-phase requests."""
    reads = result.stats.completed_reads
    writes = result.stats.completed_writes
    total = reads + writes
    return float("nan") if total == 0 else reads / total


@dataclasses.dataclass
class ScenarioGridResult:
    """Per-(preset, FTL) measured runs plus the declared mixes."""

    span: int
    total_ops: int
    presets: List[str]
    ftls: List[str]
    declared: Dict[str, float]
    cells: Dict[str, Dict[str, RunResult]]

    def result(self, preset: str, ftl: str) -> RunResult:
        return self.cells[preset][ftl]

    def mix_error(self, preset: str, ftl: str) -> float:
        """|measured − declared| read fraction for one grid cell."""
        return abs(measured_read_fraction(self.result(preset, ftl))
                   - self.declared[preset])

    def to_dict(self) -> Dict[str, Any]:
        return {
            "span": self.span,
            "total_ops": self.total_ops,
            "presets": list(self.presets),
            "ftls": list(self.ftls),
            "declared": dict(self.declared),
            "cells": {preset: {ftl: result.to_dict()
                               for ftl, result in row.items()}
                      for preset, row in self.cells.items()},
        }


def run_scenario_grid(
    presets: Sequence[str] = TABLE1_PRESETS,
    ftls: Sequence[str] = PAPER_FTLS,
    total_ops: int = DEFAULT_OPS,
    utilization: float = 0.75,
    seed: int = 1,
    config: Optional[ExperimentConfig] = None,
    engine: Optional[EngineOptions] = None,
) -> ScenarioGridResult:
    """Run the preset × FTL grid and collect measured results.

    Every cell carries the preset's serializable scenario *spec*, so a
    pool worker regenerates the op sequence lazily from the seed
    instead of receiving it materialized, and serial, parallel and
    cached executions are byte-identical.
    """
    for preset in presets:
        if preset not in PRESETS:
            raise KeyError(f"unknown preset {preset!r}; choose from "
                           f"{sorted(PRESETS)}")
    config = config or ExperimentConfig()
    span = experiment_span(config, utilization=utilization, ftls=ftls)
    cells = []
    for preset in presets:
        scenario = make_preset(preset, span, total_ops,
                               seed=derive_seed(seed, preset))
        for ftl in ftls:
            cells.append(workload_cell(ftl, scenario=scenario,
                                       config=config,
                                       label=f"{preset}/{ftl}"))
    results = run_cells(cells, options=engine, label="scenario_grid")
    grid: Dict[str, Dict[str, RunResult]] = {}
    index = 0
    for preset in presets:
        grid[preset] = {}
        for ftl in ftls:
            grid[preset][ftl] = results[index]
            index += 1
    return ScenarioGridResult(
        span=span,
        total_ops=total_ops,
        presets=list(presets),
        ftls=list(ftls),
        declared={preset: PRESETS[preset].read_fraction
                  for preset in presets},
        cells=grid,
    )


def render_scenario_grid(result: ScenarioGridResult) -> str:
    """Text report: one row per (preset, FTL) grid cell."""
    rows: List[List[str]] = []
    for preset in result.presets:
        declared = result.declared[preset]
        for ftl in result.ftls:
            run = result.result(preset, ftl)
            measured = measured_read_fraction(run)
            rows.append([
                preset,
                ftl,
                f"{run.iops:.1f}",
                str(run.erases),
                f"{run.write_amplification:.3f}",
                f"{measured:.3f}",
                f"{declared:.3f}",
                f"{abs(measured - declared):.3f}",
            ])
    header = ["scenario", "FTL", "IOPS", "erases", "WA",
              "read frac", "declared", "|err|"]
    title = (f"scenario grid: {result.total_ops} ops, footprint "
             f"{result.span} pages")
    return title + "\n" + render_table(header, rows)


# -- CLI registration --------------------------------------------------


def _cli_arguments(parser) -> None:
    parser.add_argument("--presets",
                        default=",".join(TABLE1_PRESETS),
                        help="comma-separated preset names "
                             f"(default {','.join(TABLE1_PRESETS)})")
    parser.add_argument("--ftls", default=",".join(PAPER_FTLS),
                        help="comma-separated FTL names "
                             f"(default {','.join(PAPER_FTLS)})")
    parser.add_argument("--ops", type=int, default=DEFAULT_OPS,
                        help="measured ops per preset "
                             f"(default {DEFAULT_OPS})")
    parser.add_argument("--utilization", type=float, default=0.75,
                        help="footprint as a fraction of the smallest "
                             "logical space (default 0.75)")


def _cli_run(args, engine_options: EngineOptions) -> ScenarioGridResult:
    presets = [name for name in args.presets.split(",") if name]
    ftls = [name for name in args.ftls.split(",") if name]
    for preset in presets:
        if preset not in PRESETS:
            raise registry.CliError(
                f"unknown preset {preset!r}; choose from "
                f"{sorted(PRESETS)}")
    for ftl in ftls:
        if ftl not in FTL_REGISTRY:
            raise registry.CliError(
                f"unknown FTL {ftl!r}; choose from "
                f"{sorted(FTL_REGISTRY)}")
    return run_scenario_grid(presets=presets, ftls=ftls,
                             total_ops=args.ops,
                             utilization=args.utilization,
                             seed=args.seed, engine=engine_options)


registry.register(registry.Experiment(
    name="scenario_grid",
    help="scenario presets x FTLs with a read/write mix audit",
    add_arguments=_cli_arguments,
    run=_cli_run,
    render=render_scenario_grid,
    to_dict=ScenarioGridResult.to_dict,
    parallel=True,
))
