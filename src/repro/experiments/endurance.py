"""Endurance extension: P/E-cycle sweep of BER and usable lifetime.

Extends Figure 4(b) along the stress axis: sweep P/E cycles (at the
paper's 1-year retention), measure the median raw BER per program
order, push it through the ECC capability model, and report the
highest cycle count at which each scheme still meets an
uncorrectable-page-error target.  The expected outcome mirrors the
paper's claim: RPS orders track FPS exactly — same BER curve, same
endurance — while an unconstrained order forfeits cycles.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.experiments import registry
from repro.experiments.engine import Cell, EngineOptions, run_cells
from repro.metrics.report import render_table
from repro.reliability.ber import StressModel
from repro.reliability.ecc import EccConfig, page_failure_probability
from repro.reliability.vth import MlcVthModel

DEFAULT_SCHEMES: Sequence[str] = ("FPS", "RPSfull", "unconstrained")
DEFAULT_CYCLES: Sequence[int] = (0, 1000, 2000, 3000, 4000, 5000)


@dataclasses.dataclass
class EnduranceResult:
    """BER-vs-cycles curves and derived endurance per scheme."""

    cycles: List[int]
    median_ber: Dict[str, List[float]]  # scheme -> per-cycle median
    page_failure: Dict[str, List[float]]
    endurance: Dict[str, Optional[int]]  # last cycle meeting target
    target: float

    def to_dict(self) -> Dict[str, object]:
        """JSON projection of the curves and derived endurance."""
        return {
            "cycles": list(self.cycles),
            "median_ber": {s: list(v)
                           for s, v in self.median_ber.items()},
            "page_failure": {s: list(v)
                             for s, v in self.page_failure.items()},
            "endurance": dict(self.endurance),
            "target": self.target,
        }

    def render(self) -> str:
        """Render the BER-vs-cycles table with endurance column."""
        headers = ["P/E cycles"] + [str(c) for c in self.cycles] \
            + ["endurance"]
        rows = []
        for scheme, bers in self.median_ber.items():
            limit = self.endurance[scheme]
            rows.append(
                [scheme] + [f"{ber:.1e}" for ber in bers]
                + ["-" if limit is None else str(limit)]
            )
        return "\n".join([
            "median raw BER vs P/E cycles (1-year retention), and the "
            f"highest cycle count with page-failure < {self.target:g}:",
            render_table(headers, rows),
        ])


def run_endurance_sweep(
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    cycles: Sequence[int] = DEFAULT_CYCLES,
    retention_hours: float = 24 * 365,
    blocks: int = 12,
    wordlines: int = 24,
    target_page_failure: float = 1e-9,
    ecc: EccConfig = EccConfig(),
    model: Optional[MlcVthModel] = None,
    stress: Optional[StressModel] = None,
    seed: int = 0,
    engine: Optional[EngineOptions] = None,
) -> EnduranceResult:
    """Sweep P/E cycles and derive each scheme's usable endurance.

    The (scheme x cycles) grid runs as independent Monte-Carlo cells
    through the parallel engine; the cheap ECC projection and the
    endurance derivation happen in the parent afterwards.
    """
    cycles = list(cycles)
    cells = [
        Cell.make("reliability", label=f"{scheme}@{pe}",
                  scheme=scheme, blocks=blocks, wordlines=wordlines,
                  pe_cycles=pe, retention_hours=retention_hours,
                  seed=seed, model=model, stress=stress)
        for scheme in schemes for pe in cycles
    ]
    outcomes = run_cells(cells, options=engine, label="endurance")
    median_ber: Dict[str, List[float]] = {s: [] for s in schemes}
    page_failure: Dict[str, List[float]] = {s: [] for s in schemes}
    endurance: Dict[str, Optional[int]] = {}
    grid = iter(outcomes)
    for scheme in schemes:
        for _pe in cycles:
            ber = next(grid)["ber"]["median"]
            median_ber[scheme].append(ber)
            page_failure[scheme].append(
                page_failure_probability(ber, config=ecc)
            )
        passing = [pe for pe, pf in zip(cycles, page_failure[scheme])
                   if pf < target_page_failure]
        endurance[scheme] = max(passing) if passing else None
    return EnduranceResult(
        cycles=cycles,
        median_ber=median_ber,
        page_failure=page_failure,
        endurance=endurance,
        target=target_page_failure,
    )


# -- CLI registration --------------------------------------------------


def _cli_arguments(parser) -> None:
    parser.add_argument("--blocks", type=int, default=12)
    parser.add_argument("--wordlines", type=int, default=24)


def _cli_run(args, engine_options: EngineOptions) -> EnduranceResult:
    return run_endurance_sweep(blocks=args.blocks,
                               wordlines=args.wordlines,
                               seed=args.seed, engine=engine_options)


registry.register(registry.Experiment(
    name="endurance",
    help="BER vs P/E cycles through the ECC lens",
    add_arguments=_cli_arguments,
    run=_cli_run,
    render=EnduranceResult.render,
    to_dict=EnduranceResult.to_dict,
    parallel=True,
))
