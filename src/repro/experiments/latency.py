"""Read-latency analysis across the four FTLs.

Not a paper figure, but a direct consequence of the mechanisms the
paper models: a host read must wait for the chip's in-flight program,
so the page-type mix an FTL writes shapes the read tail — a 2000 us
MSB program can stall a read four times longer than an LSB program.
This experiment reports per-FTL read-latency percentiles under one
workload, using the same runs as the Figure 8 machinery.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments import registry
from repro.experiments.engine import (
    EngineOptions,
    run_cells,
    workload_cell,
)
from repro.experiments.runner import (
    ExperimentConfig,
    RunResult,
    experiment_span,
)
from repro.metrics.latency import summary_row
from repro.metrics.report import render_table
from repro.workloads.benchmarks import build_workload

DEFAULT_FTLS: Sequence[str] = ("pageFTL", "parityFTL", "rtfFTL",
                               "flexFTL")


def run_read_latency_comparison(
    workload: str = "NTRX",
    ftls: Sequence[str] = DEFAULT_FTLS,
    total_ops: int = 12000,
    utilization: float = 0.75,
    seed: int = 1,
    config: Optional[ExperimentConfig] = None,
    engine: Optional[EngineOptions] = None,
) -> Dict[str, RunResult]:
    """Run one workload on several FTLs; returns results by FTL name."""
    config = config or ExperimentConfig()
    span = experiment_span(config, utilization=utilization)
    streams = build_workload(workload, span, total_ops=total_ops,
                             seed=seed)
    cells = [workload_cell(ftl, streams, config, label=ftl)
             for ftl in ftls]
    results = run_cells(cells, options=engine, label="latency")
    return dict(zip(ftls, results))


def render_read_latency(results: Dict[str, RunResult]) -> str:
    """Render the per-FTL read-latency percentile table (ms)."""
    rows: List[List[str]] = []
    for ftl, result in results.items():
        samples = result.stats.read_latencies
        if not samples:
            rows.append([ftl, "-", "-", "-", "-", "-"])
            continue
        rows.append(summary_row(ftl, samples))
    return render_table(
        ["FTL", "mean [ms]", "p50", "p95", "p99", "max"], rows)


# -- CLI registration --------------------------------------------------


def _cli_arguments(parser) -> None:
    parser.add_argument("--workload", default="NTRX")
    parser.add_argument("--ops", type=int, default=8000)


def _cli_run(args, engine_options: EngineOptions) -> Dict[str, object]:
    results = run_read_latency_comparison(
        workload=args.workload, total_ops=args.ops, seed=args.seed,
        engine=engine_options)
    return {"workload": args.workload, "results": results}


def _cli_render(payload: Dict[str, object]) -> str:
    return (f"read latency percentiles on {payload['workload']} [ms]:\n"
            + render_read_latency(payload["results"]))


registry.register(registry.Experiment(
    name="latency",
    help="read-latency percentiles per FTL",
    add_arguments=_cli_arguments,
    run=_cli_run,
    render=_cli_render,
    to_dict=lambda payload: {
        "workload": payload["workload"],
        "results": {ftl: result.to_dict()
                    for ftl, result in payload["results"].items()},
    },
    parallel=True,
))
