"""Read-latency analysis across the four FTLs.

Not a paper figure, but a direct consequence of the mechanisms the
paper models: a host read must wait for the chip's in-flight program,
so the page-type mix an FTL writes shapes the read tail — a 2000 us
MSB program can stall a read four times longer than an LSB program.
This experiment reports per-FTL read-latency percentiles under one
workload, using the same runs as the Figure 8 machinery.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.experiments.runner import (
    ExperimentConfig,
    RunResult,
    experiment_span,
    run_workload,
)
from repro.metrics.latency import summary_row
from repro.metrics.report import render_table
from repro.workloads.benchmarks import build_workload

DEFAULT_FTLS: Sequence[str] = ("pageFTL", "parityFTL", "rtfFTL",
                               "flexFTL")


def run_read_latency_comparison(
    workload: str = "NTRX",
    ftls: Sequence[str] = DEFAULT_FTLS,
    total_ops: int = 12000,
    utilization: float = 0.75,
    seed: int = 1,
    config: Optional[ExperimentConfig] = None,
) -> Dict[str, RunResult]:
    """Run one workload on several FTLs; returns results by FTL name."""
    config = config or ExperimentConfig()
    span = experiment_span(config, utilization=utilization)
    streams = build_workload(workload, span, total_ops=total_ops,
                             seed=seed)
    return {ftl: run_workload(ftl, streams, config) for ftl in ftls}


def render_read_latency(results: Dict[str, RunResult]) -> str:
    """Render the per-FTL read-latency percentile table (ms)."""
    rows: List[List[str]] = []
    for ftl, result in results.items():
        samples = result.stats.read_latencies
        if not samples:
            rows.append([ftl, "-", "-", "-", "-", "-"])
            continue
        rows.append(summary_row(ftl, samples))
    return render_table(
        ["FTL", "mean [ms]", "p50", "p95", "p99", "max"], rows)
