"""Parallel experiment execution engine.

Every grid-shaped experiment in the repo (Figure 8, the ablations, the
scaling study, parameter sweeps, read-latency comparisons, the
endurance sweep, the TLC system comparison) is a cartesian product of
independent simulation runs.  This module decomposes such a grid into
:class:`Cell` jobs — each a single, fully-specified, picklable unit of
work — and executes them either serially or across a process pool,
reassembling results in submission order so parallel output is
byte-identical to serial output.

Three properties make that safe:

* **Cells are declarative.**  A cell carries everything its run needs
  (FTL name, workload scenario spec, configuration, seed) as plain
  picklable data; nothing depends on shared mutable state or on which
  worker executes it.
* **Results round-trip through ``to_dict``.**  Both the serial and the
  parallel path return ``decode(encode(result))``, so a cache hit, a
  pool result and an inline run are indistinguishable.
* **Seeding is explicit.**  Workload scenarios embed their generation
  seed; :func:`derive_seed` gives experiments a stable way to mint
  distinct per-cell seeds from a base seed and grid coordinates.

Results are memoised in a content-addressed cache (default
``~/.cache/repro-rps/``, override with ``$REPRO_CACHE_DIR``) keyed by a
hash of the full cell specification — geometry, timing, FTL, policy,
workload scenario and seed — plus the package version, so re-rendering a
report after a code-free change is instant.
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import enum
import hashlib
import json
import os
import sys
import time
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro import __version__
from repro.execpolicy import Deadline, DeadlineExceeded
from repro.experiments.runner import (
    ExperimentConfig,
    RunResult,
    run_workload,
)
from repro.scenarios.base import Scenario, StreamScenario

#: Bump when the serialized result layout changes; invalidates the
#: on-disk cache.
SCHEMA_VERSION = 1

#: Default on-disk cache location (see :class:`ResultCache`).
DEFAULT_CACHE_DIR = Path("~/.cache/repro-rps")


# ---------------------------------------------------------------------------
# deterministic seeding


def derive_seed(base_seed: int, *coords: object) -> int:
    """A stable per-cell seed from a base seed and grid coordinates.

    Unlike ``hash()``, this is stable across processes and Python
    versions, so a cell executed on a pool worker sees exactly the
    seed it would have seen serially.
    """
    text = json.dumps([base_seed, [str(c) for c in coords]],
                      separators=(",", ":"))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


# ---------------------------------------------------------------------------
# canonical cell specification


#: Per-dataclass field-name cache; ``dataclasses.fields()`` per
#: instance dominates key hashing on large workload streams.
_FIELD_NAMES: Dict[type, Tuple[str, ...]] = {}


def _canonical(value: Any) -> Any:
    """Reduce a cell parameter to JSON-safe data for hashing."""
    # Exact-type scalar check first: streams are hundreds of
    # thousands of small dataclasses whose leaves all land here.
    cls = value.__class__
    if value is None or cls is str or cls is int or cls is float \
            or cls is bool:
        return value
    names = _FIELD_NAMES.get(cls)
    if names is None and dataclasses.is_dataclass(value) \
            and not isinstance(value, type):
        names = tuple(f.name for f in dataclasses.fields(value))
        _FIELD_NAMES[cls] = names
    if names is not None:
        out: Dict[str, Any] = {"__type__": cls.__name__}
        for name in names:
            out[name] = _canonical(getattr(value, name))
        return out
    if isinstance(value, enum.Enum):
        return f"{cls.__name__}.{value.name}"
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, Mapping):
        return {str(k): _canonical(v) for k, v in value.items()}
    if isinstance(value, (str, int, float, bool)):  # scalar subclasses
        return value
    if hasattr(value, "tolist"):  # numpy scalars / arrays
        return _canonical(value.tolist())
    raise TypeError(
        f"cell parameter of type {type(value).__name__} cannot be "
        f"canonicalized; pass plain data, dataclasses or enums"
    )


@dataclasses.dataclass(frozen=True)
class Cell:
    """One independent unit of experiment work.

    Attributes:
        kind: a :data:`CELL_EXECUTORS` key naming how to run it.
        params: the executor's keyword arguments, sorted by name.
        label: human-readable tag for progress output (not hashed).
    """

    kind: str
    params: Tuple[Tuple[str, Any], ...]
    label: str = ""

    @classmethod
    def make(cls, kind: str, label: str = "", **params: Any) -> "Cell":
        """Build a cell, validating the executor kind eagerly."""
        if kind not in CELL_EXECUTORS:
            raise KeyError(
                f"unknown cell kind {kind!r}; choose from "
                f"{sorted(CELL_EXECUTORS)}"
            )
        return cls(kind=kind, label=label,
                   params=tuple(sorted(params.items())))

    @property
    def kwargs(self) -> Dict[str, Any]:
        """The executor's keyword arguments as a dict."""
        return dict(self.params)

    def key(self) -> str:
        """Content hash of the full cell specification."""
        spec = {
            "schema": SCHEMA_VERSION,
            "version": __version__,
            "kind": self.kind,
            "params": _canonical(self.kwargs),
        }
        text = json.dumps(spec, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(text.encode("utf-8")).hexdigest()


# ---------------------------------------------------------------------------
# cell executors

#: Runs one cell: ``run(**params) -> result``.
CellRunner = Callable[..., Any]


@dataclasses.dataclass(frozen=True)
class CellExecutor:
    """How to run one kind of cell and (de)serialize its result."""

    run: CellRunner
    encode: Callable[[Any], Dict[str, Any]]
    decode: Callable[[Dict[str, Any]], Any]


CELL_EXECUTORS: Dict[str, CellExecutor] = {}


def register_executor(
    kind: str,
    run: CellRunner,
    encode: Callable[[Any], Dict[str, Any]] = lambda result: result,
    decode: Callable[[Dict[str, Any]], Any] = lambda data: data,
) -> None:
    """Register a cell kind (module-level, so pool workers see it)."""
    CELL_EXECUTORS[kind] = CellExecutor(run=run, encode=encode,
                                        decode=decode)


def _run_workload_cell(**params: Any) -> RunResult:
    return run_workload(**params)


def _run_reliability_cell(
    *,
    scheme: str,
    blocks: int,
    wordlines: int,
    pe_cycles: int,
    retention_hours: float,
    seed: int,
    model: Any = None,
    stress: Any = None,
) -> Dict[str, Any]:
    from repro.reliability.ber import OperatingCondition
    from repro.reliability.montecarlo import run_reliability_experiment

    condition = OperatingCondition(pe_cycles=pe_cycles,
                                   retention_hours=retention_hours)
    result = run_reliability_experiment(
        scheme, blocks=blocks, wordlines=wordlines, condition=condition,
        model=model, stress=stress, seed=seed,
    )
    return {
        "scheme": scheme,
        "pe_cycles": pe_cycles,
        "ber": dataclasses.asdict(result.ber),
        "wpi": dataclasses.asdict(result.wpi),
    }


def _run_tlc_cell(**params: Any) -> Any:
    from repro.experiments.tlc_system import run_tlc_workload

    return run_tlc_workload(**params)


def _run_qos_cell(**params: Any) -> Any:
    from repro.qos.runner import run_qos_workload

    return run_qos_workload(**params)


def _run_fault_cell(**params: Any) -> RunResult:
    from repro.faults.runner import run_fault_workload

    return run_fault_workload(**params)


def _run_physics_cell(**params: Any) -> Any:
    from repro.reliability.runner import run_physics_workload

    return run_physics_workload(**params)


def _decode_physics(data: Dict[str, Any]) -> Any:
    from repro.reliability.runner import PhysicsRunResult

    return PhysicsRunResult.from_dict(data)


def _encode_qos(result: Any) -> Dict[str, Any]:
    return result.to_dict()


def _decode_qos(data: Dict[str, Any]) -> Any:
    from repro.qos.runner import QosRunResult

    return QosRunResult.from_dict(data)


def _encode_tlc(result: Any) -> Dict[str, Any]:
    return result.to_dict()


def _decode_tlc(data: Dict[str, Any]) -> Any:
    from repro.experiments.tlc_system import TlcRunResult

    return TlcRunResult.from_dict(data)


register_executor("workload", _run_workload_cell,
                  encode=lambda result: result.to_dict(),
                  decode=RunResult.from_dict)
register_executor("reliability", _run_reliability_cell)
register_executor("tlc_workload", _run_tlc_cell,
                  encode=_encode_tlc, decode=_decode_tlc)
register_executor("qos_workload", _run_qos_cell,
                  encode=_encode_qos, decode=_decode_qos)
register_executor("fault_workload", _run_fault_cell,
                  encode=lambda result: result.to_dict(),
                  decode=RunResult.from_dict)
register_executor("physics_workload", _run_physics_cell,
                  encode=lambda result: result.to_dict(),
                  decode=_decode_physics)


def workload_cell(
    ftl_name: str,
    streams: Optional[Sequence[Sequence[Any]]] = None,
    config: Optional[ExperimentConfig] = None,
    label: str = "",
    scenario: Any = None,
    **extra: Any,
) -> Cell:
    """Convenience constructor for the common ``run_workload`` cell.

    Takes exactly one workload source: legacy pre-built ``streams``
    (wrapped into a :class:`~repro.scenarios.base.StreamScenario`) or
    a ``scenario`` (a :class:`~repro.scenarios.base.Scenario` or its
    spec dict).  Either way the cell carries a JSON-safe scenario
    *spec*, so pool workers and the result cache see plain data and a
    lazy generator scenario is regenerated inside the worker instead
    of being shipped materialized.
    """
    if (streams is None) == (scenario is None):
        raise ValueError(
            "workload_cell() takes exactly one of streams (legacy) "
            "or scenario")
    if streams is not None:
        spec = StreamScenario.from_streams(streams).spec()
    elif isinstance(scenario, Scenario):
        spec = scenario.spec()
    else:
        spec = dict(scenario)
    return Cell.make("workload", label=label or ftl_name,
                     ftl_name=ftl_name, scenario=spec,
                     config=config or ExperimentConfig(), **extra)


# ---------------------------------------------------------------------------
# result cache


class ResultCache:
    """Content-addressed on-disk cache of encoded cell results.

    Layout: ``<root>/<key[:2]>/<key>.json``, each file holding
    ``{"schema": ..., "version": ..., "kind": ...,
    "result": <encoded result>}``.  Corrupt or unreadable entries
    count as misses, as do entries written by a different schema epoch
    *or package version* — the key already hashes both, but validating
    the payload too means a stale file can never serve an old-format
    result even if the key construction changes.
    """

    def __init__(self, root: Optional[Path] = None) -> None:
        if root is None:
            root = Path(os.environ.get("REPRO_CACHE_DIR")
                        or DEFAULT_CACHE_DIR)
        self.root = Path(root).expanduser()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The encoded result for ``key``, or None on a miss."""
        path = self._path(key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if payload.get("schema") != SCHEMA_VERSION \
                or payload.get("version") != __version__:
            self.misses += 1
            return None
        self.hits += 1
        return payload["result"]

    def put(self, key: str, kind: str, encoded: Dict[str, Any]) -> None:
        """Persist an encoded result (atomic within one filesystem)."""
        path = self._path(key)
        payload = {"schema": SCHEMA_VERSION, "version": __version__,
                   "kind": kind, "result": encoded}
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.with_suffix(f".tmp.{os.getpid()}")
            tmp.write_text(json.dumps(payload), encoding="utf-8")
            os.replace(tmp, path)
            self.stores += 1
        except OSError:
            # A read-only or full cache must never fail the experiment.
            pass


# ---------------------------------------------------------------------------
# execution


class CellTimeoutError(DeadlineExceeded):
    """A pooled cell overran the batch deadline (likely hung).

    Carries the labels of the cells still unfinished when the
    deadline fired, so the report names the stuck work.
    """

    def __init__(self, message: str,
                 unfinished: Sequence[str] = ()) -> None:
        super().__init__(message)
        self.unfinished = list(unfinished)


@dataclasses.dataclass(frozen=True)
class EngineOptions:
    """How to execute a batch of cells.

    Attributes:
        jobs: worker processes (1 = run inline, no pool).
        cache: result cache, or None to disable caching.
        progress: emit cells-done/ETA lines to stderr.
        cell_timeout: per-cell wall-clock budget in seconds for
            *pooled* execution (default None = wait forever, the
            historical behaviour).  The batch deadline is conservative
            — ``cell_timeout × ceil(pending / workers)``, i.e. as if
            every cell on a worker ran to its full budget — so a slow
            grid never false-trips, but a genuinely hung cell surfaces
            a :class:`CellTimeoutError` instead of blocking the run
            forever.  Inline (``jobs=1``) execution cannot be
            preempted and ignores it.
    """

    jobs: int = 1
    cache: Optional[ResultCache] = None
    progress: bool = False
    cell_timeout: Optional[float] = None


class _Progress:
    """Cells-done / ETA reporter on stderr (stdout stays report-only)."""

    def __init__(self, label: str, total: int, enabled: bool) -> None:
        self.label = label or "cells"
        self.total = total
        self.done = 0
        self.live_done = 0
        self.enabled = enabled and total > 0
        self.start = time.monotonic()

    def advance(self, cached: bool = False) -> None:
        self.done += 1
        if not cached:
            self.live_done += 1
        self.emit()

    def emit(self) -> None:
        if not self.enabled:
            return
        elapsed = time.monotonic() - self.start
        remaining = self.total - self.done
        if self.live_done and remaining:
            eta = f"{elapsed / self.live_done * remaining:.0f}s"
        elif remaining:
            eta = "?"
        else:
            eta = "0s"
        sys.stderr.write(
            f"\r[{self.label}] {self.done}/{self.total} cells · "
            f"elapsed {elapsed:.0f}s · eta {eta} "
        )
        sys.stderr.flush()

    def close(self) -> None:
        if self.enabled:
            sys.stderr.write("\n")
            sys.stderr.flush()


def _execute_cell(cell: Cell) -> Dict[str, Any]:
    """Run one cell and return its *encoded* result (pool entry point).

    The JSON round trip normalizes the payload (tuples become lists,
    non-string keys fail fast) so inline, pooled and cached results are
    exactly the same shape.
    """
    executor = CELL_EXECUTORS[cell.kind]
    encoded = executor.encode(executor.run(**cell.kwargs))
    return json.loads(json.dumps(encoded))


def run_cells(
    cells: Sequence[Cell],
    options: Optional[EngineOptions] = None,
    label: str = "",
) -> List[Any]:
    """Execute cells and return decoded results in submission order.

    Serial (``jobs=1``) and parallel execution produce identical
    results: cells are independent, deterministically seeded, and both
    paths round-trip results through the executor's encode/decode
    pair.  With a cache, completed cells are memoised by content hash
    and replayed instantly on re-runs.
    """
    options = options or EngineOptions()
    results: List[Any] = [None] * len(cells)
    keys: List[Optional[str]] = [None] * len(cells)
    pending: List[int] = []
    progress = _Progress(label, total=len(cells),
                         enabled=options.progress)
    for index, cell in enumerate(cells):
        if options.cache is not None:
            keys[index] = cell.key()
            encoded = options.cache.get(keys[index])
            if encoded is not None:
                results[index] = CELL_EXECUTORS[cell.kind].decode(encoded)
                progress.advance(cached=True)
                continue
        pending.append(index)

    def finish(index: int, encoded: Dict[str, Any]) -> None:
        cell = cells[index]
        if options.cache is not None and keys[index] is not None:
            options.cache.put(keys[index], cell.kind, encoded)
        results[index] = CELL_EXECUTORS[cell.kind].decode(encoded)
        progress.advance()

    jobs = max(1, options.jobs)
    if jobs == 1 or len(pending) <= 1:
        for index in pending:
            finish(index, _execute_cell(cells[index]))
    else:
        workers = min(jobs, len(pending))
        # Conservative batch deadline: as if every cell on a worker
        # ran to its full budget.  Never false-trips on a slow grid;
        # still bounds a hung cell.
        budget = None
        if options.cell_timeout is not None:
            rounds = -(-len(pending) // workers)  # ceil division
            budget = options.cell_timeout * rounds
        deadline = Deadline(budget)
        pool = concurrent.futures.ProcessPoolExecutor(
            max_workers=workers)
        try:
            futures = {pool.submit(_execute_cell, cells[index]): index
                       for index in pending}
            for future in concurrent.futures.as_completed(
                    futures, timeout=deadline.remaining()):
                finish(futures[future], future.result())
        except concurrent.futures.TimeoutError:
            unfinished = [cells[index].label or cells[index].kind
                          for future, index in futures.items()
                          if not future.done()]
            # The workers are wedged; a plain shutdown would block on
            # them forever, so kill the pool processes first.
            for proc in getattr(pool, "_processes", {}).values():
                proc.terminate()
            pool.shutdown(wait=True, cancel_futures=True)
            progress.close()
            raise CellTimeoutError(
                f"{len(unfinished)} of {len(pending)} cells still "
                f"unfinished after the {budget:.1f}s batch deadline "
                f"(cell_timeout={options.cell_timeout}s x {rounds} "
                f"rounds); likely hung: {unfinished[:8]}",
                unfinished=unfinished) from None
        else:
            pool.shutdown(wait=True)
    progress.close()
    return results
