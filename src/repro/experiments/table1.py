"""Table 1: I/O characteristics of the five benchmark workloads.

Regenerates the published table from the workload generators and, as a
cross-check, characterises actually-generated streams: the empirical
read fraction and the issue intensity implied by the think times.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

from repro.metrics.report import render_table
from repro.sim.host import StreamOp
from repro.sim.queues import RequestKind
from repro.workloads.benchmarks import PROFILES, build_workload


@dataclasses.dataclass
class WorkloadCharacteristics:
    """Empirical characteristics of one generated workload."""

    name: str
    total_ops: int
    read_fraction: float
    mean_request_pages: float
    mean_think: float
    median_think: float
    intensiveness: str

    @property
    def read_write_ratio(self) -> str:
        """``R:W`` label, as Table 1 prints it."""
        from repro.workloads.benchmarks import format_rw_ratio
        return format_rw_ratio(self.read_fraction)


def classify_intensity(mean_think: float,
                       median_think: float = 0.0) -> str:
    """Map think-time structure onto Table 1's intensity classes.

    A near-zero *mean* means back-to-back issue throughout: very high.
    A zero *median* with a larger mean means bursts separated by idle
    gaps: high.  Everything else (steady long think times): moderate.
    """
    if mean_think < 1e-4:
        return "very high"
    if median_think < 1e-4 or mean_think < 2e-3:
        return "high"
    return "moderate"


def characterize(name: str, streams: Sequence[Sequence[StreamOp]]
                 ) -> WorkloadCharacteristics:
    """Measure a generated workload's empirical characteristics."""
    ops: List[StreamOp] = [op for stream in streams for op in stream]
    if not ops:
        raise ValueError(f"workload {name!r} generated no operations")
    reads = sum(1 for op in ops if op.kind is RequestKind.READ)
    thinks = sorted(op.think_after for op in ops)
    mean_think = sum(thinks) / len(thinks)
    median_think = thinks[len(thinks) // 2]
    mean_pages = sum(op.npages for op in ops) / len(ops)
    return WorkloadCharacteristics(
        name=name,
        total_ops=len(ops),
        read_fraction=reads / len(ops),
        mean_request_pages=mean_pages,
        mean_think=mean_think,
        median_think=median_think,
        intensiveness=classify_intensity(mean_think, median_think),
    )


def run_table1(logical_pages: int = 16384, total_ops: int = 20000,
               seed: int = 1,
               workloads: Optional[Sequence[str]] = None
               ) -> Dict[str, WorkloadCharacteristics]:
    """Generate and characterise all five workloads."""
    workloads = list(workloads or PROFILES)
    return {
        name: characterize(
            name, build_workload(name, logical_pages, total_ops, seed)
        )
        for name in workloads
    }


def render_table1(characteristics: Dict[str, WorkloadCharacteristics]
                  ) -> str:
    """Render the Table 1 reproduction (configured + measured rows)."""
    names = list(characteristics)
    headers = [""] + names
    configured_ratio = ["Read:Write (configured)"] + [
        PROFILES[n].read_write_ratio if n in PROFILES else "-"
        for n in names
    ]
    measured_ratio = ["Read:Write (measured)"] + [
        characteristics[n].read_write_ratio for n in names
    ]
    intensity = ["I/O intensiveness"] + [
        characteristics[n].intensiveness for n in names
    ]
    think = ["mean think [ms]"] + [
        f"{characteristics[n].mean_think * 1e3:.2f}" for n in names
    ]
    return render_table(headers,
                        [configured_ratio, measured_ratio, intensity,
                         think])


# -- CLI registration --------------------------------------------------

from repro.experiments import registry  # noqa: E402
from repro.experiments.engine import EngineOptions  # noqa: E402


def _cli_arguments(parser) -> None:
    parser.add_argument("--ops", type=int, default=20000)


def _cli_run(args, engine_options: EngineOptions
             ) -> Dict[str, WorkloadCharacteristics]:
    return run_table1(total_ops=args.ops, seed=args.seed)


def _cli_render(characteristics: Dict[str, WorkloadCharacteristics]
                ) -> str:
    return ("Table 1: I/O characteristics of the five workloads\n"
            + render_table1(characteristics))


registry.register(registry.Experiment(
    name="table1",
    help="workload characteristics",
    add_arguments=_cli_arguments,
    run=_cli_run,
    render=_cli_render,
    to_dict=lambda characteristics: {
        name: dataclasses.asdict(wc)
        for name, wc in characteristics.items()
    },
))
