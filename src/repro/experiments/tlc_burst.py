"""TLC burst-service experiment: RPS's value grows with bit density.

On 2-bit MLC the paper's burst mechanism serves writes at tLSB=500 us
instead of the FPS average of (500+2000)/2 = 1250 us — a 2.5x peak
gain.  On TLC the asymmetry steepens (500/2000/5500 us), so a
three-phase RPS-TLC order that front-loads all LSB pages wins ~5.3x
at the peak.  This experiment drives one enforcing TLC chip through
both orders, measuring burst service times and the full-block
completion time directly.

Setup: a burst of ``burst_pages`` host pages arrives at an idle chip;
the FPS-TLC FTL must follow the staggered order (mixed page types),
while the RPS-TLC FTL allocates LSB pages first and defers the
CSB/MSB phases to idle time (exactly flexFTL's 2PO idea, one level
deeper).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence

from repro.metrics.report import render_table
from repro.nand.tlc import (
    TLC_PROGRAM_TIMES,
    TlcScheme,
    fps_tlc_order,
    rps_tlc_full_order,
    tlc_split_index,
)
from repro.nand.tlc_device import TlcChip


@dataclasses.dataclass
class BurstOutcome:
    """Timing of one burst served by one programming discipline."""

    scheme: str
    burst_pages: int
    burst_service_time: float  # time to program the burst's pages
    block_completion_time: float  # time until the block is fully used
    page_type_mix: Dict[str, int]

    @property
    def burst_bandwidth_pages_per_s(self) -> float:
        """Pages served per second during the burst."""
        return self.burst_pages / self.burst_service_time


def serve_burst(order: Sequence[int], scheme: TlcScheme,
                wordlines: int, burst_pages: int,
                label: str) -> BurstOutcome:
    """Program a block in ``order`` on an enforcing TLC chip.

    The first ``burst_pages`` programs are the burst; the remainder is
    the deferred catch-up work.  Legality is enforced by the device.
    """
    if burst_pages > 3 * wordlines:
        raise ValueError("burst larger than the block")
    chip = TlcChip(0, blocks=1, wordlines_per_block=wordlines,
                   scheme=scheme)
    elapsed = 0.0
    burst_time = 0.0
    mix: Dict[str, int] = {}
    for position, index in enumerate(order):
        wordline, ptype = tlc_split_index(index)
        elapsed += chip.program(0, wordline, ptype)
        if position < burst_pages:
            burst_time = elapsed
            mix[ptype.name] = mix.get(ptype.name, 0) + 1
    return BurstOutcome(
        scheme=label,
        burst_pages=burst_pages,
        burst_service_time=burst_time,
        block_completion_time=elapsed,
        page_type_mix=mix,
    )


def run_tlc_burst_experiment(wordlines: int = 64,
                             burst_pages: int = 48
                             ) -> List[BurstOutcome]:
    """Compare FPS-TLC and three-phase RPS-TLC burst service."""
    outcomes = [
        serve_burst(fps_tlc_order(wordlines), TlcScheme.FPS,
                    wordlines, burst_pages, "FPS-TLC (staggered)"),
        serve_burst(rps_tlc_full_order(wordlines), TlcScheme.RPS,
                    wordlines, burst_pages, "RPS-TLC (three-phase)"),
    ]
    return outcomes


def render_tlc_burst(outcomes: Sequence[BurstOutcome]) -> str:
    """Render the comparison plus the MLC-vs-TLC leverage statement."""
    rows = []
    for outcome in outcomes:
        mix = "/".join(f"{k}:{v}" for k, v in
                       sorted(outcome.page_type_mix.items()))
        rows.append([
            outcome.scheme,
            f"{outcome.burst_service_time * 1e3:.2f}",
            f"{outcome.burst_bandwidth_pages_per_s:.0f}",
            f"{outcome.block_completion_time * 1e3:.2f}",
            mix,
        ])
    table = render_table(
        ["discipline", "burst time [ms]", "burst pages/s",
         "block total [ms]", "burst page mix"], rows)
    fps, rps = outcomes[0], outcomes[1]
    speedup = fps.burst_service_time / rps.burst_service_time
    mlc_peak = (500e-6 + 2000e-6) / 2 / 500e-6
    tlc_peak = (sum(TLC_PROGRAM_TIMES.values()) / 3
                / TLC_PROGRAM_TIMES[list(TLC_PROGRAM_TIMES)[0]])
    return "\n".join([
        table,
        "",
        f"measured burst speedup RPS-TLC / FPS-TLC: {speedup:.2f}x",
        f"(theoretical peak: MLC {mlc_peak:.2f}x, TLC {tlc_peak:.2f}x "
        f"— the paper's mechanism gains leverage with bit density)",
    ])
