"""System-level TLC comparison: three-phase flexFTL vs FPS baseline.

Runs the TLC FTLs of :mod:`repro.core.tlc_ftl` through the same
discrete-event controller, write buffer and closed-loop hosts as the
MLC experiments, on a Varmail-style bursty workload.  Expected shape:
the three-phase FTL absorbs bursts at LSB speed, so its IOPS and peak
write bandwidth beat the staggered FPS baseline by more than the MLC
flexFTL-vs-pageFTL gap (the asymmetry is steeper).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

from repro.core.tlc_ftl import TlcFlexFtl, TlcPageFtl
from repro.ftl.base import FtlConfig
from repro.metrics.report import render_table
from repro.nand.tlc import TlcScheme
from repro.nand.tlc_array import TlcGeometry, TlcNandArray, TlcTiming
from repro.sim.controller import StorageController
from repro.sim.host import ClosedLoopHost
from repro.sim.kernel import Simulator
from repro.sim.queues import WriteBuffer
from repro.sim.stats import SimStats
from repro.workloads.benchmarks import build_workload
from repro.workloads.synthetic import sequential_fill

#: TLC FTL name -> (class, device scheme).
TLC_REGISTRY = {
    "tlc-pageFTL": (TlcPageFtl, TlcScheme.FPS),
    "tlc-flexFTL": (TlcFlexFtl, TlcScheme.RPS),
}

DEFAULT_TLC_GEOMETRY = TlcGeometry(
    channels=4, chips_per_channel=2, blocks_per_chip=64,
    pages_per_block=48, page_size=4096,
)


@dataclasses.dataclass
class TlcRunResult:
    """Measured-phase outcome of one TLC run."""

    ftl_name: str
    stats: SimStats
    counters: Dict[str, int]
    logical_pages: int

    @property
    def iops(self) -> float:
        """Completed host requests per second."""
        return self.stats.iops()

    @property
    def erases(self) -> int:
        """Block erasures during the measured phase."""
        return self.counters["erases"]


def build_tlc_system(ftl_name: str,
                     geometry: Optional[TlcGeometry] = None,
                     buffer_pages: int = 256,
                     ftl_config: Optional[FtlConfig] = None
                     ) -> Tuple[Simulator, TlcNandArray, WriteBuffer,
                                object, StorageController]:
    """Assemble a complete TLC storage system."""
    if ftl_name not in TLC_REGISTRY:
        raise KeyError(f"unknown TLC FTL {ftl_name!r}; choose from "
                       f"{sorted(TLC_REGISTRY)}")
    ftl_cls, scheme = TLC_REGISTRY[ftl_name]
    sim = Simulator()
    array = TlcNandArray(geometry or DEFAULT_TLC_GEOMETRY,
                         TlcTiming(), scheme=scheme)
    buffer = WriteBuffer(buffer_pages)
    ftl = ftl_cls(array, buffer, ftl_config or FtlConfig())
    stats = SimStats(page_size=array.geometry.page_size)
    controller = StorageController(sim, array, ftl, buffer, stats)
    return sim, array, buffer, ftl, controller


def run_tlc_workload(ftl_name: str, workload: str = "Varmail",
                     total_ops: int = 8000, utilization: float = 0.7,
                     seed: int = 1,
                     geometry: Optional[TlcGeometry] = None
                     ) -> TlcRunResult:
    """Precondition and run one workload on one TLC FTL."""
    sim, array, buffer, ftl, controller = build_tlc_system(
        ftl_name, geometry=geometry)
    span = max(1, int(ftl.logical_pages * utilization))

    warmup = ClosedLoopHost(sim, controller, [sequential_fill(span)])
    warmup.start()
    sim.run()
    if isinstance(ftl, TlcFlexFtl):
        ftl.quota = ftl.quota_cap  # fresh start, as in the MLC runner

    baseline = dict(ftl.counters())
    stats = SimStats(page_size=array.geometry.page_size)
    controller.stats = stats
    streams = build_workload(workload, span, total_ops=total_ops,
                             seed=seed)
    host = ClosedLoopHost(sim, controller, streams)
    host.start()
    sim.run()

    final = ftl.counters()
    deltas = {key: final[key] - baseline.get(key, 0) for key in final}
    return TlcRunResult(ftl_name=ftl_name, stats=stats,
                        counters=deltas,
                        logical_pages=ftl.logical_pages)


def run_tlc_system_comparison(workload: str = "Varmail",
                              total_ops: int = 8000, seed: int = 1
                              ) -> Dict[str, TlcRunResult]:
    """Run both TLC FTLs on the same workload."""
    return {name: run_tlc_workload(name, workload=workload,
                                   total_ops=total_ops, seed=seed)
            for name in TLC_REGISTRY}


def render_tlc_comparison(results: Dict[str, TlcRunResult]) -> str:
    """Render the TLC system comparison table."""
    rows = []
    for name, result in results.items():
        bandwidth = result.stats.write_bandwidth
        samples = bandwidth.samples_mbps()
        rows.append([
            name, f"{result.iops:.0f}", result.erases,
            f"{max(samples) if samples else 0:.1f}",
            result.counters.get("quota", "-"),
        ])
    return render_table(
        ["TLC FTL", "IOPS", "erases", "peak BW [MB/s]", "final quota"],
        rows)
