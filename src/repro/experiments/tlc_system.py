"""System-level TLC comparison: three-phase flexFTL vs FPS baseline.

Runs the TLC FTLs of :mod:`repro.core.tlc_ftl` through the same
discrete-event controller, write buffer and closed-loop hosts as the
MLC experiments, on a Varmail-style bursty workload.  Expected shape:
the three-phase FTL absorbs bursts at LSB speed, so its IOPS and peak
write bandwidth beat the staggered FPS baseline by more than the MLC
flexFTL-vs-pageFTL gap (the asymmetry is steeper).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, Optional, Tuple

from repro.core.tlc_ftl import TlcFlexFtl, TlcPageFtl
from repro.experiments import registry
from repro.experiments.engine import Cell, EngineOptions, run_cells
from repro.ftl.base import FtlConfig
from repro.metrics.report import render_table
from repro.nand.tlc import TlcScheme
from repro.nand.tlc_array import TlcGeometry, TlcNandArray, TlcTiming
from repro.sim.controller import StorageController
from repro.sim.host import ClosedLoopHost
from repro.sim.kernel import Simulator
from repro.sim.queues import WriteBuffer
from repro.sim.stats import SimStats
from repro.workloads.benchmarks import build_workload
from repro.workloads.synthetic import sequential_fill

#: TLC FTL name -> (class, device scheme).
TLC_REGISTRY = {
    "tlc-pageFTL": (TlcPageFtl, TlcScheme.FPS),
    "tlc-flexFTL": (TlcFlexFtl, TlcScheme.RPS),
}

DEFAULT_TLC_GEOMETRY = TlcGeometry(
    channels=4, chips_per_channel=2, blocks_per_chip=64,
    pages_per_block=48, page_size=4096,
)


@dataclasses.dataclass
class TlcRunResult:
    """Measured-phase outcome of one TLC run."""

    ftl_name: str
    stats: SimStats
    counters: Dict[str, int]
    logical_pages: int

    @property
    def iops(self) -> float:
        """Completed host requests per second."""
        return self.stats.iops()

    @property
    def erases(self) -> int:
        """Block erasures during the measured phase."""
        return self.counters["erases"]

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot, invertible via :meth:`from_dict`."""
        return {
            "ftl_name": self.ftl_name,
            "stats": self.stats.to_dict(),
            "counters": dict(self.counters),
            "logical_pages": self.logical_pages,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TlcRunResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            ftl_name=str(data["ftl_name"]),
            stats=SimStats.from_dict(data["stats"]),  # type: ignore[arg-type]
            counters={str(k): int(v)
                      for k, v in data["counters"].items()},  # type: ignore[union-attr]
            logical_pages=int(data["logical_pages"]),  # type: ignore[arg-type]
        )


def build_tlc_system(ftl_name: str,
                     geometry: Optional[TlcGeometry] = None,
                     buffer_pages: int = 256,
                     ftl_config: Optional[FtlConfig] = None
                     ) -> Tuple[Simulator, TlcNandArray, WriteBuffer,
                                object, StorageController]:
    """Assemble a complete TLC storage system."""
    if ftl_name not in TLC_REGISTRY:
        raise KeyError(f"unknown TLC FTL {ftl_name!r}; choose from "
                       f"{sorted(TLC_REGISTRY)}")
    ftl_cls, scheme = TLC_REGISTRY[ftl_name]
    sim = Simulator()
    array = TlcNandArray(geometry or DEFAULT_TLC_GEOMETRY,
                         TlcTiming(), scheme=scheme)
    buffer = WriteBuffer(buffer_pages)
    ftl = ftl_cls(array, buffer, ftl_config or FtlConfig())
    stats = SimStats(page_size=array.geometry.page_size)
    controller = StorageController(sim, array, ftl, buffer, stats)
    return sim, array, buffer, ftl, controller


def run_tlc_workload(ftl_name: str, workload: str = "Varmail",
                     total_ops: int = 8000, utilization: float = 0.7,
                     seed: int = 1,
                     geometry: Optional[TlcGeometry] = None
                     ) -> TlcRunResult:
    """Precondition and run one workload on one TLC FTL."""
    sim, array, buffer, ftl, controller = build_tlc_system(
        ftl_name, geometry=geometry)
    span = max(1, int(ftl.logical_pages * utilization))

    warmup = ClosedLoopHost(sim, controller, [sequential_fill(span)])
    warmup.start()
    sim.run()
    if isinstance(ftl, TlcFlexFtl):
        ftl.quota = ftl.quota_cap  # fresh start, as in the MLC runner

    baseline = dict(ftl.counters())
    stats = SimStats(page_size=array.geometry.page_size)
    controller.stats = stats
    streams = build_workload(workload, span, total_ops=total_ops,
                             seed=seed)
    host = ClosedLoopHost(sim, controller, streams)
    host.start()
    sim.run()

    final = ftl.counters()
    deltas = {key: final[key] - baseline.get(key, 0) for key in final}
    return TlcRunResult(ftl_name=ftl_name, stats=stats,
                        counters=deltas,
                        logical_pages=ftl.logical_pages)


def run_tlc_system_comparison(workload: str = "Varmail",
                              total_ops: int = 8000, seed: int = 1,
                              engine: Optional[EngineOptions] = None,
                              ) -> Dict[str, TlcRunResult]:
    """Run both TLC FTLs on the same workload (one engine cell each)."""
    names = list(TLC_REGISTRY)
    cells = [Cell.make("tlc_workload", label=name, ftl_name=name,
                       workload=workload, total_ops=total_ops, seed=seed)
             for name in names]
    results = run_cells(cells, options=engine, label="tlc")
    return dict(zip(names, results))


def render_tlc_comparison(results: Dict[str, TlcRunResult]) -> str:
    """Render the TLC system comparison table."""
    rows = []
    for name, result in results.items():
        bandwidth = result.stats.write_bandwidth
        samples = bandwidth.samples_mbps()
        rows.append([
            name, f"{result.iops:.0f}", result.erases,
            f"{max(samples) if samples else 0:.1f}",
            result.counters.get("quota", "-"),
        ])
    return render_table(
        ["TLC FTL", "IOPS", "erases", "peak BW [MB/s]", "final quota"],
        rows)


# -- CLI registration --------------------------------------------------
#
# The ``tlc`` command has three modes: the constraint/aggressor order
# table, the burst-service study, and the full DES system comparison
# (the only grid-shaped one, which runs through the engine).


def _render_tlc_orders(wordlines: int, seed: int) -> str:
    from repro.nand.tlc import (
        TlcScheme as Scheme,
        fps_tlc_order,
        is_valid_tlc_order,
        random_rps_tlc_order,
        rps_tlc_full_order,
        tlc_max_aggressors,
        unconstrained_tlc_order,
    )

    rng = random.Random(seed)
    orders = {
        "FPS-TLC": fps_tlc_order(wordlines),
        "RPS-TLC full": rps_tlc_full_order(wordlines),
        "RPS-TLC random": random_rps_tlc_order(wordlines, rng),
        "unconstrained": unconstrained_tlc_order(wordlines, rng),
    }
    rows = [[name, tlc_max_aggressors(order, wordlines),
             "yes" if is_valid_tlc_order(order, wordlines, Scheme.RPS)
             else "no"]
            for name, order in orders.items()]
    return (f"TLC generalisation ({wordlines} word lines, "
            f"{3 * wordlines} pages):\n"
            + render_table(["order", "max aggressors", "RPS-legal"],
                           rows))


def _cli_arguments(parser) -> None:
    parser.add_argument("--wordlines", type=int, default=128)
    parser.add_argument("--mode", choices=("orders", "burst", "system"),
                        default="orders",
                        help="orders: constraint/aggressor table; "
                             "burst: burst-service study; system: full "
                             "DES comparison")


def _cli_run(args, engine_options: EngineOptions) -> Dict[str, object]:
    if args.mode == "burst":
        from repro.experiments.tlc_burst import (
            render_tlc_burst,
            run_tlc_burst_experiment,
        )
        result = run_tlc_burst_experiment(
            wordlines=args.wordlines,
            burst_pages=max(1, args.wordlines * 3 // 4))
        return {"mode": "burst", "report": render_tlc_burst(result)}
    if args.mode == "system":
        results = run_tlc_system_comparison(seed=args.seed,
                                            engine=engine_options)
        return {"mode": "system", "results": results,
                "report": render_tlc_comparison(results)}
    return {"mode": "orders",
            "report": _render_tlc_orders(args.wordlines, args.seed)}


def _cli_to_dict(payload: Dict[str, object]) -> Dict[str, object]:
    if payload["mode"] == "system":
        return {"mode": "system",
                "results": {name: result.to_dict()
                            for name, result
                            in payload["results"].items()}}
    return {"mode": payload["mode"], "report": payload["report"]}


registry.register(registry.Experiment(
    name="tlc",
    help="TLC generalisation of RPS",
    add_arguments=_cli_arguments,
    run=_cli_run,
    render=lambda payload: payload["report"],
    to_dict=_cli_to_dict,
    parallel=True,
))
