"""Figure 8: performance and lifetime comparison of the four FTLs.

Reproduces all three panels:

* **8(a)** — normalised IOPS of pageFTL / parityFTL / rtfFTL / flexFTL
  under the five workloads (normalised to pageFTL);
* **8(b)** — normalised block erasure counts under the same runs;
* **8(c)** — the CDF of write bandwidth for Varmail.

Expected shape (what the paper reports, and what the benchmark
harness asserts):

* flexFTL >= parityFTL and rtfFTL everywhere;
* flexFTL ~ pageFTL on the intensive and read-dominant workloads,
  above pageFTL on Varmail;
* flexFTL and pageFTL erase the fewest blocks; parityFTL and rtfFTL
  erase noticeably more;
* flexFTL's peak write bandwidth on Varmail is ~2x rtfFTL's.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Sequence

from repro.experiments import registry
from repro.experiments.engine import (
    EngineOptions,
    run_cells,
    workload_cell,
)
from repro.experiments.runner import (
    ExperimentConfig,
    RunResult,
    experiment_span,
)
from repro.metrics.bandwidth import cdf_points, peak_ratio
from repro.metrics.iops import normalize
from repro.metrics.report import render_grouped_bars, render_table
from repro.workloads.benchmarks import build_workload

#: Order the paper's figures use.
FTLS: Sequence[str] = ("pageFTL", "parityFTL", "rtfFTL", "flexFTL")
WORKLOADS: Sequence[str] = ("OLTP", "NTRX", "Webserver", "Varmail",
                            "Fileserver")

#: Measured operations per workload at full scale.
DEFAULT_OPS: Dict[str, int] = {
    "OLTP": 16000,
    "NTRX": 16000,
    "Webserver": 16000,
    "Varmail": 24000,
    "Fileserver": 16000,
}


@dataclasses.dataclass
class Fig8Result:
    """All runs of the Figure 8 comparison, keyed [workload][ftl]."""

    runs: Dict[str, Dict[str, RunResult]]
    span: int

    # -- Figure 8(a) ---------------------------------------------------

    def iops(self) -> Dict[str, Dict[str, float]]:
        """Raw IOPS per workload and FTL."""
        return {w: {f: r.iops for f, r in ftls.items()}
                for w, ftls in self.runs.items()}

    def normalized_iops(self, baseline: str = "pageFTL"
                        ) -> Dict[str, Dict[str, float]]:
        """Figure 8(a): IOPS normalised to the baseline FTL."""
        return {w: normalize(v, baseline) for w, v in self.iops().items()}

    # -- Figure 8(b) ---------------------------------------------------

    def erasures(self) -> Dict[str, Dict[str, float]]:
        """Raw block erasure counts per workload and FTL."""
        return {w: {f: float(r.erases) for f, r in ftls.items()}
                for w, ftls in self.runs.items()}

    def normalized_erasures(self, baseline: str = "pageFTL"
                            ) -> Dict[str, Dict[str, float]]:
        """Figure 8(b): erasure counts normalised to the baseline.

        A baseline that erased nothing (possible in short smoke runs)
        is floored at one erase so the ratios stay defined.
        """
        return {w: normalize(v, baseline, zero_floor=1.0)
                for w, v in self.erasures().items()}

    # -- Figure 8(c) ---------------------------------------------------

    def varmail_cdf(self, fractions: Sequence[float] = (
            0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0)
    ) -> Dict[str, List["tuple[float, float]"]]:
        """Figure 8(c): write-bandwidth CDF points for Varmail."""
        if "Varmail" not in self.runs:
            raise KeyError("Varmail was not part of this comparison")
        return {
            ftl: cdf_points(result.stats.write_bandwidth, fractions)
            for ftl, result in self.runs["Varmail"].items()
        }

    def varmail_peak_ratio(self, numerator: str = "flexFTL",
                           denominator: str = "rtfFTL") -> float:
        """The paper's 2.13x peak-bandwidth headline for Varmail."""
        trackers = {f: r.stats.write_bandwidth
                    for f, r in self.runs["Varmail"].items()}
        return peak_ratio(trackers, numerator, denominator)

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON projection: every run plus both normalised panels."""
        return {
            "span": self.span,
            "runs": {workload: {ftl: run.to_dict()
                                for ftl, run in ftls.items()}
                     for workload, ftls in self.runs.items()},
            "normalized_iops": self.normalized_iops(),
            "normalized_erasures": self.normalized_erasures(),
        }

    # -- rendering -----------------------------------------------------

    def render(self) -> str:
        """Full text report: both bar panels plus the Varmail CDF."""
        parts = [
            "Figure 8(a): normalized IOPS (baseline pageFTL = 1.0)",
            render_grouped_bars(self.normalized_iops(), FTLS),
            "",
            "Figure 8(b): normalized block erasure counts "
            "(baseline pageFTL = 1.0)",
            render_grouped_bars(self.normalized_erasures(), FTLS),
        ]
        if "Varmail" in self.runs:
            from repro.metrics.plots import ascii_cdf

            fine = [f / 20 for f in range(1, 21)]
            cdf = self.varmail_cdf()
            fractions = [p[0] for p in next(iter(cdf.values()))]
            headers = ["CDF"] + [f"{f:.2f}" for f in fractions]
            rows = [[ftl] + [f"{mbps:.1f}" for _, mbps in points]
                    for ftl, points in cdf.items()]
            parts += [
                "",
                "Figure 8(c): write bandwidth CDF for Varmail [MB/s]",
                render_table(headers, rows),
                "",
                ascii_cdf(self.varmail_cdf(fine)),
                "",
                f"peak bandwidth flexFTL / rtfFTL = "
                f"{self.varmail_peak_ratio():.2f}x",
            ]
        return "\n".join(parts)


def run_fig8(
    workloads: Optional[Sequence[str]] = None,
    ftls: Sequence[str] = FTLS,
    config: Optional[ExperimentConfig] = None,
    ops: Optional[Mapping[str, int]] = None,
    utilization: float = 0.75,
    seed: int = 1,
    scale: float = 1.0,
    engine: Optional[EngineOptions] = None,
) -> Fig8Result:
    """Run the Figure 8 comparison.

    Args:
        workloads: workloads to run (default: all five of Table 1).
        ftls: FTLs to compare (default: the paper's four).
        config: system configuration (default: scaled device).
        ops: measured operations per workload.
        utilization: workload footprint as a fraction of logical space.
        seed: workload generation seed.
        scale: multiply the per-workload op counts (0.25 gives a quick
            smoke-scale run; 1.0 is the full experiment).
        engine: parallel-execution options; the (workload x FTL) grid
            fans out one cell per run.

    Returns:
        A :class:`Fig8Result` holding every run.
    """
    workloads = list(workloads or WORKLOADS)
    config = config or ExperimentConfig()
    base_ops = dict(ops or DEFAULT_OPS)
    span = experiment_span(config, utilization=utilization)
    cells = []
    coords = []
    for workload in workloads:
        total = max(200, int(base_ops.get(workload, 16000) * scale))
        streams = build_workload(workload, span, total_ops=total, seed=seed)
        for ftl in ftls:
            cells.append(workload_cell(ftl, streams, config,
                                       label=f"{workload}/{ftl}"))
            coords.append((workload, ftl))
    results = run_cells(cells, options=engine, label="fig8")
    runs: Dict[str, Dict[str, RunResult]] = {}
    for (workload, ftl), result in zip(coords, results):
        runs.setdefault(workload, {})[ftl] = result
    return Fig8Result(runs=runs, span=span)


# -- CLI registration --------------------------------------------------


def _cli_arguments(parser) -> None:
    parser.add_argument("--workloads", default=None,
                        help="comma-separated subset (default: all five)")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="op-count multiplier (default 1.0)")
    parser.add_argument("--utilization", type=float, default=0.75)


def _cli_run(args, engine_options: EngineOptions) -> Fig8Result:
    workloads = args.workloads.split(",") if args.workloads else None
    return run_fig8(workloads=workloads, scale=args.scale,
                    utilization=args.utilization, seed=args.seed,
                    engine=engine_options)


registry.register(registry.Experiment(
    name="fig8",
    help="IOPS / erasures / bandwidth CDF",
    add_arguments=_cli_arguments,
    run=_cli_run,
    render=Fig8Result.render,
    to_dict=Fig8Result.to_dict,
    parallel=True,
))
