"""Figure 8: performance and lifetime comparison of the four FTLs.

Reproduces all three panels:

* **8(a)** — normalised IOPS of pageFTL / parityFTL / rtfFTL / flexFTL
  under the five workloads (normalised to pageFTL);
* **8(b)** — normalised block erasure counts under the same runs;
* **8(c)** — the CDF of write bandwidth for Varmail.

Expected shape (what the paper reports, and what the benchmark
harness asserts):

* flexFTL >= parityFTL and rtfFTL everywhere;
* flexFTL ~ pageFTL on the intensive and read-dominant workloads,
  above pageFTL on Varmail;
* flexFTL and pageFTL erase the fewest blocks; parityFTL and rtfFTL
  erase noticeably more;
* flexFTL's peak write bandwidth on Varmail is ~2x rtfFTL's.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Sequence

from repro.experiments.runner import (
    ExperimentConfig,
    RunResult,
    experiment_span,
    run_workload,
)
from repro.metrics.bandwidth import cdf_points, peak_ratio
from repro.metrics.iops import normalize
from repro.metrics.report import render_grouped_bars, render_table
from repro.workloads.benchmarks import build_workload

#: Order the paper's figures use.
FTLS: Sequence[str] = ("pageFTL", "parityFTL", "rtfFTL", "flexFTL")
WORKLOADS: Sequence[str] = ("OLTP", "NTRX", "Webserver", "Varmail",
                            "Fileserver")

#: Measured operations per workload at full scale.
DEFAULT_OPS: Dict[str, int] = {
    "OLTP": 16000,
    "NTRX": 16000,
    "Webserver": 16000,
    "Varmail": 24000,
    "Fileserver": 16000,
}


@dataclasses.dataclass
class Fig8Result:
    """All runs of the Figure 8 comparison, keyed [workload][ftl]."""

    runs: Dict[str, Dict[str, RunResult]]
    span: int

    # -- Figure 8(a) ---------------------------------------------------

    def iops(self) -> Dict[str, Dict[str, float]]:
        """Raw IOPS per workload and FTL."""
        return {w: {f: r.iops for f, r in ftls.items()}
                for w, ftls in self.runs.items()}

    def normalized_iops(self, baseline: str = "pageFTL"
                        ) -> Dict[str, Dict[str, float]]:
        """Figure 8(a): IOPS normalised to the baseline FTL."""
        return {w: normalize(v, baseline) for w, v in self.iops().items()}

    # -- Figure 8(b) ---------------------------------------------------

    def erasures(self) -> Dict[str, Dict[str, float]]:
        """Raw block erasure counts per workload and FTL."""
        return {w: {f: float(r.erases) for f, r in ftls.items()}
                for w, ftls in self.runs.items()}

    def normalized_erasures(self, baseline: str = "pageFTL"
                            ) -> Dict[str, Dict[str, float]]:
        """Figure 8(b): erasure counts normalised to the baseline.

        A baseline that erased nothing (possible in short smoke runs)
        is floored at one erase so the ratios stay defined.
        """
        return {w: normalize(v, baseline, zero_floor=1.0)
                for w, v in self.erasures().items()}

    # -- Figure 8(c) ---------------------------------------------------

    def varmail_cdf(self, fractions: Sequence[float] = (
            0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0)
    ) -> Dict[str, List["tuple[float, float]"]]:
        """Figure 8(c): write-bandwidth CDF points for Varmail."""
        if "Varmail" not in self.runs:
            raise KeyError("Varmail was not part of this comparison")
        return {
            ftl: cdf_points(result.stats.write_bandwidth, fractions)
            for ftl, result in self.runs["Varmail"].items()
        }

    def varmail_peak_ratio(self, numerator: str = "flexFTL",
                           denominator: str = "rtfFTL") -> float:
        """The paper's 2.13x peak-bandwidth headline for Varmail."""
        trackers = {f: r.stats.write_bandwidth
                    for f, r in self.runs["Varmail"].items()}
        return peak_ratio(trackers, numerator, denominator)

    # -- rendering -----------------------------------------------------

    def render(self) -> str:
        """Full text report: both bar panels plus the Varmail CDF."""
        parts = [
            "Figure 8(a): normalized IOPS (baseline pageFTL = 1.0)",
            render_grouped_bars(self.normalized_iops(), FTLS),
            "",
            "Figure 8(b): normalized block erasure counts "
            "(baseline pageFTL = 1.0)",
            render_grouped_bars(self.normalized_erasures(), FTLS),
        ]
        if "Varmail" in self.runs:
            from repro.metrics.plots import ascii_cdf

            fine = [f / 20 for f in range(1, 21)]
            cdf = self.varmail_cdf()
            fractions = [p[0] for p in next(iter(cdf.values()))]
            headers = ["CDF"] + [f"{f:.2f}" for f in fractions]
            rows = [[ftl] + [f"{mbps:.1f}" for _, mbps in points]
                    for ftl, points in cdf.items()]
            parts += [
                "",
                "Figure 8(c): write bandwidth CDF for Varmail [MB/s]",
                render_table(headers, rows),
                "",
                ascii_cdf(self.varmail_cdf(fine)),
                "",
                f"peak bandwidth flexFTL / rtfFTL = "
                f"{self.varmail_peak_ratio():.2f}x",
            ]
        return "\n".join(parts)


def run_fig8(
    workloads: Optional[Sequence[str]] = None,
    ftls: Sequence[str] = FTLS,
    config: Optional[ExperimentConfig] = None,
    ops: Optional[Mapping[str, int]] = None,
    utilization: float = 0.75,
    seed: int = 1,
    scale: float = 1.0,
) -> Fig8Result:
    """Run the Figure 8 comparison.

    Args:
        workloads: workloads to run (default: all five of Table 1).
        ftls: FTLs to compare (default: the paper's four).
        config: system configuration (default: scaled device).
        ops: measured operations per workload.
        utilization: workload footprint as a fraction of logical space.
        seed: workload generation seed.
        scale: multiply the per-workload op counts (0.25 gives a quick
            smoke-scale run; 1.0 is the full experiment).

    Returns:
        A :class:`Fig8Result` holding every run.
    """
    workloads = list(workloads or WORKLOADS)
    config = config or ExperimentConfig()
    base_ops = dict(ops or DEFAULT_OPS)
    span = experiment_span(config, utilization=utilization)
    runs: Dict[str, Dict[str, RunResult]] = {}
    for workload in workloads:
        total = max(200, int(base_ops.get(workload, 16000) * scale))
        streams = build_workload(workload, span, total_ops=total, seed=seed)
        runs[workload] = {}
        for ftl in ftls:
            runs[workload][ftl] = run_workload(ftl, streams, config)
    return Fig8Result(runs=runs, span=span)
