"""Parallelism scaling study: IOPS vs device width.

A sanity check of the discrete-event substrate the paper's results
ride on: with the workload held proportional to the device, IOPS
should scale close to linearly with the number of chips until the
channel buses saturate.  Also useful for sizing experiment geometries.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.runner import (
    ExperimentConfig,
    RunResult,
    run_workload,
)
from repro.metrics.report import render_table
from repro.nand.geometry import NandGeometry
from repro.workloads.benchmarks import build_workload


@dataclasses.dataclass
class ScalingResult:
    """IOPS per device width."""

    points: List[Tuple[int, RunResult]]  # (total chips, result)

    def iops_by_chips(self) -> Dict[int, float]:
        """IOPS keyed by total chip count."""
        return {chips: result.iops for chips, result in self.points}

    def render(self) -> str:
        """Render the chips/IOPS/speedup/efficiency table."""
        base_chips, base = self.points[0]
        rows = []
        for chips, result in self.points:
            speedup = result.iops / base.iops if base.iops else 0.0
            rows.append([chips, f"{result.iops:.0f}",
                         f"{speedup:.2f}",
                         f"{speedup / (chips / base_chips):.2f}"])
        return render_table(
            ["chips", "IOPS", "speedup", "efficiency"], rows)


def run_scaling_study(
    channel_counts: Sequence[int] = (1, 2, 4, 8),
    chips_per_channel: int = 2,
    ftl: str = "flexFTL",
    workload: str = "NTRX",
    ops_per_chip: int = 1200,
    utilization: float = 0.7,
    seed: int = 1,
    base_config: Optional[ExperimentConfig] = None,
) -> ScalingResult:
    """Sweep channel count; workload and footprint scale with it."""
    base_config = base_config or ExperimentConfig()
    points: List[Tuple[int, RunResult]] = []
    for channels in channel_counts:
        geometry = NandGeometry(
            channels=channels,
            chips_per_channel=chips_per_channel,
            blocks_per_chip=base_config.geometry.blocks_per_chip,
            pages_per_block=base_config.geometry.pages_per_block,
            page_size=base_config.geometry.page_size,
        )
        config = dataclasses.replace(base_config, geometry=geometry)
        chips = geometry.total_chips
        # footprint proportional to the device, seed shared
        data_pages = (geometry.blocks_per_chip
                      * geometry.pages_per_block * chips)
        span = max(64, int(data_pages * 0.8 * utilization))
        streams = build_workload(workload, span,
                                 total_ops=ops_per_chip * chips,
                                 seed=seed)
        points.append((chips, run_workload(ftl, streams, config)))
    return ScalingResult(points=points)
