"""Parallelism scaling study: IOPS vs device width.

A sanity check of the discrete-event substrate the paper's results
ride on: with the workload held proportional to the device, IOPS
should scale close to linearly with the number of chips until the
channel buses saturate.  Also useful for sizing experiment geometries.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments import registry
from repro.experiments.engine import (
    EngineOptions,
    run_cells,
    workload_cell,
)
from repro.experiments.runner import (
    ExperimentConfig,
    RunResult,
)
from repro.metrics.report import render_table
from repro.nand.geometry import NandGeometry
from repro.workloads.benchmarks import build_workload


@dataclasses.dataclass
class ScalingResult:
    """IOPS per device width."""

    points: List[Tuple[int, RunResult]]  # (total chips, result)

    def iops_by_chips(self) -> Dict[int, float]:
        """IOPS keyed by total chip count."""
        return {chips: result.iops for chips, result in self.points}

    def to_dict(self) -> Dict[str, object]:
        """JSON projection: one entry per device width."""
        return {"points": [{"chips": chips, "result": result.to_dict()}
                           for chips, result in self.points]}

    def render(self) -> str:
        """Render the chips/IOPS/speedup/efficiency table."""
        base_chips, base = self.points[0]
        rows = []
        for chips, result in self.points:
            speedup = result.iops / base.iops if base.iops else 0.0
            rows.append([chips, f"{result.iops:.0f}",
                         f"{speedup:.2f}",
                         f"{speedup / (chips / base_chips):.2f}"])
        return render_table(
            ["chips", "IOPS", "speedup", "efficiency"], rows)


def run_scaling_study(
    channel_counts: Sequence[int] = (1, 2, 4, 8),
    chips_per_channel: int = 2,
    ftl: str = "flexFTL",
    workload: str = "NTRX",
    ops_per_chip: int = 1200,
    utilization: float = 0.7,
    seed: int = 1,
    base_config: Optional[ExperimentConfig] = None,
    engine: Optional[EngineOptions] = None,
) -> ScalingResult:
    """Sweep channel count; workload and footprint scale with it."""
    base_config = base_config or ExperimentConfig()
    cells = []
    chip_counts: List[int] = []
    for channels in channel_counts:
        geometry = NandGeometry(
            channels=channels,
            chips_per_channel=chips_per_channel,
            blocks_per_chip=base_config.geometry.blocks_per_chip,
            pages_per_block=base_config.geometry.pages_per_block,
            page_size=base_config.geometry.page_size,
        )
        config = dataclasses.replace(base_config, geometry=geometry)
        chips = geometry.total_chips
        # footprint proportional to the device, seed shared
        data_pages = (geometry.blocks_per_chip
                      * geometry.pages_per_block * chips)
        span = max(64, int(data_pages * 0.8 * utilization))
        streams = build_workload(workload, span,
                                 total_ops=ops_per_chip * chips,
                                 seed=seed)
        cells.append(workload_cell(ftl, streams, config,
                                   label=f"{chips} chips"))
        chip_counts.append(chips)
    results = run_cells(cells, options=engine, label="scaling")
    return ScalingResult(points=list(zip(chip_counts, results)))


# -- CLI registration --------------------------------------------------


def _cli_arguments(parser) -> None:
    parser.add_argument("--ops-per-chip", type=int, default=800)


def _cli_run(args, engine_options: EngineOptions) -> ScalingResult:
    return run_scaling_study(ops_per_chip=args.ops_per_chip,
                             seed=args.seed, engine=engine_options)


registry.register(registry.Experiment(
    name="scaling",
    help="IOPS vs device parallelism",
    add_arguments=_cli_arguments,
    run=_cli_run,
    render=ScalingResult.render,
    to_dict=ScalingResult.to_dict,
    parallel=True,
))
