"""Noisy-neighbor isolation study across FTLs and arbitration policies.

The scenario the ROADMAP's multi-tenant north star needs first: a
latency-sensitive *victim* tenant (moderate mixed read/write load,
1-page requests, millisecond think times) shares the device with a
*noisy* tenant blasting 4-page write bursts from many worker streams.
Under FIFO arbitration — what a single shared queue does — the
victim's commands queue behind the aggressor's backlog; round-robin
and the weighted/deficit policies restore isolation by serving the
victim's submission queue out of arrival order.

The grid is ``ftl x arbiter`` (default: flexFTL and the FPS page-FTL
across fifo/rr/wrr/drr), one ``qos_workload`` engine cell per point,
so ``--jobs``/caching behave exactly like the other experiments.  Two
paper-relevant effects are visible in the per-tenant numbers:

* arbitration: weighted/deficit policies cut the victim's p99 write
  latency well below the FIFO baseline on *both* FTLs;
* burst absorption: for any fixed arbiter the victim's tail is lower
  on flexFTL, whose LSB-first programming drains the noisy tenant's
  bursts faster than the FPS baseline can (the paper's Section 3
  mechanism, now observable per tenant).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments import registry
from repro.experiments.engine import (
    Cell,
    EngineOptions,
    derive_seed,
    run_cells,
)
from repro.experiments.runner import ExperimentConfig, experiment_span
from repro.metrics.report import render_table
from repro.qos.arbiter import ARBITERS
from repro.qos.host import TenantSpec
from repro.qos.runner import QosRunResult
from repro.workloads.synthetic import burst_stream, mixed_stream

DEFAULT_FTLS: Sequence[str] = ("flexFTL", "pageFTL")
DEFAULT_ARBITERS: Sequence[str] = ("fifo", "rr", "wrr", "drr")

#: Victim tenant: latency-sensitive, lightly loaded.
VICTIM_STREAMS = 2
VICTIM_THINK = 1e-3
VICTIM_SLO = 2e-3  # 2 ms per-request latency target

#: Noisy tenant: many streams of multi-page write bursts.
NOISY_STREAMS = 12
NOISY_BURST_LEN = 40
NOISY_BURST_IDLE = 0.05
NOISY_NPAGES = 4

#: Arbitration weight of the victim (noisy tenant has weight 1).
VICTIM_WEIGHT = 4.0


def build_noisy_neighbor(span: int, total_ops: int,
                         seed: int) -> List[TenantSpec]:
    """The victim + noisy tenant pair, deterministically generated.

    The victim receives a quarter of ``total_ops`` as a steady mixed
    stream; the noisy tenant the rest as grouped write bursts.  Stream
    seeds derive from ``seed`` and the tenant/stream coordinates, so
    the workload is identical across FTLs and arbiters — only service
    order differs.
    """
    if total_ops <= 0:
        raise ValueError(f"total_ops must be positive, got {total_ops}")
    victim_ops = max(VICTIM_STREAMS, total_ops // 4)
    noisy_ops = max(NOISY_STREAMS * NOISY_BURST_LEN,
                    total_ops - victim_ops)

    victim_streams = [
        mixed_stream(
            span, max(1, victim_ops // VICTIM_STREAMS),
            read_fraction=0.5, npages=1, think=VICTIM_THINK,
            zipf_s=0.9,
            rng=np.random.default_rng(derive_seed(seed, "victim", i)),
        )
        for i in range(VICTIM_STREAMS)
    ]
    bursts = max(1, noisy_ops // (NOISY_STREAMS * NOISY_BURST_LEN))
    noisy_streams = [
        burst_stream(
            span, bursts, NOISY_BURST_LEN, idle=NOISY_BURST_IDLE,
            read_fraction=0.0, npages=NOISY_NPAGES, zipf_s=1.1,
            rng=np.random.default_rng(derive_seed(seed, "noisy", i)),
        )
        for i in range(NOISY_STREAMS)
    ]
    return [
        TenantSpec.make("victim", victim_streams, weight=VICTIM_WEIGHT,
                        read_slo=VICTIM_SLO, write_slo=VICTIM_SLO),
        TenantSpec.make("noisy", noisy_streams, weight=1.0),
    ]


def run_qos_isolation(
    ftls: Sequence[str] = DEFAULT_FTLS,
    arbiters: Sequence[str] = DEFAULT_ARBITERS,
    total_ops: int = 2400,
    utilization: float = 0.7,
    max_outstanding: int = 8,
    seed: int = 1,
    config: Optional[ExperimentConfig] = None,
    engine: Optional[EngineOptions] = None,
) -> Dict[Tuple[str, str], QosRunResult]:
    """Run the grid; returns results keyed by ``(ftl, arbiter)``."""
    for name in arbiters:
        if name not in ARBITERS:
            raise KeyError(
                f"unknown arbiter {name!r}; choose from {sorted(ARBITERS)}")
    config = config or ExperimentConfig()
    span = experiment_span(config, utilization=utilization, ftls=ftls)
    tenants = build_noisy_neighbor(span, total_ops, seed)
    cells = [
        Cell.make("qos_workload", label=f"{ftl}/{arbiter}",
                  ftl_name=ftl, tenants=tenants, arbiter=arbiter,
                  config=config, max_outstanding=max_outstanding)
        for ftl in ftls for arbiter in arbiters
    ]
    results = run_cells(cells, options=engine, label="qos_isolation")
    keys = [(ftl, arbiter) for ftl in ftls for arbiter in arbiters]
    return dict(zip(keys, results))


def render_qos_isolation(
        results: Dict[Tuple[str, str], QosRunResult]) -> str:
    """The per-cell table plus a FIFO-vs-weighted isolation headline."""
    unit = 1e-3
    rows: List[List[object]] = []
    for (ftl, arbiter), result in results.items():
        victim = result.tenant("victim")
        noisy = result.tenant("noisy")
        rows.append([
            ftl,
            arbiter,
            f"{float(victim['write_latency']['p99']) / unit:.3f}",
            f"{float(victim['read_latency']['p99']) / unit:.3f}",
            int(victim["read_violations"]) + int(victim["write_violations"]),
            f"{float(victim['queue']['mean_depth']):.2f}",
            f"{float(noisy['write_latency']['p99']) / unit:.3f}",
            f"{float(result.totals['iops']):.0f}",
        ])
    table = render_table(
        ["FTL", "arbiter", "victim wp99 [ms]", "victim rp99 [ms]",
         "victim SLO viol", "victim qdepth", "noisy wp99 [ms]",
         "total IOPS"],
        rows,
    )
    lines = [table]
    for ftl in dict.fromkeys(ftl for ftl, _ in results):
        fifo = results.get((ftl, "fifo"))
        if fifo is None:
            continue
        weighted = [
            (arbiter, results[(ftl, arbiter)].write_p99("victim"))
            for arbiter in ("wrr", "drr")
            if (ftl, arbiter) in results
        ]
        if not weighted:
            continue
        best_arbiter, best = min(weighted, key=lambda pair: pair[1])
        base = fifo.write_p99("victim")
        if best > 0:
            lines.append(
                f"{ftl}: victim p99 write latency "
                f"{base / unit:.3f} ms (fifo) -> {best / unit:.3f} ms "
                f"({best_arbiter}), {base / best:.2f}x better")
    return "\n".join(lines)


# -- CLI registration --------------------------------------------------


def _cli_arguments(parser) -> None:
    parser.add_argument(
        "--ftls", default=",".join(DEFAULT_FTLS),
        help="comma-separated FTLs to compare "
             f"(default {','.join(DEFAULT_FTLS)})")
    parser.add_argument(
        "--arbiters", default=",".join(DEFAULT_ARBITERS),
        help="comma-separated arbitration policies "
             f"(default {','.join(DEFAULT_ARBITERS)})")
    parser.add_argument(
        "--ops", type=int, default=2400,
        help="total operations across both tenants (default 2400)")
    parser.add_argument(
        "--outstanding", type=int, default=8,
        help="admission-gate in-flight command bound (default 8)")


def _cli_run(args, engine_options: EngineOptions):
    try:
        return run_qos_isolation(
            ftls=tuple(args.ftls.split(",")),
            arbiters=tuple(args.arbiters.split(",")),
            total_ops=args.ops,
            max_outstanding=args.outstanding,
            seed=args.seed,
            engine=engine_options,
        )
    except (KeyError, ValueError) as error:
        raise registry.CliError(str(error.args[0])) from error


def _cli_render(results) -> str:
    return ("noisy-neighbor isolation (per-tenant QoS):\n"
            + render_qos_isolation(results))


registry.register(registry.Experiment(
    name="qos_isolation",
    help="multi-tenant noisy-neighbor study across arbitration policies",
    add_arguments=_cli_arguments,
    run=_cli_run,
    render=_cli_render,
    to_dict=lambda results: {
        f"{ftl}/{arbiter}": result.to_dict()
        for (ftl, arbiter), result in results.items()
    },
    parallel=True,
))
