"""The ``run`` CLI command: one FTL on one workload.

Not a paper figure — a probe for interactive exploration.  It executes
through the engine as a single cell, so repeated invocations with the
same parameters replay from the result cache.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments import registry
from repro.experiments.engine import (
    EngineOptions,
    run_cells,
    workload_cell,
)
from repro.experiments.runner import (
    ExperimentConfig,
    FTL_REGISTRY,
    RunResult,
    experiment_span,
)
from repro.metrics.report import render_table
from repro.workloads.benchmarks import PROFILES, build_workload


def run_single(
    workload: str = "Varmail",
    ftl: str = "flexFTL",
    total_ops: int = 12000,
    utilization: float = 0.75,
    predictor: bool = False,
    seed: int = 1,
    engine: EngineOptions = None,
) -> "tuple[int, RunResult]":
    """Run one FTL on one workload with the standard preconditioning.

    Returns:
        ``(span, result)`` — the workload footprint in logical pages
        and the measured run.
    """
    config = ExperimentConfig(flex_use_predictor=predictor)
    span = experiment_span(config, utilization=utilization)
    streams = build_workload(workload, span, total_ops=total_ops,
                             seed=seed)
    (result,) = run_cells(
        [workload_cell(ftl, streams, config, label=f"{workload}/{ftl}")],
        options=engine, label="run")
    return span, result


# -- CLI registration --------------------------------------------------


def _cli_arguments(parser) -> None:
    parser.add_argument("--workload", default="Varmail")
    parser.add_argument("--ftl", default="flexFTL")
    parser.add_argument("--ops", type=int, default=12000)
    parser.add_argument("--utilization", type=float, default=0.75)
    parser.add_argument("--predictor", action="store_true",
                        help="enable the Section 6 future-write "
                             "predictor")


def _cli_run(args, engine_options: EngineOptions) -> Dict[str, object]:
    if args.workload not in PROFILES:
        raise registry.CliError(
            f"unknown workload {args.workload!r}; choose from "
            f"{sorted(PROFILES)}")
    if args.ftl not in FTL_REGISTRY:
        raise registry.CliError(
            f"unknown FTL {args.ftl!r}; choose from "
            f"{sorted(FTL_REGISTRY)}")
    span, result = run_single(workload=args.workload, ftl=args.ftl,
                              total_ops=args.ops,
                              utilization=args.utilization,
                              predictor=args.predictor, seed=args.seed,
                              engine=engine_options)
    return {"workload": args.workload, "ftl": args.ftl,
            "ops": args.ops, "span": span, "result": result}


def _cli_render(payload: Dict[str, object]) -> str:
    result: RunResult = payload["result"]  # type: ignore[assignment]
    bandwidth = result.stats.write_bandwidth
    rows = [
        ["IOPS", f"{result.iops:.1f}"],
        ["block erasures", result.erases],
        ["write amplification", f"{result.write_amplification:.3f}"],
        ["peak write BW [MB/s]", f"{bandwidth.percentile(1.0):.1f}"],
        ["host programs", result.counters["host_programs"]],
        ["GC programs", result.counters["gc_programs"]],
        ["backup programs", result.counters["backup_programs"]],
    ]
    return (f"{payload['ftl']} on {payload['workload']} "
            f"({payload['ops']} ops, footprint {payload['span']} pages)\n"
            + render_table(["metric", "value"], rows))


registry.register(registry.Experiment(
    name="run",
    help="one FTL on one workload",
    add_arguments=_cli_arguments,
    run=_cli_run,
    render=_cli_render,
    to_dict=lambda payload: {
        "workload": payload["workload"],
        "ftl": payload["ftl"],
        "ops": payload["ops"],
        "span": payload["span"],
        "result": payload["result"].to_dict(),
    },
    parallel=True,
))
