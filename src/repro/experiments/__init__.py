"""Experiment drivers: one module per paper table/figure plus ablations.

* :mod:`repro.experiments.runner` — system assembly, preconditioning,
  measured runs.
* :mod:`repro.experiments.engine` — parallel cell execution, result
  cache, progress reporting.
* :mod:`repro.experiments.registry` — the table-driven Experiment
  protocol behind the CLI.
* :mod:`repro.experiments.table1` — workload characteristics (Table 1).
* :mod:`repro.experiments.fig4` — reliability comparison (Figure 4).
* :mod:`repro.experiments.fig8` — IOPS, erasures, bandwidth CDF
  (Figures 8(a)-(c)).
* :mod:`repro.experiments.recovery` — Section 3.3 reboot-overhead
  estimate and end-to-end power-loss recovery.
* :mod:`repro.experiments.ablation` — quota, thresholds, parity,
  GC-policy and predictor sweeps.
* :mod:`repro.experiments.single_run` — one FTL on one workload (the
  CLI ``run`` command).
"""

from repro.experiments.engine import (
    Cell,
    EngineOptions,
    ResultCache,
    derive_seed,
    run_cells,
    workload_cell,
)
from repro.experiments.runner import (
    EXPERIMENT_GEOMETRY,
    FTL_REGISTRY,
    ExperimentConfig,
    RunResult,
    build_system,
    experiment_span,
    run_workload,
)
from repro.experiments.fig4 import Fig4Result, run_fig4
from repro.experiments.fig8 import Fig8Result, run_fig8
from repro.experiments.table1 import run_table1, render_table1
from repro.experiments.recovery import (
    SpoScenario,
    reboot_overhead_report,
    run_spo_recovery,
)
from repro.experiments.ablation import (
    AblationPoint,
    render_ablation,
    run_gc_policy_ablation,
    run_parity_ablation,
    run_predictor_ablation,
    run_quota_ablation,
    run_threshold_ablation,
)
from repro.experiments.latency import (
    render_read_latency,
    run_read_latency_comparison,
)
from repro.experiments.endurance import EnduranceResult, run_endurance_sweep
from repro.experiments.scaling import ScalingResult, run_scaling_study

__all__ = [
    "Cell",
    "EngineOptions",
    "ResultCache",
    "derive_seed",
    "run_cells",
    "workload_cell",
    "EXPERIMENT_GEOMETRY",
    "FTL_REGISTRY",
    "ExperimentConfig",
    "RunResult",
    "build_system",
    "experiment_span",
    "run_workload",
    "Fig4Result",
    "run_fig4",
    "Fig8Result",
    "run_fig8",
    "run_table1",
    "render_table1",
    "SpoScenario",
    "run_spo_recovery",
    "reboot_overhead_report",
    "AblationPoint",
    "run_quota_ablation",
    "run_threshold_ablation",
    "run_parity_ablation",
    "run_predictor_ablation",
    "run_gc_policy_ablation",
    "render_ablation",
    "run_read_latency_comparison",
    "render_read_latency",
    "EnduranceResult",
    "run_endurance_sweep",
    "ScalingResult",
    "run_scaling_study",
]
