"""Ablations of flexFTL's design parameters.

The paper fixes three knobs without exploring them; DESIGN.md calls
them out and these sweeps quantify each:

* **A1** — the initial quota ``q`` (paper: 5 % of the LSB pages);
* **A2** — the utilisation thresholds ``u_high``/``u_low``
  (paper: 80 % / 10 %);
* **A3** — the parity-sharing granularity: one parity page per two
  LSB pages (the FPS ceiling of [6]) versus one per block (flexFTL's
  per-block scheme, only possible under RPS).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.page_allocator import PolicyConfig
from repro.experiments.runner import (
    ExperimentConfig,
    RunResult,
    experiment_span,
    run_workload,
)
from repro.metrics.report import render_table
from repro.workloads.benchmarks import build_workload


@dataclasses.dataclass
class AblationPoint:
    """One configuration of a sweep and its measured outcome."""

    label: str
    result: RunResult

    @property
    def iops(self) -> float:
        """Measured-phase IOPS of this configuration."""
        return self.result.iops

    @property
    def peak_bandwidth(self) -> float:
        """Highest active-window write bandwidth [MB/s]."""
        samples = self.result.stats.write_bandwidth.samples_mbps()
        return max(samples) if samples else 0.0


def _varmail_streams(config: ExperimentConfig, total_ops: int,
                     utilization: float, seed: int, workload: str):
    span = experiment_span(config, utilization=utilization)
    return build_workload(workload, span, total_ops=total_ops, seed=seed)


def run_quota_ablation(
    fractions: Sequence[float] = (0.0125, 0.025, 0.05, 0.1, 0.2),
    workload: str = "Varmail",
    total_ops: int = 12000,
    utilization: float = 0.75,
    seed: int = 1,
    config: Optional[ExperimentConfig] = None,
) -> List[AblationPoint]:
    """A1: sweep the initial quota fraction (paper value 0.05)."""
    config = config or ExperimentConfig()
    streams = _varmail_streams(config, total_ops, utilization, seed,
                               workload)
    points: List[AblationPoint] = []
    for fraction in fractions:
        swept = dataclasses.replace(
            config,
            policy_config=dataclasses.replace(config.policy_config,
                                              quota_fraction=fraction),
        )
        result = run_workload("flexFTL", streams, swept)
        points.append(AblationPoint(f"q0={fraction:.4g}", result))
    return points


def run_threshold_ablation(
    pairs: Sequence[Tuple[float, float]] = (
        (0.5, 0.05), (0.8, 0.1), (0.9, 0.3), (0.99, 0.0),
    ),
    workload: str = "Varmail",
    total_ops: int = 12000,
    utilization: float = 0.75,
    seed: int = 1,
    config: Optional[ExperimentConfig] = None,
) -> List[AblationPoint]:
    """A2: sweep (u_high, u_low) (paper values 0.8 / 0.1)."""
    config = config or ExperimentConfig()
    streams = _varmail_streams(config, total_ops, utilization, seed,
                               workload)
    points: List[AblationPoint] = []
    for u_high, u_low in pairs:
        swept = dataclasses.replace(
            config,
            policy_config=dataclasses.replace(config.policy_config,
                                              u_high=u_high, u_low=u_low),
        )
        result = run_workload("flexFTL", streams, swept)
        points.append(AblationPoint(f"u_high={u_high} u_low={u_low}",
                                    result))
    return points


def run_parity_ablation(
    intervals: Sequence[int] = (2, 8, 0),
    workload: str = "Fileserver",
    total_ops: int = 12000,
    utilization: float = 0.75,
    seed: int = 1,
    config: Optional[ExperimentConfig] = None,
) -> Dict[str, AblationPoint]:
    """A3: parity-sharing granularity.

    Runs parityFTL (the FPS ceiling: 2 LSB pages per parity page) and
    flexFTL at several parity intervals, including the paper's
    per-block scheme (interval 0).  The interesting outputs are the
    backup-program count and the erasure count.
    """
    config = config or ExperimentConfig()
    streams = _varmail_streams(config, total_ops, utilization, seed,
                               workload)
    points: Dict[str, AblationPoint] = {
        "parityFTL (per 2 LSBs, FPS)": AblationPoint(
            "parityFTL", run_workload("parityFTL", streams, config)
        ),
    }
    for interval in intervals:
        swept = dataclasses.replace(config, flex_parity_interval=interval)
        label = ("flexFTL (per block)" if interval == 0
                 else f"flexFTL (per {interval} LSBs)")
        points[label] = AblationPoint(
            label, run_workload("flexFTL", streams, swept)
        )
    return points


def run_gc_policy_ablation(
    policies: Sequence[str] = ("greedy", "cost_benefit"),
    workload: str = "NTRX",
    total_ops: int = 12000,
    utilization: float = 0.85,
    seed: int = 1,
    config: Optional[ExperimentConfig] = None,
) -> List[AblationPoint]:
    """Substrate ablation: GC victim-selection policy.

    The paper's FTLs all use greedy selection; an age-weighted
    cost-benefit policy separates hot and cold blocks, which shows up
    as lower write amplification on skewed workloads under pressure.
    Run at high utilisation so garbage collection actually dominates.
    """
    config = config or ExperimentConfig()
    streams = _varmail_streams(config, total_ops, utilization, seed,
                               workload)
    points: List[AblationPoint] = []
    for policy in policies:
        swept = dataclasses.replace(
            config,
            ftl_config=dataclasses.replace(config.ftl_config,
                                           gc_policy=policy),
        )
        result = run_workload("flexFTL", streams, swept)
        points.append(AblationPoint(f"gc={policy}", result))
    return points


def render_ablation(points: Sequence[AblationPoint]) -> str:
    """Render a sweep as a table of the headline metrics."""
    headers = ["configuration", "IOPS", "peak BW [MB/s]", "erases",
               "WAF", "backup programs"]
    rows = []
    for point in points:
        rows.append([
            point.label,
            f"{point.iops:.0f}",
            f"{point.peak_bandwidth:.1f}",
            point.result.erases,
            f"{point.result.write_amplification:.2f}",
            point.result.counters["backup_programs"],
        ])
    return render_table(headers, rows)
