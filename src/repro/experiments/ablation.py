"""Ablations of flexFTL's design parameters.

The paper fixes three knobs without exploring them; DESIGN.md calls
them out and these sweeps quantify each:

* **A1** — the initial quota ``q`` (paper: 5 % of the LSB pages);
* **A2** — the utilisation thresholds ``u_high``/``u_low``
  (paper: 80 % / 10 %);
* **A3** — the parity-sharing granularity: one parity page per two
  LSB pages (the FPS ceiling of [6]) versus one per block (flexFTL's
  per-block scheme, only possible under RPS).

Two substrate ablations ride along: the GC victim-selection policy
(**A4**) and the Section 6 future-write predictor (**A5**).  Every
sweep is a grid of independent runs, so all five execute through the
parallel engine (one cell per configuration).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.page_allocator import PolicyConfig
from repro.experiments import registry
from repro.experiments.engine import (
    EngineOptions,
    run_cells,
    workload_cell,
)
from repro.experiments.runner import (
    ExperimentConfig,
    RunResult,
    experiment_span,
)
from repro.metrics.report import render_table
from repro.workloads.benchmarks import build_workload


@dataclasses.dataclass
class AblationPoint:
    """One configuration of a sweep and its measured outcome."""

    label: str
    result: RunResult

    @property
    def iops(self) -> float:
        """Measured-phase IOPS of this configuration."""
        return self.result.iops

    @property
    def peak_bandwidth(self) -> float:
        """Highest active-window write bandwidth [MB/s]."""
        samples = self.result.stats.write_bandwidth.samples_mbps()
        return max(samples) if samples else 0.0

    def to_dict(self) -> Dict[str, object]:
        """JSON projection (label plus the full run result)."""
        return {"label": self.label, "result": self.result.to_dict()}


def _varmail_streams(config: ExperimentConfig, total_ops: int,
                     utilization: float, seed: int, workload: str):
    span = experiment_span(config, utilization=utilization)
    return build_workload(workload, span, total_ops=total_ops, seed=seed)


def _run_points(
    labelled_configs: Sequence[Tuple[str, str, ExperimentConfig]],
    streams,
    engine: Optional[EngineOptions],
    sweep: str,
) -> List[AblationPoint]:
    """Run (label, ftl, config) triples as one engine batch."""
    cells = [workload_cell(ftl, streams, config, label=label)
             for label, ftl, config in labelled_configs]
    results = run_cells(cells, options=engine, label=sweep)
    return [AblationPoint(label, result)
            for (label, _, _), result in zip(labelled_configs, results)]


def run_quota_ablation(
    fractions: Sequence[float] = (0.0125, 0.025, 0.05, 0.1, 0.2),
    workload: str = "Varmail",
    total_ops: int = 12000,
    utilization: float = 0.75,
    seed: int = 1,
    config: Optional[ExperimentConfig] = None,
    engine: Optional[EngineOptions] = None,
) -> List[AblationPoint]:
    """A1: sweep the initial quota fraction (paper value 0.05)."""
    config = config or ExperimentConfig()
    streams = _varmail_streams(config, total_ops, utilization, seed,
                               workload)
    grid = []
    for fraction in fractions:
        swept = dataclasses.replace(
            config,
            policy_config=dataclasses.replace(config.policy_config,
                                              quota_fraction=fraction),
        )
        grid.append((f"q0={fraction:.4g}", "flexFTL", swept))
    return _run_points(grid, streams, engine, "ablation/quota")


def run_threshold_ablation(
    pairs: Sequence[Tuple[float, float]] = (
        (0.5, 0.05), (0.8, 0.1), (0.9, 0.3), (0.99, 0.0),
    ),
    workload: str = "Varmail",
    total_ops: int = 12000,
    utilization: float = 0.75,
    seed: int = 1,
    config: Optional[ExperimentConfig] = None,
    engine: Optional[EngineOptions] = None,
) -> List[AblationPoint]:
    """A2: sweep (u_high, u_low) (paper values 0.8 / 0.1)."""
    config = config or ExperimentConfig()
    streams = _varmail_streams(config, total_ops, utilization, seed,
                               workload)
    grid = []
    for u_high, u_low in pairs:
        swept = dataclasses.replace(
            config,
            policy_config=dataclasses.replace(config.policy_config,
                                              u_high=u_high, u_low=u_low),
        )
        grid.append((f"u_high={u_high} u_low={u_low}", "flexFTL", swept))
    return _run_points(grid, streams, engine, "ablation/thresholds")


def run_parity_ablation(
    intervals: Sequence[int] = (2, 8, 0),
    workload: str = "Fileserver",
    total_ops: int = 12000,
    utilization: float = 0.75,
    seed: int = 1,
    config: Optional[ExperimentConfig] = None,
    engine: Optional[EngineOptions] = None,
) -> Dict[str, AblationPoint]:
    """A3: parity-sharing granularity.

    Runs parityFTL (the FPS ceiling: 2 LSB pages per parity page) and
    flexFTL at several parity intervals, including the paper's
    per-block scheme (interval 0).  The interesting outputs are the
    backup-program count and the erasure count.
    """
    config = config or ExperimentConfig()
    streams = _varmail_streams(config, total_ops, utilization, seed,
                               workload)
    grid: List[Tuple[str, str, ExperimentConfig]] = [
        ("parityFTL (per 2 LSBs, FPS)", "parityFTL", config),
    ]
    for interval in intervals:
        swept = dataclasses.replace(config, flex_parity_interval=interval)
        label = ("flexFTL (per block)" if interval == 0
                 else f"flexFTL (per {interval} LSBs)")
        grid.append((label, "flexFTL", swept))
    points = _run_points(grid, streams, engine, "ablation/parity")
    # The first label is a display name; keep the historical dict keys.
    keyed = {point.label: point for point in points}
    keyed["parityFTL (per 2 LSBs, FPS)"] = AblationPoint(
        "parityFTL", keyed["parityFTL (per 2 LSBs, FPS)"].result)
    return keyed


def run_gc_policy_ablation(
    policies: Sequence[str] = ("greedy", "cost_benefit"),
    workload: str = "NTRX",
    total_ops: int = 12000,
    utilization: float = 0.85,
    seed: int = 1,
    config: Optional[ExperimentConfig] = None,
    engine: Optional[EngineOptions] = None,
) -> List[AblationPoint]:
    """A4: GC victim-selection policy.

    The paper's FTLs all use greedy selection; an age-weighted
    cost-benefit policy separates hot and cold blocks, which shows up
    as lower write amplification on skewed workloads under pressure.
    Run at high utilisation so garbage collection actually dominates.
    """
    config = config or ExperimentConfig()
    streams = _varmail_streams(config, total_ops, utilization, seed,
                               workload)
    grid = []
    for policy in policies:
        swept = dataclasses.replace(
            config,
            ftl_config=dataclasses.replace(config.ftl_config,
                                           gc_policy=policy),
        )
        grid.append((f"gc={policy}", "flexFTL", swept))
    return _run_points(grid, streams, engine, "ablation/gc")


def run_predictor_ablation(
    workload: str = "Varmail",
    total_ops: int = 12000,
    utilization: float = 0.75,
    seed: int = 1,
    config: Optional[ExperimentConfig] = None,
    engine: Optional[EngineOptions] = None,
) -> List[AblationPoint]:
    """A5: the Section 6 future-write predictor, off vs on.

    pageFTL rides along as the performance reference the predictor is
    trying to close the gap to.
    """
    config = config or ExperimentConfig()
    streams = _varmail_streams(config, total_ops, utilization, seed,
                               workload)
    boosted = dataclasses.replace(config, flex_use_predictor=True)
    grid = [
        ("flexFTL", "flexFTL", config),
        ("flexFTL+predictor", "flexFTL", boosted),
        ("pageFTL (reference)", "pageFTL", config),
    ]
    return _run_points(grid, streams, engine, "ablation/predictor")


def render_ablation(points: Sequence[AblationPoint]) -> str:
    """Render a sweep as a table of the headline metrics."""
    headers = ["configuration", "IOPS", "peak BW [MB/s]", "erases",
               "WAF", "backup programs"]
    rows = []
    for point in points:
        rows.append([
            point.label,
            f"{point.iops:.0f}",
            f"{point.peak_bandwidth:.1f}",
            point.result.erases,
            f"{point.result.write_amplification:.2f}",
            point.result.counters["backup_programs"],
        ])
    return render_table(headers, rows)


# -- CLI registration --------------------------------------------------

#: CLI sweep name -> runner (all take ``seed`` and ``engine``).
ABLATIONS = {
    "quota": run_quota_ablation,
    "thresholds": run_threshold_ablation,
    "parity": run_parity_ablation,
    "gc": run_gc_policy_ablation,
    "predictor": run_predictor_ablation,
}


def _cli_arguments(parser) -> None:
    parser.add_argument("which", choices=tuple(ABLATIONS))


def _cli_run(args, engine_options: EngineOptions) -> List[AblationPoint]:
    points = ABLATIONS[args.which](seed=args.seed, engine=engine_options)
    if isinstance(points, dict):
        points = list(points.values())
    return points


registry.register(registry.Experiment(
    name="ablation",
    help="design-parameter sweeps",
    add_arguments=_cli_arguments,
    run=_cli_run,
    render=render_ablation,
    to_dict=lambda points: {"points": [p.to_dict() for p in points]},
    parallel=True,
))
