"""Lifetime physics: emergent BER across FTL x P/E x retention.

The end-to-end version of the paper's fig4 lifetime argument: instead
of comparing offline aggressor counts, the same workload runs on each
FTL with the physics-grounded error engine armed
(:mod:`repro.reliability.physics`), and errors *emerge* from each
page's actual history — the aggressor programs its word line absorbed
under the FTL's real in-block program order, the block's P/E wear, the
page's retention age and read-disturb exposure.  Because RPS orders
admit fewer post-finalisation aggressors (and flexFTL keeps hot data on
unfinalised LSB pages with SLC-like margins), RPS-ordered FTLs show
lower cumulative BER and later ECC-failure onset than FPS at matched
stress — the grid makes that a measurable, seeded, cacheable result.

Each grid point is one ``physics_workload`` engine cell (PR-1), so
``--jobs`` parallelism and result caching behave exactly like fig8;
the physics seed at each (P/E, retention) point derives from the base
seed and the stress coordinates only, so every FTL faces the *same*
error-draw sequence at each point.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments import registry
from repro.experiments.engine import (
    Cell,
    EngineOptions,
    derive_seed,
    run_cells,
)
from repro.experiments.runner import (
    FTL_REGISTRY,
    ExperimentConfig,
    experiment_span,
)
from repro.metrics.report import render_table
from repro.nand.sequence import SequenceScheme
from repro.reliability.physics import PhysicsConfig
from repro.reliability.runner import PhysicsRunResult
from repro.scenarios.presets import make_preset

DEFAULT_FTLS: Sequence[str] = ("pageFTL", "flexFTL")
DEFAULT_PE: Sequence[int] = (0, 3000)
DEFAULT_RETENTION: Sequence[float] = (0.0, 8760.0)
DEFAULT_SCENARIO = "hot_rewrite"


@dataclasses.dataclass
class LifetimePhysicsResult:
    """Grid results of one lifetime-physics sweep."""

    grid: Dict[Tuple[str, int, float], PhysicsRunResult]
    scenario: str = DEFAULT_SCENARIO

    def to_dict(self) -> Dict[str, object]:
        """JSON projection for ``--json``."""
        return {
            "scenario": self.scenario,
            "grid": {f"{ftl}@pe{pe:g}/ret{ret:g}": result.to_dict()
                     for (ftl, pe, ret), result in self.grid.items()},
        }

    def rps_beats_fps(self) -> bool:
        """Whether every matched grid point shows the paper's ordering.

        At each (P/E, retention) stress point with both an FPS- and an
        RPS-ordered FTL present, the RPS mean BER must not exceed the
        FPS mean BER, and an RPS ECC-failure onset must not come
        earlier than the FPS one.
        """
        points: Dict[Tuple[int, float],
                     Dict[str, PhysicsRunResult]] = {}
        for (ftl, pe, ret), result in self.grid.items():
            points.setdefault((pe, ret), {})[ftl] = result
        checked = False
        for cell in points.values():
            fps = [r for ftl, r in cell.items()
                   if FTL_REGISTRY[ftl][1] is SequenceScheme.FPS]
            rps = [r for ftl, r in cell.items()
                   if FTL_REGISTRY[ftl][1] is SequenceScheme.RPS]
            if not fps or not rps:
                continue
            checked = True
            for fps_result in fps:
                for rps_result in rps:
                    if rps_result.mean_ber > fps_result.mean_ber:
                        return False
                    fps_fail = fps_result.first_uncorrectable_read
                    rps_fail = rps_result.first_uncorrectable_read
                    if rps_fail is not None and (
                            fps_fail is None or rps_fail < fps_fail):
                        return False
        return checked


def run_lifetime_physics(
    ftls: Sequence[str] = DEFAULT_FTLS,
    pe_cycles: Sequence[int] = DEFAULT_PE,
    retention_hours: Sequence[float] = DEFAULT_RETENTION,
    scenario_name: str = DEFAULT_SCENARIO,
    total_ops: int = 3000,
    utilization: float = 0.6,
    retention_accel: float = 0.0,
    seed: int = 1,
    config: Optional[ExperimentConfig] = None,
    engine: Optional[EngineOptions] = None,
) -> LifetimePhysicsResult:
    """Run the ``ftl x P/E x retention`` physics grid.

    Args:
        ftls: FTLs to compare (mix FPS- and RPS-ordered ones to get
            the headline comparison).
        pe_cycles: baseline P/E wear points.
        retention_hours: baseline retention ages (hours).
        scenario_name: scenario preset (``hot_rewrite`` stresses
            interference, ``cold_aging`` stresses retention/disturb).
        total_ops: measured operations per grid point.
        utilization: footprint fraction for the workload.
        retention_accel: retention hours accrued per simulated second
            on top of the baseline (0 freezes the clock).
        seed: base seed (workload and per-point physics RNG streams
            derive from it).
        config: system configuration override.
        engine: engine options (jobs, caching).
    """
    config = config or ExperimentConfig()
    span = experiment_span(config, utilization=utilization, ftls=ftls)
    scenario = make_preset(scenario_name, span, total_ops,
                           seed=derive_seed(seed, "scenario"))

    cells = [
        Cell.make(
            "physics_workload",
            label=f"{ftl}@pe{pe:g}/ret{ret:g}",
            ftl_name=ftl,
            scenario=scenario.spec(),
            physics=PhysicsConfig(
                seed=derive_seed(seed, "physics", pe, ret),
                pe_baseline=pe,
                retention_baseline_hours=ret,
                retention_hours_per_second=retention_accel,
            ),
            config=config,
        )
        for ftl in ftls for pe in pe_cycles for ret in retention_hours
    ]
    results = run_cells(cells, options=engine, label="lifetime_physics")
    keys = [(ftl, int(pe), float(ret))
            for ftl in ftls for pe in pe_cycles for ret in retention_hours]
    return LifetimePhysicsResult(grid=dict(zip(keys, results)),
                                 scenario=scenario_name)


def render_lifetime_physics(outcome: LifetimePhysicsResult) -> str:
    """Grid table plus the RPS-vs-FPS headline."""
    rows: List[List[object]] = []
    for (ftl, pe, ret), result in outcome.grid.items():
        physics = result.physics
        first_fail = physics["first_uncorrectable_read"]
        rows.append([
            ftl,
            pe,
            f"{ret:g}",
            physics["reads_sampled"],
            f"{physics['mean_ber']:.2e}",
            physics["read_errors"],
            physics["shift_recoveries"],
            physics["ecc_recoveries"],
            physics["uncorrectable"],
            "-" if first_fail is None else first_fail,
        ])
    table = render_table(
        ["FTL", "P/E", "ret (h)", "reads", "mean BER", "errors",
         "shift-rec", "ecc-rec", "lost", "first-fail"],
        rows,
    )
    lines = [f"scenario: {outcome.scenario}", table]

    points: Dict[Tuple[int, float], Dict[str, PhysicsRunResult]] = {}
    for (ftl, pe, ret), result in outcome.grid.items():
        points.setdefault((pe, ret), {})[ftl] = result
    for (pe, ret) in sorted(points):
        cell = points[(pe, ret)]
        fps = {ftl: r for ftl, r in cell.items()
               if FTL_REGISTRY[ftl][1] is SequenceScheme.FPS}
        rps = {ftl: r for ftl, r in cell.items()
               if FTL_REGISTRY[ftl][1] is SequenceScheme.RPS}
        if not fps or not rps:
            continue
        fps_ftl, fps_result = max(fps.items(),
                                  key=lambda item: item[1].mean_ber)
        rps_ftl, rps_result = min(rps.items(),
                                  key=lambda item: item[1].mean_ber)
        if fps_result.mean_ber > 0 \
                and rps_result.mean_ber < fps_result.mean_ber:
            ratio = fps_result.mean_ber / max(rps_result.mean_ber, 1e-30)
            lines.append(
                f"pe={pe} ret={ret:g}h: {rps_ftl} (RPS) mean BER "
                f"{rps_result.mean_ber:.2e} vs {fps_ftl} (FPS) "
                f"{fps_result.mean_ber:.2e} — {ratio:.1f}x lower under "
                f"the same error-draw seed")
    if outcome.rps_beats_fps():
        lines.append(
            "ordering holds at every matched stress point: RPS FTLs "
            "never exceed FPS BER and never fail ECC earlier")
    return "\n".join(lines)


# -- CLI registration --------------------------------------------------


def _cli_arguments(parser) -> None:
    parser.add_argument(
        "--ftls", default=",".join(DEFAULT_FTLS),
        help="comma-separated FTLs to compare "
             f"(default {','.join(DEFAULT_FTLS)})")
    parser.add_argument(
        "--pe", default=",".join(str(p) for p in DEFAULT_PE),
        help="comma-separated baseline P/E cycle counts "
             f"(default {','.join(str(p) for p in DEFAULT_PE)})")
    parser.add_argument(
        "--retention", default=",".join(f"{r:g}" for r in
                                        DEFAULT_RETENTION),
        help="comma-separated baseline retention ages in hours "
             f"(default {','.join(f'{r:g}' for r in DEFAULT_RETENTION)})")
    parser.add_argument(
        "--scenario", default=DEFAULT_SCENARIO,
        help="scenario preset: hot_rewrite stresses interference, "
             "cold_aging stresses retention/read disturb "
             f"(default {DEFAULT_SCENARIO})")
    parser.add_argument(
        "--ops", type=int, default=3000,
        help="measured operations per grid point (default 3000)")
    parser.add_argument(
        "--ret-accel", type=float, default=0.0,
        help="retention hours accrued per simulated second on top of "
             "the baseline (default 0: frozen clock)")


def _cli_run(args, engine_options: EngineOptions):
    try:
        return run_lifetime_physics(
            ftls=tuple(args.ftls.split(",")),
            pe_cycles=tuple(int(pe) for pe in args.pe.split(",")),
            retention_hours=tuple(float(r)
                                  for r in args.retention.split(",")),
            scenario_name=args.scenario,
            total_ops=args.ops,
            retention_accel=args.ret_accel,
            seed=args.seed,
            engine=engine_options,
        )
    except (KeyError, ValueError) as error:
        raise registry.CliError(str(error.args[0])) from error


def _cli_render(outcome) -> str:
    return ("lifetime physics (emergent BER across FTL x P/E x "
            "retention):\n" + render_lifetime_physics(outcome))


registry.register(registry.Experiment(
    name="lifetime_physics",
    help="emergent-BER lifetime sweep: FTL x P/E cycles x retention",
    add_arguments=_cli_arguments,
    run=_cli_run,
    render=_cli_render,
    to_dict=lambda outcome: outcome.to_dict(),
    parallel=True,
))
