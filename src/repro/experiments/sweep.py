"""Generic parameter sweeps over the experiment runner.

A light harness for design-space exploration: give it named parameter
axes and a builder that turns one combination into an
:class:`~repro.experiments.runner.ExperimentConfig` (plus optional
workload overrides), and it returns tidy result rows.  Used by the
buffer-size ablation and the design-space example.
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
)

from repro.experiments.engine import (
    EngineOptions,
    run_cells,
    workload_cell,
)
from repro.experiments.runner import (
    ExperimentConfig,
    RunResult,
    experiment_span,
)
from repro.metrics.report import render_table
from repro.workloads.benchmarks import build_workload

#: Maps one parameter combination to a config.
ConfigBuilder = Callable[[Mapping[str, object]], ExperimentConfig]


@dataclasses.dataclass
class SweepRow:
    """One parameter combination and its measured outcome."""

    params: Dict[str, object]
    result: RunResult

    def cell(self, metric: str) -> float:
        """Extract a metric by name (used by the renderer)."""
        if metric == "iops":
            return self.result.iops
        if metric == "erases":
            return float(self.result.erases)
        if metric == "waf":
            return self.result.write_amplification
        if metric == "peak_bw":
            samples = self.result.stats.write_bandwidth.samples_mbps()
            return max(samples) if samples else 0.0
        raise KeyError(f"unknown metric {metric!r}")


def run_sweep(
    axes: Mapping[str, Sequence[object]],
    config_builder: ConfigBuilder,
    ftl: str = "flexFTL",
    workload: str = "Varmail",
    total_ops: int = 8000,
    utilization: float = 0.75,
    seed: int = 1,
    engine: Optional[EngineOptions] = None,
) -> List[SweepRow]:
    """Run the cartesian product of ``axes``.

    The workload is generated once per distinct footprint (configs may
    change the geometry, which changes the logical span), so rows with
    the same device shape share identical inputs.  Each combination is
    one engine cell, so sweeps parallelise across processes.
    """
    if not axes:
        raise ValueError("need at least one axis")
    names = list(axes)
    stream_cache: Dict[int, object] = {}
    cells = []
    combos: List[Dict[str, object]] = []
    for combo in itertools.product(*(axes[name] for name in names)):
        params = dict(zip(names, combo))
        config = config_builder(params)
        span = experiment_span(config, utilization=utilization)
        if span not in stream_cache:
            stream_cache[span] = build_workload(
                workload, span, total_ops=total_ops, seed=seed)
        streams = stream_cache[span]
        label = " ".join(f"{k}={v}" for k, v in params.items())
        cells.append(workload_cell(ftl, streams, config, label=label))  # type: ignore[arg-type]
        combos.append(params)
    results = run_cells(cells, options=engine, label="sweep")
    return [SweepRow(params=params, result=result)
            for params, result in zip(combos, results)]


def render_sweep(rows: Sequence[SweepRow],
                 metrics: Iterable[str] = ("iops", "peak_bw", "erases",
                                           "waf")) -> str:
    """Render sweep rows as an aligned table."""
    if not rows:
        raise ValueError("nothing to render")
    metrics = list(metrics)
    param_names = list(rows[0].params)
    headers = param_names + metrics
    table_rows = []
    for row in rows:
        cells: List[object] = [row.params[name] for name in param_names]
        for metric in metrics:
            value = row.cell(metric)
            cells.append(f"{value:.0f}" if metric in ("iops", "erases")
                         else f"{value:.2f}")
        table_rows.append(cells)
    return render_table(headers, table_rows)
