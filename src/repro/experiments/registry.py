"""Table-driven experiment registry behind the CLI.

Each experiment module registers one :class:`Experiment` — a name, an
argparse spec, a ``run`` callable and a ``render`` callable — in
:data:`EXPERIMENT_REGISTRY`; CLI dispatch is then a single loop over
the table instead of a hand-written ``_cmd_*`` function per command.

``run`` receives the parsed CLI namespace plus the
:class:`~repro.experiments.engine.EngineOptions` for this invocation
(``--jobs``/``--no-cache``); experiments that are not grid-shaped
simply ignore the options.  ``render`` turns the result into the text
report; ``to_dict`` (optional) powers ``--json``; ``exit_code``
(optional) lets pass/fail experiments surface a process status.
"""

from __future__ import annotations

import argparse
import dataclasses
from typing import Any, Callable, Dict, List, Optional

from repro.experiments.engine import EngineOptions


class CliError(Exception):
    """A user-input error with a CLI exit status."""

    def __init__(self, message: str, code: int = 2) -> None:
        super().__init__(message)
        self.code = code


@dataclasses.dataclass(frozen=True)
class Experiment:
    """One CLI-invocable experiment.

    Attributes:
        name: subcommand name.
        help: one-line subcommand description.
        add_arguments: installs the experiment's argparse options.
        run: executes the experiment; may raise :class:`CliError`.
        render: formats the result as the text report.
        to_dict: optional JSON projection of the result (``--json``
            falls back to wrapping the rendered report).
        exit_code: optional result-dependent process exit status.
        parallel: whether ``--jobs``/``--no-cache`` affect this
            experiment (documentation only; all experiments accept
            the flags).
    """

    name: str
    help: str
    add_arguments: Callable[[argparse.ArgumentParser], None]
    run: Callable[[argparse.Namespace, EngineOptions], Any]
    render: Callable[[Any], str]
    to_dict: Optional[Callable[[Any], Dict[str, Any]]] = None
    exit_code: Callable[[Any], int] = lambda result: 0
    parallel: bool = False


#: name -> Experiment, in registration order (the CLI help order).
EXPERIMENT_REGISTRY: Dict[str, Experiment] = {}


def register(experiment: Experiment) -> Experiment:
    """Add (or replace) an experiment in the registry."""
    EXPERIMENT_REGISTRY[experiment.name] = experiment
    return experiment


def get(name: str) -> Experiment:
    """Look up one experiment by subcommand name."""
    return EXPERIMENT_REGISTRY[name]


#: Canonical CLI subcommand order (the historical help order); any
#: experiment not listed appears afterwards in registration order.
CLI_ORDER = ("table1", "fig4", "fig8", "recovery", "ablation",
             "endurance", "scaling", "latency", "tlc", "qos_isolation",
             "fault_campaign", "lifetime_physics", "scenario",
             "scenario_grid", "run",
             "serve", "perfbench", "trace")


def all_experiments() -> List[Experiment]:
    """Registered experiments in canonical CLI order."""
    load_all()
    rank = {name: index for index, name in enumerate(CLI_ORDER)}
    names = sorted(EXPERIMENT_REGISTRY,
                   key=lambda name: rank.get(name, len(rank)))
    return [EXPERIMENT_REGISTRY[name] for name in names]


_LOADED = False


def load_all() -> None:
    """Import every experiment module so registrations run.

    Import order fixes the CLI subcommand order (the historical
    ``table1 .. run`` sequence).
    """
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    import repro.experiments.table1  # noqa: F401
    import repro.experiments.fig4  # noqa: F401
    import repro.experiments.fig8  # noqa: F401
    import repro.experiments.recovery  # noqa: F401
    import repro.experiments.ablation  # noqa: F401
    import repro.experiments.endurance  # noqa: F401
    import repro.experiments.scaling  # noqa: F401
    import repro.experiments.latency  # noqa: F401
    import repro.experiments.tlc_system  # noqa: F401
    import repro.experiments.qos_isolation  # noqa: F401
    import repro.experiments.fault_campaign  # noqa: F401
    import repro.experiments.lifetime_physics  # noqa: F401
    import repro.scenarios.cli  # noqa: F401
    import repro.experiments.scenario_grid  # noqa: F401
    import repro.experiments.single_run  # noqa: F401
    import repro.fleet.cli  # noqa: F401
    import repro.perfbench.cli  # noqa: F401
    import repro.observability.cli  # noqa: F401
