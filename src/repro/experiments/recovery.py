"""Section 3.3: power-loss recovery and the reboot-overhead estimate.

Two parts:

* an end-to-end sudden-power-off scenario on a data-bearing NAND
  array — write a block 2PO-style while accumulating its parity page,
  persist the parity to a backup block, interrupt an MSB program
  (destroying its paired LSB page), then run the Figure 7(b) recovery
  procedure and check the reconstructed bytes;
* the analytic reboot read-overhead estimate the paper works out
  (16 chips x 2 active blocks x 64 LSB pages x 40 us = 81.92 ms).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Optional

from repro.core.parity_backup import (
    ParityAccumulator,
    RecoveryReport,
    estimate_reboot_read_overhead,
    recover_active_slow_block,
)
from repro.metrics.report import render_table
from repro.nand.array import NandArray
from repro.nand.geometry import NandGeometry, PhysicalPageAddress
from repro.nand.page_types import PageType, page_index
from repro.nand.power import simulate_power_loss_during_msb
from repro.nand.sequence import SequenceScheme


@dataclasses.dataclass
class SpoScenario:
    """Outcome of one end-to-end sudden-power-off recovery."""

    wordlines: int
    msb_written_before_loss: int
    lost_wordline: int
    report: RecoveryReport
    recovered_matches: bool

    @property
    def success(self) -> bool:
        """Recovery procedure succeeded and the bytes are correct."""
        return self.report.success and self.recovered_matches


def run_spo_recovery(
    wordlines: int = 32,
    page_size: int = 512,
    msb_written_before_loss: Optional[int] = None,
    seed: int = 0,
) -> SpoScenario:
    """Exercise the full backup/power-loss/recovery path.

    Args:
        wordlines: word lines per block of the test device.
        page_size: page size (kept small; contents are random bytes).
        msb_written_before_loss: MSB pages programmed before the power
            loss interrupts the next one (default: half the block).
        seed: RNG seed for the page payloads.

    Returns:
        An :class:`SpoScenario`; ``success`` asserts both that the
        recovery procedure reported success and that the reconstructed
        page matches the original payload byte for byte.
    """
    rng = random.Random(seed)
    geometry = NandGeometry(channels=1, chips_per_channel=1,
                            blocks_per_chip=4,
                            pages_per_block=2 * wordlines,
                            page_size=page_size)
    array = NandArray(geometry, scheme=SequenceScheme.RPS, store_data=True)
    data_block, backup_block = 0, 1

    # Fast phase: write every LSB page, accumulating the parity page.
    payloads = [bytes(rng.randrange(256) for _ in range(page_size))
                for _ in range(wordlines)]
    accumulator = ParityAccumulator(page_size)
    for wordline, payload in enumerate(payloads):
        addr = PhysicalPageAddress(0, 0, data_block,
                                   page_index(wordline, PageType.LSB))
        array.program(addr, payload)
        accumulator.add(payload)
    # Last LSB written: persist the accumulated parity page to an LSB
    # page of the backup block (with the data block id in the spare
    # area, which we carry alongside here).
    saved_parity = accumulator.value()
    array.program(
        PhysicalPageAddress(0, 0, backup_block,
                            page_index(0, PageType.LSB)),
        saved_parity,
    )

    # Slow phase: the block serves MSB writes until the power fails.
    if msb_written_before_loss is None:
        msb_written_before_loss = wordlines // 2
    if not (0 <= msb_written_before_loss < wordlines):
        raise ValueError("msb_written_before_loss out of range")
    for wordline in range(msb_written_before_loss):
        addr = PhysicalPageAddress(0, 0, data_block,
                                   page_index(wordline, PageType.MSB))
        array.program(addr, bytes(rng.randrange(256)
                                  for _ in range(page_size)))

    # Sudden power-off during the next MSB program: its paired LSB
    # page is destroyed.
    victim = msb_written_before_loss
    lost = simulate_power_loss_during_msb(
        array,
        PhysicalPageAddress(0, 0, data_block,
                            page_index(victim, PageType.MSB)),
    )

    # Reboot: run the recovery procedure against the active slow block.
    report = recover_active_slow_block(array, 0, 0, data_block,
                                       saved_parity)
    matches = (report.recovered_wordline == victim
               and report.recovered_data == payloads[victim])
    assert lost.page == page_index(victim, PageType.LSB)
    return SpoScenario(
        wordlines=wordlines,
        msb_written_before_loss=msb_written_before_loss,
        lost_wordline=victim,
        report=report,
        recovered_matches=matches,
    )


def reboot_overhead_report() -> str:
    """Render the Section 3.3 reboot-overhead estimates."""
    paper = estimate_reboot_read_overhead(
        chips=16, active_blocks_per_chip=2, lsb_pages_per_block=64,
        t_read=40e-6,
    )
    full = estimate_reboot_read_overhead(
        chips=32, active_blocks_per_chip=2, lsb_pages_per_block=128,
        t_read=40e-6,
    )
    rows = [
        ["paper example (16 chips, 64 LSB pages)", f"{paper * 1e3:.2f}"],
        ["paper device (32 chips, 128 LSB pages)", f"{full * 1e3:.2f}"],
    ]
    return render_table(["configuration", "reboot read overhead [ms]"],
                        rows)


# -- CLI registration --------------------------------------------------

from repro.experiments import registry  # noqa: E402
from repro.experiments.engine import EngineOptions  # noqa: E402


def _cli_arguments(parser) -> None:
    parser.add_argument("--wordlines", type=int, default=64)


def _cli_run(args, engine_options: EngineOptions) -> SpoScenario:
    return run_spo_recovery(wordlines=args.wordlines, page_size=4096,
                            seed=args.seed)


def _cli_render(scenario: SpoScenario) -> str:
    return (reboot_overhead_report()
            + "\n\n"
            + f"end-to-end power-loss scenario: lost word line "
              f"{scenario.lost_wordline}, recovered={scenario.success}")


registry.register(registry.Experiment(
    name="recovery",
    help="power-loss recovery + reboot estimate",
    add_arguments=_cli_arguments,
    run=_cli_run,
    render=_cli_render,
    to_dict=lambda scenario: {
        "wordlines": scenario.wordlines,
        "msb_written_before_loss": scenario.msb_written_before_loss,
        "lost_wordline": scenario.lost_wordline,
        "recovered": scenario.success,
        "data_was_lost": scenario.report.data_was_lost,
    },
    exit_code=lambda scenario: 0 if scenario.success else 1,
))
