"""Fault campaign: program-failure tolerance across FTLs.

The robustness counterpart of Figure 8: the same write-heavy workload
is replayed under increasing program-status failure rates on an FTL
*without* parity backup (pageFTL — the paper's no-sudden-power-off
baseline) and on flexFTL, whose Section 3.3 per-block parity pages
double as runtime program-failure protection.  A failed MSB program
destroys its paired LSB page; pageFTL has nothing to rebuild it from
and reports data loss, while flexFTL reconstructs it from the parity
page and re-drives it — zero logical data loss at rates that corrupt
the baseline.

Each grid point is one ``fault_workload`` engine cell (PR-1), so
``--jobs`` parallelism and result caching behave exactly like fig8;
the per-rate injection seed derives from the base seed and the rate
only, so both FTLs face the *same* fault pressure at each rate.

With ``--cuts N > 0`` the campaign additionally runs flexFTL through
``N`` mid-run power cuts with recovery and resume
(:func:`repro.faults.runner.run_powerloss_resume`), exercising the
:mod:`repro.core.parity_backup` path against live traffic.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.experiments import registry
from repro.experiments.engine import (
    Cell,
    EngineOptions,
    derive_seed,
    run_cells,
)
from repro.experiments.runner import (
    ExperimentConfig,
    RunResult,
    experiment_span,
)
from repro.faults.plan import FaultPlan
from repro.metrics.report import render_table
from repro.workloads.synthetic import mixed_stream

DEFAULT_FTLS: Sequence[str] = ("pageFTL", "flexFTL")
DEFAULT_RATES: Sequence[float] = (0.0, 0.002, 0.005)

#: Spare blocks reserved per chip for bad-block replacement — enough
#: for the default rates; the sweep's job is recovery, not exhaustion.
SPARE_BLOCKS = 4

WORKER_STREAMS = 4
READ_FRACTION = 0.3


@dataclasses.dataclass
class FaultCampaignResult:
    """Grid results plus the optional power-loss/resume epilogue."""

    grid: Dict[Tuple[str, float], RunResult]
    resume_ftl: Optional[str] = None
    resume_result: Optional[RunResult] = None
    resume_recoveries: List[Dict[str, object]] = \
        dataclasses.field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        """JSON projection for ``--json``."""
        data: Dict[str, object] = {
            "grid": {f"{ftl}@{rate}": result.to_dict()
                     for (ftl, rate), result in self.grid.items()},
        }
        if self.resume_result is not None:
            data["resume"] = {
                "ftl": self.resume_ftl,
                "result": self.resume_result.to_dict(),
                "recoveries": self.resume_recoveries,
            }
        return data


def build_campaign_streams(span: int, total_ops: int, seed: int):
    """The campaign workload: identical for every grid point."""
    per_stream = max(1, total_ops // WORKER_STREAMS)
    return [
        mixed_stream(
            span, per_stream, read_fraction=READ_FRACTION, npages=1,
            think=0.0, zipf_s=0.9,
            rng=np.random.default_rng(derive_seed(seed, "campaign", i)),
        )
        for i in range(WORKER_STREAMS)
    ]


def campaign_config(
        config: Optional[ExperimentConfig] = None) -> ExperimentConfig:
    """The grid's system configuration (spare reserve armed)."""
    config = config or ExperimentConfig()
    if config.ftl_config.spare_blocks_per_chip == 0:
        config = dataclasses.replace(
            config,
            ftl_config=dataclasses.replace(
                config.ftl_config, spare_blocks_per_chip=SPARE_BLOCKS),
        )
    return config


def run_fault_campaign(
    ftls: Sequence[str] = DEFAULT_FTLS,
    rates: Sequence[float] = DEFAULT_RATES,
    total_ops: int = 3000,
    utilization: float = 0.6,
    seed: int = 1,
    cuts: int = 2,
    config: Optional[ExperimentConfig] = None,
    engine: Optional[EngineOptions] = None,
) -> FaultCampaignResult:
    """Run the ``ftl x program-failure-rate`` grid (plus resume run)."""
    config = campaign_config(config)
    span = experiment_span(config, utilization=utilization, ftls=ftls)
    streams = build_campaign_streams(span, total_ops, seed)

    cells = [
        Cell.make(
            "fault_workload", label=f"{ftl}@{rate:g}",
            ftl_name=ftl, streams=streams,
            plan=FaultPlan(seed=derive_seed(seed, "rate", rate),
                           program_fail_rate=rate),
            config=config,
        )
        for ftl in ftls for rate in rates
    ]
    results = run_cells(cells, options=engine, label="fault_campaign")
    keys = [(ftl, float(rate)) for ftl in ftls for rate in rates]
    campaign = FaultCampaignResult(grid=dict(zip(keys, results)))

    if cuts > 0:
        from repro.faults.runner import run_powerloss_resume

        resume_ftl = "flexFTL" if "flexFTL" in ftls else ftls[-1]
        # Cuts land inside the measured phase: a few thousand 1-page
        # ops at hundreds-of-microseconds programs span tens of ms.
        offsets = [0.004 * (index + 1) for index in range(cuts)]
        resume_result, recoveries = run_powerloss_resume(
            ftl_name=resume_ftl, streams=streams, cut_offsets=offsets,
            config=config)
        campaign.resume_ftl = resume_ftl
        campaign.resume_result = resume_result
        campaign.resume_recoveries = [
            dataclasses.asdict(recovery) for recovery in recoveries
        ]
    return campaign


def render_fault_campaign(campaign: FaultCampaignResult) -> str:
    """Grid table, loss headline, and the resume epilogue."""
    rows: List[List[object]] = []
    for (ftl, rate), result in campaign.grid.items():
        faults = result.stats.faults
        assert faults is not None  # run_fault_workload always attaches
        rows.append([
            ftl,
            f"{rate:g}",
            faults.program_failures,
            faults.redriven_writes,
            faults.reconstructed_pages,
            faults.salvaged_pages,
            faults.retired_blocks,
            faults.lost_pages,
            "yes" if faults.degraded_mode else "no",
            f"{result.iops:.0f}",
        ])
    table = render_table(
        ["FTL", "fail rate", "pfails", "redriven", "reconstr",
         "salvaged", "retired", "lost", "degraded", "IOPS"],
        rows,
    )
    lines = [table]

    by_rate: Dict[float, Dict[str, RunResult]] = {}
    for (ftl, rate), result in campaign.grid.items():
        by_rate.setdefault(rate, {})[ftl] = result
    for rate in sorted(by_rate):
        cell = by_rate[rate]
        flex = cell.get("flexFTL")
        page = cell.get("pageFTL")
        if flex is None or page is None or rate == 0.0:
            continue
        flex_faults, page_faults = flex.stats.faults, page.stats.faults
        if flex_faults.program_failures > 0 \
                and flex_faults.lost_pages == 0 \
                and page_faults.lost_pages > 0:
            lines.append(
                f"rate {rate:g}: flexFTL recovered all "
                f"{flex_faults.program_failures} program failures "
                f"(0 pages lost); pageFTL lost "
                f"{page_faults.lost_pages} pages under the same "
                f"fault seed")
    if campaign.resume_result is not None:
        recoveries = campaign.resume_recoveries
        reconstructed = sum(int(r["reconstructed_pages"])
                            for r in recoveries)
        lost = sum(int(r["lost_pages"]) for r in recoveries)
        faults = campaign.resume_result.stats.faults
        cuts = faults.power_cuts if faults is not None else len(recoveries)
        lines.append(
            f"power-loss resume ({campaign.resume_ftl}): {cuts} cuts, "
            f"{reconstructed} pages parity-reconstructed, {lost} "
            f"durable pages lost")
    return "\n".join(lines)


# -- CLI registration --------------------------------------------------


def _cli_arguments(parser) -> None:
    parser.add_argument(
        "--ftls", default=",".join(DEFAULT_FTLS),
        help="comma-separated FTLs to compare "
             f"(default {','.join(DEFAULT_FTLS)})")
    parser.add_argument(
        "--rates", default=",".join(f"{r:g}" for r in DEFAULT_RATES),
        help="comma-separated program-failure rates "
             f"(default {','.join(f'{r:g}' for r in DEFAULT_RATES)})")
    parser.add_argument(
        "--ops", type=int, default=3000,
        help="total operations across the worker streams (default 3000)")
    parser.add_argument(
        "--cuts", type=int, default=2,
        help="mid-run power cuts in the resume epilogue; 0 disables "
             "(default 2)")


def _cli_run(args, engine_options: EngineOptions):
    try:
        return run_fault_campaign(
            ftls=tuple(args.ftls.split(",")),
            rates=tuple(float(rate) for rate in args.rates.split(",")),
            total_ops=args.ops,
            seed=args.seed,
            cuts=args.cuts,
            engine=engine_options,
        )
    except (KeyError, ValueError) as error:
        raise registry.CliError(str(error.args[0])) from error


def _cli_render(campaign) -> str:
    return ("fault campaign (program-failure tolerance):\n"
            + render_fault_campaign(campaign))


registry.register(registry.Experiment(
    name="fault_campaign",
    help="fault-injection campaign: recovery and data loss across FTLs",
    add_arguments=_cli_arguments,
    run=_cli_run,
    render=_cli_render,
    to_dict=lambda campaign: campaign.to_dict(),
    parallel=True,
))
