"""System assembly and measured runs for the evaluation experiments.

The paper's testbed is a 16 GB BlueDBM slice; a pure-Python DES cannot
replay multi-gigabyte workloads in reasonable time, so experiments
default to :data:`EXPERIMENT_GEOMETRY`, a proportionally scaled device
(same channel/chip structure, smaller block count and page count per
block).  Every run preconditions the device with a full sequential
fill, then measures the workload phase only (fresh statistics, counter
deltas), which is standard SSD evaluation methodology.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type

from repro.core.flexftl import FlexFtl
from repro.core.page_allocator import PolicyConfig
from repro.core.predictor import EwmaBurstPredictor
from repro.ftl.base import BaseFtl, FtlConfig
from repro.ftl.pageftl import PageFtl
from repro.ftl.parityftl import ParityFtl
from repro.ftl.rtfftl import RtfFtl
from repro.ftl.slcftl import SlcFtl
from repro.nand.array import NandArray
from repro.nand.geometry import NandGeometry
from repro.nand.sequence import SequenceScheme
from repro.nand.timing import NandTiming
from repro.scenarios.base import (
    OPEN,
    Scenario,
    StreamScenario,
    as_scenario,
)
from repro.scenarios.host import (
    StreamingClosedLoopHost,
    StreamingTraceReplayHost,
)
from repro.sim.controller import StorageController
from repro.sim.host import ClosedLoopHost, StreamOp
from repro.sim.kernel import HeapSimulator, Simulator
from repro.sim.queues import WriteBuffer
from repro.sim.stats import SimStats
from repro.workloads.synthetic import sequential_fill

#: FTL name -> (class, sequence scheme its device must enforce).
FTL_REGISTRY: Dict[str, Tuple[Type[BaseFtl], SequenceScheme]] = {
    "pageFTL": (PageFtl, SequenceScheme.FPS),
    "parityFTL": (ParityFtl, SequenceScheme.FPS),
    "rtfFTL": (RtfFtl, SequenceScheme.FPS),
    "flexFTL": (FlexFtl, SequenceScheme.RPS),
    # Related-work baseline (Section 5, ref [4]): LSB-only at half
    # capacity; not part of the paper's Figure 8 comparison.
    "slcFTL": (SlcFtl, SequenceScheme.RPS),
}

#: Scaled-down evaluation device: 4 channels x 2 chips, 64 blocks/chip,
#: 64 pages/block (32 word lines), 4-KB pages — ~128 MB raw.
EXPERIMENT_GEOMETRY = NandGeometry(
    channels=4,
    chips_per_channel=2,
    blocks_per_chip=64,
    pages_per_block=64,
    page_size=4096,
)

#: Chip count past which vectorized batches *could* amortize numpy
#: call overhead — kept for callers sizing explicit ``stepping=
#: "vector"`` runs; ``"auto"`` resolves to event stepping (measured;
#: see :func:`build_system` and docs/PERFORMANCE.md).
VECTOR_AUTO_CHIPS = 32

#: Minimum same-tick program batch the vector path accepts; smaller
#: batches run the sequential per-op loop.
VECTOR_MIN_BATCH = 4


@dataclasses.dataclass(frozen=True)
class ExperimentConfig:
    """Everything needed to build one simulated storage system."""

    geometry: NandGeometry = EXPERIMENT_GEOMETRY
    timing: NandTiming = NandTiming()
    buffer_pages: int = 256
    ftl_config: FtlConfig = FtlConfig()
    policy_config: PolicyConfig = PolicyConfig()
    bandwidth_window: float = 0.05
    warmup: bool = True
    #: flexFTL parity granularity (0 = per block; see FlexFtl).
    flex_parity_interval: int = 0
    #: rtfFTL active blocks per chip (the paper's setup: 8).
    rtf_active_blocks: int = 8
    #: give flexFTL a future-write predictor (the Section 6 extension).
    flex_use_predictor: bool = False
    #: retain per-block program histories (needed by the reliability
    #: analyses; performance runs turn this off — it does not change
    #: any simulation outcome, only what the device remembers).
    track_history: bool = True
    #: event-queue implementation: "calendar" (bucket queue sized to
    #: the LSB-program latency quantum) or "heap" (the original binary
    #: heap, kept as the equivalence oracle).  Pop order — and hence
    #: every simulation outcome — is identical.
    kernel: str = "calendar"
    #: chip-dispatch stepping: "event" (one op at a time, the oracle),
    #: "batch" (independent same-tick ops issued as one flush),
    #: "vector" (batch + numpy-vectorized NAND programs over a unified
    #: state store), or "auto" (currently event: closed-loop traffic
    #: yields singleton batches, so the flush indirection never pays
    #: — see build_system).  Outcome-identical by design.
    stepping: str = "auto"

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot, invertible via :meth:`from_dict`.

        The engine's result cache keys on this, so it must cover every
        field that can change a run's outcome.
        """
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentConfig":
        """Inverse of :meth:`to_dict`."""
        return cls(
            geometry=NandGeometry(**data["geometry"]),  # type: ignore[arg-type]
            timing=NandTiming(**data["timing"]),  # type: ignore[arg-type]
            buffer_pages=int(data["buffer_pages"]),  # type: ignore[arg-type]
            ftl_config=FtlConfig(**data["ftl_config"]),  # type: ignore[arg-type]
            policy_config=PolicyConfig(**data["policy_config"]),  # type: ignore[arg-type]
            bandwidth_window=float(data["bandwidth_window"]),  # type: ignore[arg-type]
            warmup=bool(data["warmup"]),
            flex_parity_interval=int(data["flex_parity_interval"]),  # type: ignore[arg-type]
            rtf_active_blocks=int(data["rtf_active_blocks"]),  # type: ignore[arg-type]
            flex_use_predictor=bool(data["flex_use_predictor"]),
            track_history=bool(data.get("track_history", True)),
            kernel=str(data.get("kernel", "calendar")),
            stepping=str(data.get("stepping", "auto")),
        )


@dataclasses.dataclass
class RunResult:
    """Outcome of one measured workload run."""

    ftl_name: str
    stats: SimStats
    counters: Dict[str, int]
    events: int
    logical_pages: int

    @property
    def iops(self) -> float:
        """Completed host requests per second (Figure 8(a) metric).

        ``nan`` when the measured phase completed no host requests
        (possible with tiny ``--ops`` values): a rate over an empty
        makespan is undefined, not zero.
        """
        if self.stats.completed_requests == 0 or self.stats.elapsed <= 0.0:
            return float("nan")
        return self.stats.iops()

    @property
    def erases(self) -> int:
        """Block erasures during the measured phase (Figure 8(b))."""
        return self.counters["erases"]

    @property
    def write_amplification(self) -> float:
        """(host + GC + backup programs) / host programs.

        ``nan`` when the measured phase wrote no host pages — the
        ratio is undefined rather than zero or infinite.
        """
        host = self.counters["host_programs"]
        if host == 0:
            return float("nan")
        total = (self.counters["host_programs"]
                 + self.counters["gc_programs"]
                 + self.counters["backup_programs"])
        return total / host

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot shared by the result cache and ``--json``.

        Invertible: ``RunResult.from_dict(r.to_dict()) == r``, exactly
        (floats survive a JSON round trip bit-for-bit).
        """
        return {
            "ftl_name": self.ftl_name,
            "stats": self.stats.to_dict(),
            "counters": dict(self.counters),
            "events": self.events,
            "logical_pages": self.logical_pages,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            ftl_name=str(data["ftl_name"]),
            stats=SimStats.from_dict(data["stats"]),  # type: ignore[arg-type]
            counters={str(k): int(v)
                      for k, v in data["counters"].items()},  # type: ignore[union-attr]
            events=int(data["events"]),  # type: ignore[arg-type]
            logical_pages=int(data["logical_pages"]),  # type: ignore[arg-type]
        )


def build_system(
    ftl_name: str,
    config: Optional[ExperimentConfig] = None,
) -> Tuple[Simulator, NandArray, WriteBuffer, BaseFtl, StorageController]:
    """Instantiate a complete simulated storage system."""
    if ftl_name not in FTL_REGISTRY:
        raise KeyError(
            f"unknown FTL {ftl_name!r}; choose from {sorted(FTL_REGISTRY)}"
        )
    config = config or ExperimentConfig()
    ftl_cls, scheme = FTL_REGISTRY[ftl_name]
    if config.kernel == "calendar":
        # Bucket width = the LSB program time, the dominant latency
        # quantum of write-heavy NAND traffic.  Narrower buckets
        # (e.g. one read slot) leave most buckets empty and waste the
        # run loop on day advances; measured sweep in
        # docs/PERFORMANCE.md.
        sim: Simulator = Simulator(
            bucket_width=config.timing.t_lsb_prog)
    elif config.kernel == "heap":
        sim = HeapSimulator()  # type: ignore[assignment]
    else:
        raise ValueError(
            f"unknown kernel {config.kernel!r}; "
            f"choose 'calendar' or 'heap'")
    array = NandArray(config.geometry, config.timing, scheme=scheme,
                      track_history=config.track_history)
    buffer = WriteBuffer(config.buffer_pages)
    if ftl_cls is FlexFtl:
        predictor = (EwmaBurstPredictor()
                     if config.flex_use_predictor else None)
        ftl: BaseFtl = FlexFtl(array, buffer, config.ftl_config,
                               policy_config=config.policy_config,
                               parity_interval=config.flex_parity_interval,
                               predictor=predictor)
    elif ftl_cls is RtfFtl:
        ftl = RtfFtl(array, buffer, config.ftl_config,
                     active_blocks=config.rtf_active_blocks)
    else:
        ftl = ftl_cls(array, buffer, config.ftl_config)
    stats = SimStats(page_size=config.geometry.page_size,
                     bandwidth_window=config.bandwidth_window)
    stepping = config.stepping
    if stepping == "auto":
        # Measured: the controller pump runs once per completion, and
        # completions of a closed-loop workload arrive one at a time,
        # so same-tick batches are almost always singletons (314k of
        # 314k flushes at 16x geometry) and the flush indirection only
        # costs.  Batch/vector stay as explicit, outcome-identical
        # opt-ins for open-loop burst traffic; auto takes the fast
        # path.  See docs/PERFORMANCE.md.
        stepping = "event"
    if stepping == "event":
        batching, vector_min = False, None
    elif stepping == "batch":
        batching, vector_min = True, None
    elif stepping == "vector":
        batching = True
        # Falls back to plain batching when numpy is unavailable.
        vector_min = (VECTOR_MIN_BATCH
                      if array.unify_state_store() else None)
    else:
        raise ValueError(
            f"unknown stepping {config.stepping!r}; choose "
            f"'auto', 'event', 'batch' or 'vector'")
    controller = StorageController(sim, array, ftl, buffer, stats,
                                   batching=batching,
                                   vector_min=vector_min)
    return sim, array, buffer, ftl, controller


def _snapshot(ftl: BaseFtl) -> Dict[str, int]:
    return dict(ftl.counters())


#: The paper's Figure 8 contenders (slcFTL is a related-work extra
#: with half the logical space; including it would shrink every
#: comparison's footprint).
PAPER_FTLS: Tuple[str, ...] = ("pageFTL", "parityFTL", "rtfFTL",
                               "flexFTL")


def experiment_span(config: Optional[ExperimentConfig] = None,
                    utilization: float = 0.6,
                    ftls: Optional[Sequence[str]] = None) -> int:
    """Logical footprint shared by all FTLs of a comparison.

    The paper's benchmarks occupy a fraction of the 16 GB board; we
    mirror that by sizing every workload to ``utilization`` of the
    *smallest* logical space among the compared FTLs (the backup FTLs
    reserve blocks, so their logical space is slightly smaller), which
    keeps the workload identical across FTLs.
    """
    if not (0.0 < utilization <= 1.0):
        raise ValueError("utilization must be in (0, 1]")
    config = config or ExperimentConfig()
    smallest = None
    for name in (ftls or PAPER_FTLS):
        _, _, _, ftl, _ = build_system(name, config)
        if smallest is None or ftl.logical_pages < smallest:
            smallest = ftl.logical_pages
    assert smallest is not None
    return max(1, int(smallest * utilization))


def coerce_scenario(streams: Optional[Sequence[Sequence[StreamOp]]],
                    scenario: Any, caller: str,
                    deprecate_streams: bool = False) -> Scenario:
    """Resolve a runner's ``streams=``/``scenario=`` pair.

    Exactly one of the two must be given.  ``streams`` wraps into a
    :class:`~repro.scenarios.base.StreamScenario` (the legacy adapter,
    byte-identical to the pre-scenario code path); ``scenario``
    accepts a :class:`~repro.scenarios.base.Scenario` or its spec dict
    (how engine cells carry scenarios across process boundaries).
    """
    if (streams is None) == (scenario is None):
        raise TypeError(
            f"{caller}() takes exactly one of streams= (legacy) or "
            f"scenario=")
    if streams is not None:
        if deprecate_streams:
            warnings.warn(
                f"{caller}(streams=...) is deprecated; wrap the "
                f"streams in repro.scenarios.StreamScenario (or use a "
                f"WorkloadScenario/TraceScenario) and pass scenario=",
                DeprecationWarning, stacklevel=3)
        return StreamScenario.from_streams(streams)
    return as_scenario(scenario)


def warmup_device(sim: Simulator, controller: StorageController,
                  ftl: BaseFtl, config: ExperimentConfig, *,
                  footprint: Optional[int] = None,
                  warmup_span: Optional[int] = None,
                  max_events: Optional[int] = None) -> None:
    """Precondition the device with a full sequential fill.

    The shared warmup of all three measured runners (workload, QoS,
    fault).  Fills ``warmup_span`` logical pages — defaulting to the
    workload's ``footprint``, clamped to the FTL's logical space; an
    unknown footprint (a foreign trace without metadata) fills the
    whole logical space.  No-op when ``config.warmup`` is off.
    """
    if not config.warmup:
        return
    if warmup_span is None:
        span = ftl.logical_pages if footprint is None else footprint
        warmup_span = min(ftl.logical_pages, span)
    fill = sequential_fill(warmup_span)
    warmup_host = ClosedLoopHost(sim, controller, [fill])
    warmup_host.start()
    sim.run(max_events=max_events)
    if isinstance(ftl, FlexFtl):
        # The fill saturates the device and exhausts the LSB quota;
        # the measured phase starts from the paper's initial state.
        ftl.quota.reset()


def begin_measured_phase(controller: StorageController, ftl: BaseFtl,
                         config: ExperimentConfig
                         ) -> Tuple[Dict[str, int], SimStats]:
    """Swap in fresh statistics and snapshot the counter baseline.

    Returns ``(baseline, measured_stats)``; the run's deltas are
    ``final - baseline`` so warmup traffic never pollutes a report.
    """
    baseline = _snapshot(ftl)
    measured_stats = SimStats(page_size=config.geometry.page_size,
                              bandwidth_window=config.bandwidth_window)
    controller.stats = measured_stats
    return baseline, measured_stats


def scenario_host(sim: Simulator, controller: StorageController,
                  scenario: Scenario):
    """The streaming host matching a scenario's delivery mode.

    The scenario handle is passed through so the host can rebuild its
    iterators from the spec when it rides into a fleet snapshot.
    """
    if scenario.mode == OPEN:
        return StreamingTraceReplayHost(sim, controller,
                                        scenario.requests(),
                                        scenario=scenario)
    return StreamingClosedLoopHost(sim, controller,
                                   scenario.op_streams(),
                                   scenario=scenario)


def run_workload(
    *,
    ftl_name: str,
    streams: Optional[Sequence[Sequence[StreamOp]]] = None,
    scenario: Any = None,
    config: Optional[ExperimentConfig] = None,
    max_events: Optional[int] = None,
    warmup_span: Optional[int] = None,
    tracer: Optional[object] = None,
) -> RunResult:
    """Precondition, run one workload, and report measured-phase results.

    All parameters are keyword-only: call sites used to pass
    ``(ftl, streams, config)`` positionally, an argument order that is
    easy to swap silently and that the engine's serialized
    :class:`~repro.experiments.engine.Cell` spec cannot tolerate.

    Args:
        ftl_name: a :data:`FTL_REGISTRY` key.
        scenario: the workload — a
            :class:`~repro.scenarios.base.Scenario` or its spec dict
            (see :mod:`repro.scenarios`); closed-mode scenarios drive
            synchronous worker streams, open-mode ones replay timed
            arrivals.
        streams: *deprecated* — legacy closed-loop stream lists;
            wrapped into a
            :class:`~repro.scenarios.base.StreamScenario` with a
            :class:`DeprecationWarning`.  Mutually exclusive with
            ``scenario``.
        config: system configuration.
        max_events: optional simulation event cap (safety backstop).
        warmup_span: logical pages to precondition (defaults to the
            scenario's declared footprint).
        tracer: optional :class:`~repro.observability.tracer.Tracer`;
            when given (and enabled) it is installed for the whole run
            with ``warmup``/``measured`` profiling phases, its metrics
            registry is attached to the measured stats, and it is
            detached before returning.  ``None`` (the default) leaves
            the run untouched.

    Returns:
        A :class:`RunResult` whose statistics and counters cover only
        the measured phase (warmup excluded).
    """
    workload = coerce_scenario(streams, scenario, "run_workload",
                               deprecate_streams=True)
    config = config or ExperimentConfig()
    sim, array, buffer, ftl, controller = build_system(ftl_name, config)

    tracing = tracer is not None and getattr(tracer, "enabled", True)
    if tracing:
        tracer.install(controller)
        tracer.begin_phase("warmup")

    warmup_device(sim, controller, ftl, config,
                  footprint=workload.footprint,
                  warmup_span=warmup_span, max_events=max_events)
    baseline, measured_stats = begin_measured_phase(controller, ftl,
                                                    config)

    if tracing:
        tracer.begin_phase("measured")
    host = scenario_host(sim, controller, workload)
    host.start()
    sim.run(max_events=max_events)
    if tracing:
        tracer.finish()
        measured_stats.metrics = tracer.metrics
        tracer.detach()

    final = _snapshot(ftl)
    deltas = {key: final[key] - baseline.get(key, 0) for key in final}
    return RunResult(
        ftl_name=ftl_name,
        stats=measured_stats,
        counters=deltas,
        events=sim.processed,
        logical_pages=ftl.logical_pages,
    )
