"""Figure 4: reliability comparison of FPS vs RPS program orders.

Panel (a) compares the distributions of the per-page total Vth width
(the sum of the four states' ``WPi``); panel (b) compares bit error
rates at the worst-case operating condition (3K P/E cycles + 1-year
retention).  The paper's finding — and this experiment's expected
shape — is that ``RPSfull`` and ``RPShalf`` are indistinguishable from
FPS, while an order violating the RPS constraints is clearly worse.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Sequence

from repro.metrics.report import render_table
from repro.reliability.ber import OperatingCondition, StressModel, WORST_CASE
from repro.reliability.montecarlo import (
    ReliabilityResult,
    run_reliability_experiment,
)
from repro.reliability.vth import MlcVthModel

#: The schemes Figure 4 compares, plus the unconstrained worst case
#: (Figure 2(a)) that motivates having constraints at all.
SCHEMES: Sequence[str] = ("FPS", "RPSfull", "RPShalf", "unconstrained")


@dataclasses.dataclass
class Fig4Result:
    """Per-scheme reliability measurements."""

    results: Dict[str, ReliabilityResult]
    blocks: int
    wordlines: int
    condition: OperatingCondition

    @property
    def pages(self) -> int:
        """Measured page population per scheme."""
        return self.blocks * self.wordlines

    def wpi_table(self) -> str:
        """Figure 4(a): box statistics of the total WPi per page."""
        headers = ["scheme", "min", "p25", "median", "p75", "max"]
        rows = []
        for scheme in self.results:
            stats = self.results[scheme].wpi
            rows.append([scheme, f"{stats.minimum:.3f}",
                         f"{stats.p25:.3f}", f"{stats.median:.3f}",
                         f"{stats.p75:.3f}", f"{stats.maximum:.3f}"])
        return render_table(headers, rows)

    def ber_table(self) -> str:
        """Figure 4(b): box statistics of the per-page BER."""
        headers = ["scheme", "min", "p25", "median", "p75", "max"]
        rows = []
        for scheme in self.results:
            stats = self.results[scheme].ber
            rows.append([scheme, f"{stats.minimum:.2e}",
                         f"{stats.p25:.2e}", f"{stats.median:.2e}",
                         f"{stats.p75:.2e}", f"{stats.maximum:.2e}"])
        return render_table(headers, rows)

    def rps_matches_fps(self, tolerance: float = 0.02) -> bool:
        """The paper's claim: RPS orders are no worse than FPS.

        Checks that the median WPi of ``RPSfull``/``RPShalf`` does not
        exceed FPS's by more than ``tolerance`` (relative) and likewise
        for the median BER (with a looser absolute floor, since BER
        medians are tiny).
        """
        fps = self.results["FPS"]
        for scheme in ("RPSfull", "RPShalf"):
            if scheme not in self.results:
                continue
            rps = self.results[scheme]
            if rps.wpi.median > fps.wpi.median * (1 + tolerance):
                return False
            if rps.ber.median > fps.ber.median * (1 + tolerance) + 1e-5:
                return False
        return True

    def render(self) -> str:
        """Full Figure 4 text report (tables plus box plots)."""
        from repro.metrics.plots import ascii_box_plot

        wpi_boxes = {scheme: result.wpi
                     for scheme, result in self.results.items()}
        return "\n".join([
            f"Figure 4 reliability comparison "
            f"({self.blocks} blocks x {self.wordlines} word lines, "
            f"{self.condition.pe_cycles} P/E cycles, "
            f"{self.condition.retention_hours / 24:.0f} days retention)",
            "",
            "Figure 4(a): total Vth distribution width per page (sum of "
            "WPi)",
            self.wpi_table(),
            "",
            ascii_box_plot(wpi_boxes),
            "",
            "Figure 4(b): bit error rate per page (worst case)",
            self.ber_table(),
            "",
            f"RPS matches FPS reliability: {self.rps_matches_fps()}",
        ])


def run_fig4(
    schemes: Sequence[str] = SCHEMES,
    blocks: int = 90,
    wordlines: int = 64,
    condition: OperatingCondition = WORST_CASE,
    model: Optional[MlcVthModel] = None,
    stress: Optional[StressModel] = None,
    seed: int = 0,
) -> Fig4Result:
    """Run the Figure 4 Monte-Carlo reliability experiment.

    The defaults mirror the paper's population: more than 90 blocks
    and 5000+ pages per scheme.
    """
    results = {
        scheme: run_reliability_experiment(
            scheme, blocks=blocks, wordlines=wordlines,
            condition=condition, model=model, stress=stress, seed=seed,
        )
        for scheme in schemes
    }
    return Fig4Result(results=results, blocks=blocks, wordlines=wordlines,
                      condition=condition)


# -- CLI registration --------------------------------------------------

from repro.experiments import registry  # noqa: E402
from repro.experiments.engine import EngineOptions  # noqa: E402


def _cli_arguments(parser) -> None:
    parser.add_argument("--blocks", type=int, default=90)
    parser.add_argument("--wordlines", type=int, default=64)


def _cli_run(args, engine_options: EngineOptions) -> Fig4Result:
    return run_fig4(blocks=args.blocks, wordlines=args.wordlines,
                    seed=args.seed)


def _cli_to_dict(result: Fig4Result) -> Dict[str, object]:
    return {
        "blocks": result.blocks,
        "wordlines": result.wordlines,
        "pe_cycles": result.condition.pe_cycles,
        "retention_hours": result.condition.retention_hours,
        "rps_matches_fps": result.rps_matches_fps(),
        "schemes": {
            scheme: {"wpi": dataclasses.asdict(measured.wpi),
                     "ber": dataclasses.asdict(measured.ber)}
            for scheme, measured in result.results.items()
        },
    }


registry.register(registry.Experiment(
    name="fig4",
    help="reliability comparison",
    add_arguments=_cli_arguments,
    run=_cli_run,
    render=Fig4Result.render,
    to_dict=_cli_to_dict,
    exit_code=lambda result: 0 if result.rps_matches_fps() else 1,
))
