"""Runtime fault injection, bad-block management and recovery.

The paper evaluates a fault-free device; real NAND grows bad blocks,
fails programs and erases, and suffers raw-BER read excursions.  This
package injects those faults *during* simulation — deterministically,
from a seeded plan — and implements the management layer that keeps
the device serving I/O: block retirement against a spare reserve,
write re-drive and live-page salvage, the read-retry ladder, parity
reconstruction, and graceful degradation to read-only mode when the
reserve runs dry.

Everything defaults to off: a run without an armed
:class:`~repro.faults.injector.FaultInjector` is byte-identical to one
built before this package existed.

(:mod:`repro.faults.runner` — measured fault campaigns and
power-loss/resume runs — is imported on demand, not re-exported here:
it pulls in :mod:`repro.experiments.runner`.)
"""

from repro.faults.badblocks import BadBlockManager
from repro.faults.injector import FaultInjector, InjectedFault
from repro.faults.plan import (
    FAULT_KINDS,
    READ_SEVERITIES,
    FaultEvent,
    FaultPlan,
)
from repro.faults.recovery import (
    PowerLossRecovery,
    recover_after_power_loss,
)

__all__ = [
    "BadBlockManager",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "InjectedFault",
    "PowerLossRecovery",
    "READ_SEVERITIES",
    "recover_after_power_loss",
]
