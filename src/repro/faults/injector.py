"""Deterministic runtime fault injection.

The :class:`FaultInjector` sits in the controller's operation
completion path: after each flash operation finishes, the controller
asks it whether the operation failed.  Decisions come from one seeded
``random.Random`` plus the plan's explicit event schedule, and the
simulation itself is deterministic, so a given ``(workload, plan)``
pair always produces the same faults in the same order.

Read-fault severity follows the ECC model of
:mod:`repro.reliability.ecc`: the injector draws a raw BER from the
plan's excursion interval, then walks the retry ladder the controller
implements — does the re-read decode under the baseline code?  does
the escalated (stronger/slow) decode clear it?  — leaving only the
truly uncorrectable residue to parity reconstruction or data loss.
The scipy-backed ECC math is imported lazily so plans without read
faults never touch it.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.faults.plan import FaultEvent, FaultPlan
from repro.sim.ops import FlashOp, OpKind


class InjectedFault:
    """One fault the injector decided to fire (controller-facing)."""

    __slots__ = ("kind", "severity")

    def __init__(self, kind: str, severity: Optional[str] = None) -> None:
        self.kind = kind
        self.severity = severity

    def __repr__(self) -> str:
        return f"InjectedFault(kind={self.kind!r}, severity={self.severity!r})"


class FaultInjector:
    """Executes a :class:`~repro.faults.plan.FaultPlan` during a run.

    The controller calls :meth:`on_op_complete` for every finished
    flash operation; a non-None return is the fault to handle.  The
    injector never mutates device state itself — it only decides.
    """

    def __init__(self, plan: FaultPlan, page_size: int = 4096) -> None:
        self.plan = plan
        self.page_size = page_size
        self.rng = random.Random(plan.seed)
        # per-chip completed-op counters, by op kind
        self._programs: Dict[int, int] = {}
        self._erases: Dict[int, int] = {}
        self._reads: Dict[int, int] = {}
        #: (kind, chip, op_index) -> scheduled event
        self._schedule: Dict[Tuple[str, int, int], FaultEvent] = {}
        for event in plan.events:
            self._schedule[(event.kind, event.chip, event.op_index)] = event
        #: injected-fault counts by kind (introspection/reports)
        self.injected: Dict[str, int] = {kind: 0 for kind in
                                         ("program_fail", "erase_fail",
                                          "read_fault", "grown_bad")}
        self._ecc_probs: Optional[Tuple[float, float]] = None

    # ------------------------------------------------------------------

    def on_op_complete(self, chip_id: int, op: FlashOp
                       ) -> Optional[InjectedFault]:
        """Decide whether the just-completed op suffered a fault."""
        plan = self.plan
        rng = self.rng
        kind = op.kind
        if kind is OpKind.PROGRAM:
            index = self._programs.get(chip_id, 0)
            self._programs[chip_id] = index + 1
            fail = ("program_fail", chip_id, index) in self._schedule \
                or (plan.program_fail_rate > 0.0
                    and rng.random() < plan.program_fail_rate)
            grown = ("grown_bad", chip_id, index) in self._schedule \
                or (plan.grown_bad_rate > 0.0
                    and rng.random() < plan.grown_bad_rate)
            if fail:
                # A failed program retires the block anyway; a
                # same-op grown-bad detection adds nothing.
                self.injected["program_fail"] += 1
                return InjectedFault("program_fail")
            if grown:
                self.injected["grown_bad"] += 1
                return InjectedFault("grown_bad")
            return None
        if kind is OpKind.READ:
            index = self._reads.get(chip_id, 0)
            self._reads[chip_id] = index + 1
            event = self._schedule.get(("read_fault", chip_id, index))
            if event is not None:
                severity = event.severity or self._draw_severity()
                self.injected["read_fault"] += 1
                return InjectedFault("read_fault", severity)
            if plan.read_fault_rate > 0.0 \
                    and rng.random() < plan.read_fault_rate:
                self.injected["read_fault"] += 1
                return InjectedFault("read_fault", self._draw_severity())
            return None
        # ERASE
        index = self._erases.get(chip_id, 0)
        self._erases[chip_id] = index + 1
        if ("erase_fail", chip_id, index) in self._schedule \
                or (plan.erase_fail_rate > 0.0
                    and rng.random() < plan.erase_fail_rate):
            self.injected["erase_fail"] += 1
            return InjectedFault("erase_fail")
        return None

    # ------------------------------------------------------------------

    def _ladder_probabilities(self, ber: float) -> Tuple[float, float]:
        """(P[baseline decode fails], P[escalated decode fails])."""
        from repro.reliability.ecc import (  # lazy: scipy-backed
            EccConfig,
            page_failure_probability,
        )

        plan = self.plan
        base = page_failure_probability(
            ber, self.page_size,
            EccConfig(correctable_bits=plan.ecc_correctable_bits))
        escalated = page_failure_probability(
            ber, self.page_size,
            EccConfig(correctable_bits=plan.ecc_escalated_bits))
        return base, escalated

    def _draw_severity(self) -> str:
        """Walk the ECC ladder for a BER drawn from the excursion
        interval: transient (re-read decodes), ecc (escalated decode
        needed) or uncorrectable."""
        rng = self.rng
        low, high = self.plan.read_fault_ber
        if high > low:
            ber = low + (high - low) * rng.random()
            base, escalated = self._ladder_probabilities(ber)
        else:
            # Fixed BER: the ladder probabilities are constants; cache
            # them so severity draws stay scipy-free after the first.
            if self._ecc_probs is None:
                self._ecc_probs = self._ladder_probabilities(low)
            base, escalated = self._ecc_probs
        if rng.random() >= base:
            return "transient"
        if rng.random() >= escalated:
            return "ecc"
        return "uncorrectable"
