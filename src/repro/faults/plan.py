"""Declarative fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is the serializable specification the
:class:`~repro.faults.injector.FaultInjector` executes.  It arms two
complementary mechanisms:

* **rates** — per-operation Bernoulli draws from one seeded RNG
  (program-status failures, erase failures, read faults, grown-bad
  detections).  Because the simulation itself is deterministic, the
  same seed always hits the same operations: a fault campaign is
  exactly reproducible.
* **events** — an explicit schedule of :class:`FaultEvent` entries
  pinning a fault to the N-th operation of a kind on a chip, for tests
  that need a failure at one precise point.

Plans are frozen dataclasses of plain data, so they hash into the
PR-1 engine's content-addressed cell keys and round-trip through
``to_dict``/``from_dict`` unchanged.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Tuple

#: Fault kinds an event can schedule (rate-based faults use the same
#: vocabulary internally).
FAULT_KINDS = ("program_fail", "erase_fail", "read_fault", "grown_bad")

#: Read-fault severities an event may pin (None = draw from the BER
#: model): a transient fault clears on re-read, ``ecc`` needs the
#: escalated ECC mode, ``uncorrectable`` falls through to parity
#: reconstruction or data loss.
READ_SEVERITIES = ("transient", "ecc", "uncorrectable")


@dataclasses.dataclass(frozen=True)
class FaultEvent:
    """One explicitly scheduled fault.

    Attributes:
        kind: a :data:`FAULT_KINDS` member.
        chip: chip id the fault strikes.
        op_index: 0-based index among the chip's *completed* operations
            of the matching kind (programs for ``program_fail`` and
            ``grown_bad``, erases for ``erase_fail``, reads for
            ``read_fault``).
        severity: read-fault severity override (see
            :data:`READ_SEVERITIES`); ignored for other kinds.
    """

    kind: str
    chip: int
    op_index: int
    severity: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from "
                f"{FAULT_KINDS}"
            )
        if self.chip < 0:
            raise ValueError(f"chip must be non-negative, got {self.chip}")
        if self.op_index < 0:
            raise ValueError(
                f"op_index must be non-negative, got {self.op_index}")
        if self.severity is not None \
                and self.severity not in READ_SEVERITIES:
            raise ValueError(
                f"unknown read severity {self.severity!r}; choose from "
                f"{READ_SEVERITIES}"
            )

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=str(data["kind"]),
            chip=int(data["chip"]),  # type: ignore[arg-type]
            op_index=int(data["op_index"]),  # type: ignore[arg-type]
            severity=data.get("severity"),  # type: ignore[arg-type]
        )


@dataclasses.dataclass(frozen=True)
class FaultPlan:
    """Everything the injector needs, as plain serializable data.

    Attributes:
        seed: RNG seed for the rate-based draws.
        program_fail_rate: per-completed-program probability of a
            program-status failure.
        erase_fail_rate: per-completed-erase probability of an erase
            failure.
        read_fault_rate: per-completed-read probability of a raw-BER
            excursion (severity then drawn from the BER model).
        grown_bad_rate: per-completed-program probability that the
            block is detected as grown bad (retired without a failed
            op).
        read_fault_ber: (low, high) raw-BER interval a read fault draws
            its severity from.
        ecc_correctable_bits: baseline ECC strength (bits per codeword)
            used to decide whether the first re-read decodes.
        ecc_escalated_bits: escalated-mode ECC strength (soft-decision
            style slow decode) tried before parity reconstruction.
        ecc_escalation_reads: extra page reads one escalated decode
            costs (latency model of the retry ladder).
        events: explicitly scheduled :class:`FaultEvent` entries.
        factory_bad: ``(chip, block)`` pairs marked bad before the run
            (the factory bad-block table).
    """

    seed: int = 0
    program_fail_rate: float = 0.0
    erase_fail_rate: float = 0.0
    read_fault_rate: float = 0.0
    grown_bad_rate: float = 0.0
    read_fault_ber: Tuple[float, float] = (1e-3, 8e-3)
    ecc_correctable_bits: int = 40
    ecc_escalated_bits: int = 72
    ecc_escalation_reads: int = 3
    events: Tuple[FaultEvent, ...] = ()
    factory_bad: Tuple[Tuple[int, int], ...] = ()

    def __post_init__(self) -> None:
        for name in ("program_fail_rate", "erase_fail_rate",
                     "read_fault_rate", "grown_bad_rate"):
            rate = getattr(self, name)
            if not (0.0 <= rate <= 1.0):
                raise ValueError(f"{name} must be in [0, 1], got {rate}")
        low, high = self.read_fault_ber
        if not (0.0 <= low <= high <= 1.0):
            raise ValueError(
                f"read_fault_ber must be an ordered pair in [0, 1], "
                f"got {self.read_fault_ber}"
            )
        if self.ecc_correctable_bits < 0 or self.ecc_escalated_bits < 0:
            raise ValueError("ECC bit counts must be non-negative")
        if self.ecc_escalated_bits < self.ecc_correctable_bits:
            raise ValueError(
                "ecc_escalated_bits must be at least ecc_correctable_bits"
            )
        if self.ecc_escalation_reads < 1:
            raise ValueError("ecc_escalation_reads must be at least 1")
        # normalize containers so equal plans hash/serialize equally
        object.__setattr__(self, "read_fault_ber",
                           (float(low), float(high)))
        object.__setattr__(self, "events", tuple(self.events))
        object.__setattr__(
            self, "factory_bad",
            tuple((int(c), int(b)) for c, b in self.factory_bad))

    @property
    def enabled(self) -> bool:
        """Whether this plan can inject anything at all."""
        return bool(self.program_fail_rate or self.erase_fail_rate
                    or self.read_fault_rate or self.grown_bad_rate
                    or self.events)

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe snapshot, invertible via :meth:`from_dict`."""
        return {
            "seed": self.seed,
            "program_fail_rate": self.program_fail_rate,
            "erase_fail_rate": self.erase_fail_rate,
            "read_fault_rate": self.read_fault_rate,
            "grown_bad_rate": self.grown_bad_rate,
            "read_fault_ber": list(self.read_fault_ber),
            "ecc_correctable_bits": self.ecc_correctable_bits,
            "ecc_escalated_bits": self.ecc_escalated_bits,
            "ecc_escalation_reads": self.ecc_escalation_reads,
            "events": [event.to_dict() for event in self.events],
            "factory_bad": [list(pair) for pair in self.factory_bad],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        return cls(
            seed=int(data["seed"]),  # type: ignore[arg-type]
            program_fail_rate=float(data["program_fail_rate"]),  # type: ignore[arg-type]
            erase_fail_rate=float(data["erase_fail_rate"]),  # type: ignore[arg-type]
            read_fault_rate=float(data["read_fault_rate"]),  # type: ignore[arg-type]
            grown_bad_rate=float(data["grown_bad_rate"]),  # type: ignore[arg-type]
            read_fault_ber=tuple(data["read_fault_ber"]),  # type: ignore[arg-type]
            ecc_correctable_bits=int(data["ecc_correctable_bits"]),  # type: ignore[arg-type]
            ecc_escalated_bits=int(data["ecc_escalated_bits"]),  # type: ignore[arg-type]
            ecc_escalation_reads=int(data["ecc_escalation_reads"]),  # type: ignore[arg-type]
            events=tuple(FaultEvent.from_dict(event)
                         for event in data["events"]),  # type: ignore[union-attr]
            factory_bad=tuple(tuple(pair)
                              for pair in data["factory_bad"]),  # type: ignore[union-attr]
        )
