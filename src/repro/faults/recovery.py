"""Reboot recovery after a mid-run power cut.

:func:`recover_after_power_loss` is the glue between
:class:`~repro.sim.powerloss.ScheduledPowerLoss` (which models the cut)
and a resumed run: it clears the volatile FTL/controller state, walks
the cut's destroyed pages, and turns every parity-covered loss into a
re-drive — the runtime analogue of the Section 3.3 reboot procedure of
:mod:`repro.core.parity_backup` (whose read-overhead estimate prices
the reboot scan here).

In-flight writes are a different story on every FTL: the interrupted
program's payload lived only in controller RAM, so no backup scheme
recovers it — those pages are counted as lost in-flight writes, never
as data loss (the host never got a durable acknowledgement for a page
that was still being programmed; buffered pages *were* acknowledged,
which is exactly the risk buffered-write semantics take).
"""

from __future__ import annotations

import dataclasses
from typing import List, Set, Tuple

from repro.core.parity_backup import estimate_reboot_read_overhead
from repro.sim.controller import StorageController
from repro.sim.ops import OpKind
from repro.sim.powerloss import PowerLossReport


@dataclasses.dataclass
class PowerLossRecovery:
    """Outcome of one reboot recovery.

    Attributes:
        time: simulation time of the cut.
        dropped_buffered_pages: acknowledged host pages that died in
            the controller's RAM write buffer.
        lost_inflight_pages: interrupted in-flight programs whose
            payload died with the controller (plus rolled-back
            relocations with no durable source).
        reconstructed_pages: destroyed durable pages recovered through
            parity (re-driven to fresh locations on resume).
        lost_pages: destroyed durable pages with no parity cover —
            actual data loss.
        reboot_read_overhead: Section 3.3 estimate of the reboot
            parity-scan time, in seconds.
    """

    time: float
    dropped_buffered_pages: int
    lost_inflight_pages: int
    reconstructed_pages: int
    lost_pages: int
    reboot_read_overhead: float

    @property
    def clean(self) -> bool:
        """True when no *durable* data was lost."""
        return self.lost_pages == 0


def recover_after_power_loss(controller: StorageController,
                             report: PowerLossReport
                             ) -> PowerLossRecovery:
    """Bring a cut device back to a consistent, resumable state.

    Order matters: the FTL first rolls pending relocation programs
    back to their durable source copies, then the controller drops its
    volatile queues (RAM buffer, read queues, in-flight table), and
    only then are the cut's destroyed pages triaged — unmapped, and
    queued for re-drive when a live parity page covers them.

    All outcomes land in the run's :class:`~repro.sim.stats.FaultStats`
    (created on demand), so a resumed run's statistics tell the whole
    story across cuts.
    """
    ftl = controller.ftl
    faults = controller.ensure_fault_stats()
    if ftl.fault_stats is None:
        ftl.fault_stats = faults
    mapping = ftl.mapping
    geometry = ftl.geometry
    lost_inflight = 0

    # Roll in-flight relocation programs back to their durable source
    # copy — before the controller reset forgets them.  An in-flight
    # *host* program's payload existed only in controller RAM.
    for op in controller.in_flight.values():
        if op.kind is not OpKind.PROGRAM or op.lpn is None:
            continue
        lpn = op.lpn
        if mapping.lookup(lpn) != ftl._ppn(op.addr):
            continue
        mapping.unmap(lpn)
        if op.source is not None \
                and ftl.array.is_programmed(op.source):
            mapping.map_write(lpn, ftl._ppn(op.source))
        else:
            lost_inflight += 1

    rolled_back: List[int] = ftl.reset_after_power_loss()
    dropped_buffered = controller.reset_after_power_loss()
    lost_inflight += len(rolled_back)

    interrupted = set(report.interrupted_programs)
    # Parity slots the cut itself destroyed protect nothing anymore;
    # drop them before any parity_covers decision below.  The slot of
    # an *interrupted* parity program is rewound so the backup block's
    # program sequence stays hole-free.
    for addr in interrupted | set(report.destroyed_pages):
        if addr.block < ftl.backup_block_start:
            continue
        chip_id = geometry.chip_id(addr.channel, addr.chip)
        backup = ftl.chips[chip_id].backup
        if backup is None:
            continue
        hole = (addr.block, addr.page)
        owners = [owner for owner, slot in backup._live.items()
                  if (slot.block, slot.page) == hole]
        for owner in owners:
            slot = backup.invalidate(owner)
            if addr in interrupted and slot is not None:
                backup.rewind_slot(slot)
                if controller._trace is not None:
                    controller._trace.event(
                        "parity.rewind", chip=chip_id,
                        block=slot.block, page=slot.page)

    reconstructed = 0
    lost = 0
    for addr in report.destroyed_pages:
        if addr.block >= ftl.backup_block_start:
            continue  # a parity page: handled above
        ppn = ftl._ppn(addr)
        lpn = mapping.lpn_of(ppn)
        if lpn is None:
            continue  # page held no live data (or was rolled back)
        mapping.unmap(lpn)
        if addr in interrupted:
            # An in-flight host program with no relocation source: its
            # payload died in controller RAM.
            lost_inflight += 1
            continue
        chip_id = geometry.chip_id(addr.channel, addr.chip)
        if ftl.parity_covers(chip_id, addr):
            ftl._fault_work(chip_id).redrive.append(lpn)
            reconstructed += 1
        else:
            lost += 1

    # Interrupted data blocks now have a hole in their program
    # sequence: close them (no spare consumed; GC reclaims them).
    quarantined: Set[Tuple[int, int]] = set()
    for addr in interrupted:
        if addr.block >= ftl.backup_block_start:
            continue
        chip_id = geometry.chip_id(addr.channel, addr.chip)
        if (chip_id, addr.block) not in quarantined:
            quarantined.add((chip_id, addr.block))
            ftl.quarantine_interrupted_block(chip_id, addr.block)

    faults.lost_inflight_writes += dropped_buffered + lost_inflight
    faults.reconstructed_pages += reconstructed
    faults.redriven_writes += reconstructed
    faults.lost_pages += lost

    overhead = estimate_reboot_read_overhead(
        chips=geometry.total_chips,
        # One fast and one slow active block per chip — the paper's
        # Section 3.3 worst case for the reboot parity scan.
        active_blocks_per_chip=2,
        lsb_pages_per_block=ftl.wordlines,
        t_read=controller.timing.t_read,
    )
    return PowerLossRecovery(
        time=report.time,
        dropped_buffered_pages=dropped_buffered,
        lost_inflight_pages=lost_inflight,
        reconstructed_pages=reconstructed,
        lost_pages=lost,
        reboot_read_overhead=overhead,
    )
