"""Bad-block table and spare-block reserve for one chip.

Real NAND ships with factory-marked bad blocks and grows more over its
lifetime (program-status and erase failures, vendor-specified up to a
few percent of the device).  An FTL keeps a bad-block table and a
reserve of spare blocks: a retired block is replaced by a spare, and
when the reserve runs dry the device degrades to read-only — writes
can no longer be placed safely, but everything already stored stays
readable.

:class:`BadBlockManager` is that bookkeeping for one chip.  It owns no
NAND state itself; :class:`~repro.ftl.base.BaseFtl` consults it when
retiring blocks and feeds replacement spares back into its free pool.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterable, List, Optional, Set


class BadBlockManager:
    """Factory + grown bad-block table with a spare-block reserve.

    Args:
        spare_blocks: chip-local block ids held back as replacements
            (handed out FIFO as blocks are retired).
        factory_bad: chip-local block ids bad from the factory.  They
            are recorded here for the table; the FTL is responsible
            for keeping them out of its allocation pools (see
            :meth:`repro.ftl.base.BaseFtl.mark_factory_bad`).
    """

    def __init__(self, spare_blocks: Iterable[int] = (),
                 factory_bad: Iterable[int] = ()) -> None:
        self._spares: Deque[int] = deque(spare_blocks)
        self.initial_spares = len(self._spares)
        self.factory_bad: Set[int] = set(factory_bad)
        self.grown: List[int] = []

    # ------------------------------------------------------------------

    @property
    def spares_remaining(self) -> int:
        """Replacement blocks still available."""
        return len(self._spares)

    @property
    def spares_consumed(self) -> int:
        """Replacement blocks already handed out."""
        return self.initial_spares - len(self._spares)

    @property
    def exhausted(self) -> bool:
        """True once the spare reserve is empty."""
        return not self._spares

    def is_bad(self, block: int) -> bool:
        """Whether ``block`` is in the bad-block table."""
        return block in self.factory_bad or block in self.grown

    # ------------------------------------------------------------------

    def _take_spare(self) -> Optional[int]:
        return self._spares.popleft() if self._spares else None

    def retire(self, block: int) -> Optional[int]:
        """Record ``block`` as grown bad; returns a replacement spare.

        Returns None when the reserve is exhausted — the caller must
        then degrade the device to read-only mode.
        """
        if block not in self.grown:
            self.grown.append(block)
        return self._take_spare()

    def mark_factory_bad(self, block: int) -> Optional[int]:
        """Record a factory bad block; returns a replacement spare
        (None when the reserve cannot cover it)."""
        self.factory_bad.add(block)
        return self._take_spare()

    def __repr__(self) -> str:
        return (f"BadBlockManager(spares={len(self._spares)}/"
                f"{self.initial_spares}, factory={sorted(self.factory_bad)}, "
                f"grown={self.grown})")
