"""Measured runs with runtime fault injection.

:func:`run_fault_workload` mirrors
:func:`repro.experiments.runner.run_workload` — same preconditioning,
same measured-phase counter deltas — but arms a
:class:`~repro.faults.plan.FaultPlan` for the measured phase.  The
warmup stays fault-free: the paper's evaluation methodology measures a
preconditioned device, and a spare consumed during the fill would make
campaigns at different rates start from different states.

:func:`run_powerloss_resume` runs a workload through one or more
scheduled power cuts, recovering and resuming after each — the
runtime equivalent of the reboot studies in
:mod:`repro.experiments.recovery`, but continuing the *same* workload
instead of inspecting a dead device.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.experiments.runner import (
    ExperimentConfig,
    RunResult,
    _snapshot,
    begin_measured_phase,
    build_system,
    coerce_scenario,
    scenario_host,
    warmup_device,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.faults.recovery import PowerLossRecovery, recover_after_power_loss
from repro.scenarios.base import CLOSED, Scenario
from repro.sim.host import StreamOp
from repro.sim.powerloss import ScheduledPowerLoss


def _warmed_system(ftl_name: str, scenario: Scenario, config,
                   max_events, warmup_span,
                   plan: Optional[FaultPlan]):
    """Build + precondition a system, returning it ready to measure."""
    config = config or ExperimentConfig()
    sim, array, buffer, ftl, controller = build_system(ftl_name, config)

    if plan is not None:
        for chip, block in plan.factory_bad:
            ftl.mark_factory_bad(chip, block)

    warmup_device(sim, controller, ftl, config,
                  footprint=scenario.footprint,
                  warmup_span=warmup_span, max_events=max_events)
    baseline, measured_stats = begin_measured_phase(controller, ftl,
                                                    config)
    controller.ensure_fault_stats()
    ftl.fault_stats = measured_stats.faults
    if ftl.degraded and not controller.read_only:
        # The factory bad-block table alone exhausted the reserve.
        controller._enter_read_only()
    return sim, ftl, controller, config, baseline, measured_stats


def _finish(ftl_name, sim, ftl, baseline, measured_stats) -> RunResult:
    final = _snapshot(ftl)
    deltas = {key: final[key] - baseline.get(key, 0) for key in final}
    return RunResult(
        ftl_name=ftl_name,
        stats=measured_stats,
        counters=deltas,
        events=sim.processed,
        logical_pages=ftl.logical_pages,
    )


def run_fault_workload(
    *,
    ftl_name: str,
    streams: Optional[Sequence[Sequence[StreamOp]]] = None,
    scenario: Any = None,
    plan: FaultPlan,
    config: Optional[ExperimentConfig] = None,
    max_events: Optional[int] = None,
    warmup_span: Optional[int] = None,
) -> RunResult:
    """Precondition fault-free, then run one workload under ``plan``.

    The workload comes from ``scenario`` (a
    :class:`~repro.scenarios.base.Scenario` or spec dict) or legacy
    ``streams`` — exactly one of the two.

    The returned :class:`~repro.experiments.runner.RunResult` carries
    the measured phase's :class:`~repro.sim.stats.FaultStats` in
    ``stats.faults`` (always attached, even for a plan that injects
    nothing — a campaign's zero-rate baseline reports zeros, not
    None).
    """
    workload = coerce_scenario(streams, scenario, "run_fault_workload")
    sim, ftl, controller, config, baseline, measured_stats = \
        _warmed_system(ftl_name, workload, config, max_events,
                       warmup_span, plan)
    if plan.enabled:
        controller.attach_fault_injector(
            FaultInjector(plan, page_size=config.geometry.page_size))

    host = scenario_host(sim, controller, workload)
    host.start()
    sim.run(max_events=max_events)
    return _finish(ftl_name, sim, ftl, baseline, measured_stats)


def run_powerloss_resume(
    *,
    ftl_name: str,
    streams: Optional[Sequence[Sequence[StreamOp]]] = None,
    scenario: Any = None,
    cut_offsets: Sequence[float],
    plan: Optional[FaultPlan] = None,
    config: Optional[ExperimentConfig] = None,
    max_events: Optional[int] = None,
    warmup_span: Optional[int] = None,
) -> Tuple[RunResult, List[PowerLossRecovery]]:
    """Run a workload through scheduled power cuts, recovering each.

    ``cut_offsets`` are seconds after the measured phase starts; each
    cut halts the simulation, :func:`recover_after_power_loss` brings
    the device back, the host re-issues its unfinished streams, and
    the next cut (if any) is armed.  An optional ``plan`` additionally
    arms runtime fault injection for the whole measured phase.

    Only closed-mode scenarios support resumption (an open-loop trace
    has no retry semantics for an op lost to a power cut).

    Returns the measured-phase result plus one
    :class:`~repro.faults.recovery.PowerLossRecovery` per fired cut
    (a cut scheduled after the workload finishes never fires).
    """
    if not cut_offsets:
        raise ValueError("cut_offsets must not be empty")
    workload = coerce_scenario(streams, scenario,
                               "run_powerloss_resume")
    if workload.mode != CLOSED:
        raise ValueError(
            "run_powerloss_resume() needs a closed-mode scenario: "
            "open-loop replay cannot retry an op lost to a power cut")
    sim, ftl, controller, config, baseline, measured_stats = \
        _warmed_system(ftl_name, workload, config, max_events,
                       warmup_span, plan)
    if plan is not None and plan.enabled:
        controller.attach_fault_injector(
            FaultInjector(plan, page_size=config.geometry.page_size))

    host = scenario_host(sim, controller, workload)
    power = ScheduledPowerLoss(
        sim, controller,
        at_times=[sim.now + offset for offset in cut_offsets])
    host.start()

    recoveries: List[PowerLossRecovery] = []
    while True:
        sim.run(max_events=max_events)
        if len(power.reports) <= len(recoveries):
            break  # ran to completion: no new cut fired
        report = power.reports[len(recoveries)]
        recoveries.append(recover_after_power_loss(controller, report))
        host.resume()
        power.arm_next()
        # Kick the drained device back into motion: the resumed
        # streams arrive via events, but redrive/salvage work must
        # start even on chips no stream touches.
        controller._pump()
    power.cancel()
    return (_finish(ftl_name, sim, ftl, baseline, measured_stats),
            recoveries)
