"""Rate limiting and backpressure-aware admission control.

Two complementary mechanisms gate the flow from submission queues into
the storage controller:

* :class:`TokenBucket` — a per-tenant *rate* contract: pages per
  second with a burst allowance.  A throttled tenant's queue is simply
  ineligible for arbitration until its bucket refills; other tenants
  are unaffected.
* :class:`AdmissionGate` — a *device* contract: bound the number of
  dispatched-but-incomplete commands and, optionally, the controller's
  write-admission backlog.  Without this bound the submission queues
  would drain straight into the controller's FIFO admission queue and
  arbitration order would stop mattering; with it, backlog waits in
  the per-tenant queues where the arbiter can reorder service.

Both are pure bookkeeping over the simulation clock: deterministic,
no events of their own.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.controller import StorageController

#: Token-comparison tolerance: incremental refill accumulates float
#: error, and a shortfall below this produces a wait time too small to
#: advance the simulation clock (an infinite same-instant wake loop).
#: At realistic rates this is well under a picosecond of refill.
TOKEN_EPSILON = 1e-9


class TokenBucket:
    """Pages-per-second token bucket with a burst allowance.

    Args:
        rate: sustained refill rate in pages per second.
        burst: bucket capacity in pages (the largest instantaneous
            burst).  A command costing more than ``burst`` pages is
            admitted once the bucket is full, with the overdraft
            repaid from future refill — long-run throughput still
            converges to ``rate``.
    """

    def __init__(self, rate: float, burst: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        if burst <= 0:
            raise ValueError(f"burst must be positive, got {burst}")
        self.rate = rate
        self.burst = burst
        self._tokens = float(burst)
        self._last = 0.0
        self.throttled_decisions = 0

    def _refill(self, now: float) -> None:
        if now > self._last:
            self._tokens = min(self.burst,
                               self._tokens + (now - self._last)
                               * self.rate)
            self._last = now

    @property
    def tokens(self) -> float:
        """Current token level (may be negative after an overdraft)."""
        return self._tokens

    def wait_time(self, cost: float, now: float) -> float:
        """Seconds until a ``cost``-page command may be admitted.

        0.0 means admissible right now.  The requirement is
        ``tokens >= min(cost, burst)``, so oversized commands wait for
        a full bucket rather than forever.
        """
        self._refill(now)
        need = min(cost, self.burst)
        if self._tokens >= need - TOKEN_EPSILON:
            return 0.0
        self.throttled_decisions += 1
        return (need - self._tokens) / self.rate

    def consume(self, cost: float, now: float) -> None:
        """Spend ``cost`` pages (caller checked :meth:`wait_time`)."""
        self._refill(now)
        self._tokens -= cost


class AdmissionGate:
    """Caps in-flight work between the QoS front-end and the device.

    Args:
        controller: the storage controller being fed.
        max_outstanding: dispatched commands that may be incomplete at
            once (completion for a write is buffer admission, for a
            read the last page read).  None removes the bound.
        max_pending_admissions: additional cap on the controller's
            write-admission backlog; dispatch pauses while
            ``controller.pending_admissions`` is at or above it.

    Deadlock safety: whenever :meth:`can_admit` is False, at least one
    previously dispatched request is incomplete, so a completion
    callback is guaranteed to arrive and re-open the gate.
    """

    def __init__(self, controller: StorageController,
                 max_outstanding: Optional[int] = 8,
                 max_pending_admissions: Optional[int] = None) -> None:
        if max_outstanding is not None and max_outstanding <= 0:
            raise ValueError(
                f"max_outstanding must be positive, got {max_outstanding}")
        if max_pending_admissions is not None \
                and max_pending_admissions <= 0:
            raise ValueError(
                f"max_pending_admissions must be positive, "
                f"got {max_pending_admissions}")
        self.controller = controller
        self.max_outstanding = max_outstanding
        self.max_pending_admissions = max_pending_admissions
        self.outstanding = 0
        self.blocked_decisions = 0

    def can_admit(self) -> bool:
        """Whether one more command may be dispatched right now."""
        if self.max_outstanding is not None \
                and self.outstanding >= self.max_outstanding:
            self.blocked_decisions += 1
            return False
        if self.max_pending_admissions is not None \
                and self.controller.pending_admissions \
                >= self.max_pending_admissions:
            self.blocked_decisions += 1
            return False
        return True

    def note_dispatch(self) -> None:
        """A command was submitted to the controller."""
        self.outstanding += 1

    def note_complete(self) -> None:
        """A previously dispatched command completed."""
        if self.outstanding <= 0:
            raise RuntimeError("completion without a dispatch")
        self.outstanding -= 1
