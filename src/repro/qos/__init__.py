"""Multi-tenant QoS front-end: queues, arbitration, SLO accounting.

A host-interface layer in front of the storage controller, modelled on
the NVMe submission-queue architecture: every tenant owns a submission
queue (:mod:`repro.qos.queues`), a pluggable arbiter picks which
queue the device serves next (:mod:`repro.qos.arbiter`), token buckets
and an admission gate keep backlog in the queues where arbitration can
act on it (:mod:`repro.qos.throttle`), and a per-tenant accountant
turns completions into latency percentiles and SLO-violation counts
(:mod:`repro.qos.slo`).

The layer is strictly opt-in: nothing here runs unless a
:class:`~repro.qos.host.MultiTenantHost` (or an explicitly attached
:class:`~repro.qos.slo.SloAccountant`) is put in front of the
controller, and untagged requests behave exactly as before.

See ``docs/QOS.md`` for the design discussion and
``examples/multi_tenant.py`` for a quickstart.
"""

from repro.qos.arbiter import (
    ARBITERS,
    Arbiter,
    DeficitRoundRobinArbiter,
    FifoArbiter,
    RoundRobinArbiter,
    WeightedRoundRobinArbiter,
    make_arbiter,
)
from repro.qos.host import MultiTenantHost, TenantSpec
from repro.qos.queues import QueuedCommand, SubmissionQueue
from repro.qos.runner import (
    QosRunResult,
    run_qos_workload,
    tenant_table_rows,
)
from repro.qos.slo import SloAccountant, SloTarget, TenantAccount
from repro.qos.throttle import AdmissionGate, TokenBucket

__all__ = [
    "ARBITERS",
    "Arbiter",
    "FifoArbiter",
    "RoundRobinArbiter",
    "WeightedRoundRobinArbiter",
    "DeficitRoundRobinArbiter",
    "make_arbiter",
    "SubmissionQueue",
    "QueuedCommand",
    "TokenBucket",
    "AdmissionGate",
    "SloTarget",
    "TenantAccount",
    "SloAccountant",
    "TenantSpec",
    "MultiTenantHost",
    "QosRunResult",
    "run_qos_workload",
    "tenant_table_rows",
]
