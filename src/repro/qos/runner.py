"""Measured multi-tenant runs for the QoS experiments.

Mirrors :func:`repro.experiments.runner.run_workload` — same system
assembly, same sequential-fill preconditioning, same measured-phase
counter deltas — but feeds the device through the
:class:`~repro.qos.host.MultiTenantHost` and reports *per-tenant*
outcomes instead of one aggregate.  The engine executes these runs as
``qos_workload`` cells, so the full PR-1 machinery (process-pool
fan-out, content-addressed caching, byte-identical serial/parallel
output) applies unchanged.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence

from repro.core.flexftl import FlexFtl
from repro.experiments.runner import ExperimentConfig, build_system
from repro.qos.host import MultiTenantHost, TenantSpec
from repro.sim.host import ClosedLoopHost
from repro.sim.stats import SimStats
from repro.workloads.synthetic import sequential_fill


@dataclasses.dataclass
class QosRunResult:
    """Outcome of one measured multi-tenant run.

    ``tenants`` maps tenant name to its accounting summary (counts,
    violation counters, latency percentiles, queue-depth statistics);
    ``totals`` carries the run-wide numbers a
    :class:`~repro.experiments.runner.RunResult` would have reported.
    """

    ftl_name: str
    arbiter: str
    tenants: Dict[str, Dict[str, Any]]
    totals: Dict[str, Any]

    def tenant(self, name: str) -> Dict[str, Any]:
        """One tenant's summary (KeyError for unknown tenants)."""
        return self.tenants[name]

    def write_p99(self, name: str) -> float:
        """Shorthand: a tenant's p99 write latency in seconds."""
        return float(self.tenants[name]["write_latency"]["p99"])

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot, invertible via :meth:`from_dict`."""
        return {
            "ftl_name": self.ftl_name,
            "arbiter": self.arbiter,
            "tenants": self.tenants,
            "totals": self.totals,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "QosRunResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            ftl_name=str(data["ftl_name"]),
            arbiter=str(data["arbiter"]),
            tenants={str(name): dict(summary)
                     for name, summary in data["tenants"].items()},
            totals=dict(data["totals"]),
        )


def run_qos_workload(
    *,
    ftl_name: str,
    tenants: Sequence[TenantSpec],
    arbiter: str = "fifo",
    config: Optional[ExperimentConfig] = None,
    max_outstanding: Optional[int] = 8,
    max_pending_admissions: Optional[int] = None,
    max_events: Optional[int] = None,
    warmup_span: Optional[int] = None,
) -> QosRunResult:
    """Precondition, run one multi-tenant workload, report per tenant.

    Args:
        ftl_name: a :data:`~repro.experiments.runner.FTL_REGISTRY` key.
        tenants: tenant specs (workload streams + QoS contracts).
        arbiter: arbitration policy registry name.
        config: system configuration.
        max_outstanding: admission-gate in-flight bound.
        max_pending_admissions: optional write-backlog bound.
        max_events: optional simulation event cap (safety backstop).
        warmup_span: logical pages to precondition (defaults to the
            highest page any tenant touches).

    Returns:
        A :class:`QosRunResult` covering only the measured phase.
    """
    config = config or ExperimentConfig()
    sim, _array, _buffer, ftl, controller = build_system(ftl_name,
                                                         config)

    if config.warmup:
        if warmup_span is None:
            touched = [op.lpn + op.npages for spec in tenants
                       for stream in spec.streams for op in stream]
            warmup_span = min(ftl.logical_pages,
                              max(touched) if touched else 1)
        fill = sequential_fill(warmup_span)
        warmup_host = ClosedLoopHost(sim, controller, [fill])
        warmup_host.start()
        sim.run(max_events=max_events)
        if isinstance(ftl, FlexFtl):
            # Same reset as run_workload: measurement starts from the
            # paper's initial LSB-quota state.
            ftl.quota.reset()

    baseline = dict(ftl.counters())
    measured_stats = SimStats(page_size=config.geometry.page_size,
                              bandwidth_window=config.bandwidth_window)
    controller.stats = measured_stats

    host = MultiTenantHost(
        sim, controller, tenants, arbiter=arbiter,
        max_outstanding=max_outstanding,
        max_pending_admissions=max_pending_admissions)
    host.start()
    sim.run(max_events=max_events)

    final = dict(ftl.counters())
    deltas = {key: final[key] - baseline.get(key, 0) for key in final}

    summaries = host.accountant.summary()
    per_tenant: Dict[str, Dict[str, Any]] = {}
    for index, spec in enumerate(host.tenants):
        queue = host.queues[index]
        bucket = host.buckets[index]
        summary = dict(summaries.get(spec.name, {}))
        summary["queue"] = {
            "enqueued": queue.enqueued,
            "issued": queue.issued,
            "max_depth": queue.max_depth_seen,
            "mean_depth": queue.mean_depth(),
        }
        summary["weight"] = spec.weight
        summary["throttled_decisions"] = (
            bucket.throttled_decisions if bucket is not None else 0)
        per_tenant[spec.name] = summary

    totals: Dict[str, Any] = {
        "events": sim.processed,
        "elapsed": measured_stats.elapsed,
        "completed_requests": measured_stats.completed_requests,
        "iops": (measured_stats.iops()
                 if measured_stats.completed_requests else float("nan")),
        "issued": host.issued,
        "gate_blocked_decisions": host.gate.blocked_decisions,
        "counters": deltas,
        "logical_pages": ftl.logical_pages,
    }
    return QosRunResult(ftl_name=ftl_name, arbiter=arbiter,
                        tenants=per_tenant, totals=totals)


def tenant_table_rows(result: QosRunResult,
                      unit: float = 1e-3) -> List[List[str]]:
    """Per-tenant report rows (latency columns in ``unit`` seconds)."""
    rows: List[List[str]] = []
    for name, summary in result.tenants.items():
        write = summary["write_latency"]
        read = summary["read_latency"]
        rows.append([
            name,
            str(summary["completed_writes"]),
            f"{float(write['p50']) / unit:.3f}",
            f"{float(write['p99']) / unit:.3f}",
            str(summary["completed_reads"]),
            f"{float(read['p99']) / unit:.3f}",
            str(int(summary["read_violations"])
                + int(summary["write_violations"])),
        ])
    return rows
