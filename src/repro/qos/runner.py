"""Measured multi-tenant runs for the QoS experiments.

Mirrors :func:`repro.experiments.runner.run_workload` — same system
assembly, same sequential-fill preconditioning, same measured-phase
counter deltas — but feeds the device through the
:class:`~repro.qos.host.MultiTenantHost` and reports *per-tenant*
outcomes instead of one aggregate.  The engine executes these runs as
``qos_workload`` cells, so the full PR-1 machinery (process-pool
fan-out, content-addressed caching, byte-identical serial/parallel
output) applies unchanged.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence

from repro.experiments.runner import (
    ExperimentConfig,
    begin_measured_phase,
    build_system,
    warmup_device,
)
from repro.qos.host import MultiTenantHost, TenantSpec
from repro.scenarios.base import Scenario, as_scenario


@dataclasses.dataclass
class QosRunResult:
    """Outcome of one measured multi-tenant run.

    ``tenants`` maps tenant name to its accounting summary (counts,
    violation counters, latency percentiles, queue-depth statistics);
    ``totals`` carries the run-wide numbers a
    :class:`~repro.experiments.runner.RunResult` would have reported.
    """

    ftl_name: str
    arbiter: str
    tenants: Dict[str, Dict[str, Any]]
    totals: Dict[str, Any]

    def tenant(self, name: str) -> Dict[str, Any]:
        """One tenant's summary (KeyError for unknown tenants)."""
        return self.tenants[name]

    def write_p99(self, name: str) -> float:
        """Shorthand: a tenant's p99 write latency in seconds."""
        return float(self.tenants[name]["write_latency"]["p99"])

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot, invertible via :meth:`from_dict`."""
        return {
            "ftl_name": self.ftl_name,
            "arbiter": self.arbiter,
            "tenants": self.tenants,
            "totals": self.totals,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "QosRunResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            ftl_name=str(data["ftl_name"]),
            arbiter=str(data["arbiter"]),
            tenants={str(name): dict(summary)
                     for name, summary in data["tenants"].items()},
            totals=dict(data["totals"]),
        )


def tenant_specs_from_scenario(scenario: Scenario
                               ) -> List[TenantSpec]:
    """Materialize a tenant-tagged scenario into QoS tenant specs.

    Every op must carry a tenant tag (e.g. a
    :class:`~repro.scenarios.generator.WorkloadScenario` with tenant
    bindings); binding contracts — weight, rate, SLOs — carry over.
    A :class:`~repro.qos.host.TenantSpec` holds streams as tuples, so
    this view necessarily materializes the scenario.
    """
    grouped = scenario.tenant_streams()
    bindings = {binding.name: binding
                for binding in scenario.tenant_bindings()}
    if not grouped:
        raise ValueError(
            f"scenario {scenario.name!r} declares no tenants; a "
            f"multi-tenant run needs tenant bindings or tagged ops")
    specs: List[TenantSpec] = []
    for name, streams in grouped.items():
        binding = bindings.get(name)
        if binding is None:
            specs.append(TenantSpec.make(name, streams))
        else:
            specs.append(TenantSpec.make(
                name, streams, weight=binding.weight,
                rate_pages_per_sec=binding.rate_pages_per_sec,
                read_slo=binding.read_slo,
                write_slo=binding.write_slo))
    return specs


def run_qos_workload(
    *,
    ftl_name: str,
    tenants: Optional[Sequence[TenantSpec]] = None,
    scenario: Any = None,
    arbiter: str = "fifo",
    config: Optional[ExperimentConfig] = None,
    max_outstanding: Optional[int] = 8,
    max_pending_admissions: Optional[int] = None,
    max_events: Optional[int] = None,
    warmup_span: Optional[int] = None,
) -> QosRunResult:
    """Precondition, run one multi-tenant workload, report per tenant.

    Args:
        ftl_name: a :data:`~repro.experiments.runner.FTL_REGISTRY` key.
        tenants: tenant specs (workload streams + QoS contracts).
            Mutually exclusive with ``scenario``.
        scenario: a tenant-tagged
            :class:`~repro.scenarios.base.Scenario` (or spec dict);
            tenant specs are materialized from its bindings via
            :func:`tenant_specs_from_scenario`.
        arbiter: arbitration policy registry name.
        config: system configuration.
        max_outstanding: admission-gate in-flight bound.
        max_pending_admissions: optional write-backlog bound.
        max_events: optional simulation event cap (safety backstop).
        warmup_span: logical pages to precondition (defaults to the
            highest page any tenant touches).

    Returns:
        A :class:`QosRunResult` covering only the measured phase.
    """
    if (tenants is None) == (scenario is None):
        raise TypeError(
            "run_qos_workload() takes exactly one of tenants= or "
            "scenario=")
    if scenario is not None:
        tenants = tenant_specs_from_scenario(as_scenario(scenario))
    config = config or ExperimentConfig()
    sim, _array, _buffer, ftl, controller = build_system(ftl_name,
                                                         config)

    touched = [op.lpn + op.npages for spec in tenants
               for stream in spec.streams for op in stream]
    warmup_device(sim, controller, ftl, config,
                  footprint=max(touched) if touched else 1,
                  warmup_span=warmup_span, max_events=max_events)
    baseline, measured_stats = begin_measured_phase(controller, ftl,
                                                    config)

    host = MultiTenantHost(
        sim, controller, tenants, arbiter=arbiter,
        max_outstanding=max_outstanding,
        max_pending_admissions=max_pending_admissions)
    host.start()
    sim.run(max_events=max_events)

    final = dict(ftl.counters())
    deltas = {key: final[key] - baseline.get(key, 0) for key in final}

    summaries = host.accountant.summary()
    per_tenant: Dict[str, Dict[str, Any]] = {}
    for index, spec in enumerate(host.tenants):
        queue = host.queues[index]
        bucket = host.buckets[index]
        summary = dict(summaries.get(spec.name, {}))
        summary["queue"] = {
            "enqueued": queue.enqueued,
            "issued": queue.issued,
            "max_depth": queue.max_depth_seen,
            "mean_depth": queue.mean_depth(),
        }
        summary["weight"] = spec.weight
        summary["throttled_decisions"] = (
            bucket.throttled_decisions if bucket is not None else 0)
        per_tenant[spec.name] = summary

    totals: Dict[str, Any] = {
        "events": sim.processed,
        "elapsed": measured_stats.elapsed,
        "completed_requests": measured_stats.completed_requests,
        "iops": (measured_stats.iops()
                 if measured_stats.completed_requests else float("nan")),
        "issued": host.issued,
        "gate_blocked_decisions": host.gate.blocked_decisions,
        "counters": deltas,
        "logical_pages": ftl.logical_pages,
    }
    return QosRunResult(ftl_name=ftl_name, arbiter=arbiter,
                        tenants=per_tenant, totals=totals)


def tenant_table_rows(result: QosRunResult,
                      unit: float = 1e-3) -> List[List[str]]:
    """Per-tenant report rows (latency columns in ``unit`` seconds)."""
    rows: List[List[str]] = []
    for name, summary in result.tenants.items():
        write = summary["write_latency"]
        read = summary["read_latency"]
        rows.append([
            name,
            str(summary["completed_writes"]),
            f"{float(write['p50']) / unit:.3f}",
            f"{float(write['p99']) / unit:.3f}",
            str(summary["completed_reads"]),
            f"{float(read['p99']) / unit:.3f}",
            str(int(summary["read_violations"])
                + int(summary["write_violations"])),
        ])
    return rows
