"""NVMe-style per-tenant submission queues.

Each tenant owns one :class:`SubmissionQueue` in front of the storage
controller.  A host enqueues ready-to-issue requests into its tenant's
queue; the arbiter (:mod:`repro.qos.arbiter`) decides which queue's
head command the device fetches next.  Keeping the backlog *in front
of* the controller — instead of letting it pile into the controller's
FIFO admission queue — is what makes arbitration policy matter: once a
request is submitted to the controller its service order is fixed.

Queues record a queue-depth timeline (sampled on every push and pop)
so per-tenant backlog behaviour can be reported next to latency
percentiles (:mod:`repro.qos.slo`).
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.sim.queues import Request


@dataclasses.dataclass(slots=True)
class QueuedCommand:
    """One submission-queue entry.

    Attributes:
        request: the host request, already tagged with the tenant id.
        seq: global arrival sequence number across *all* queues; the
            FIFO arbiter replays this order, which is exactly what a
            single shared queue would have done.
        enqueued_at: submission-queue entry time (the request's
            ``time`` field carries the same value, so completion
            latency includes the queueing delay).
    """

    request: Request
    seq: int
    enqueued_at: float


class SubmissionQueue:
    """FIFO of commands one tenant has submitted but not yet issued.

    Args:
        tenant: owning tenant id (stamped on the depth timeline).
        max_depth: optional queue-depth bound; pushing beyond it
            raises ``OverflowError``.  Closed-loop tenants are bounded
            by their stream count and never hit this; open-loop trace
            tenants may use it to model a fixed-size NVMe queue.
    """

    def __init__(self, tenant: str,
                 max_depth: Optional[int] = None) -> None:
        if max_depth is not None and max_depth <= 0:
            raise ValueError(
                f"max_depth must be positive, got {max_depth}")
        self.tenant = tenant
        self.max_depth = max_depth
        self.enqueued = 0
        self.issued = 0
        self.max_depth_seen = 0
        self._fifo: Deque[QueuedCommand] = deque()
        #: (time, depth) samples, one per push/pop, in time order.
        self.depth_samples: List[Tuple[float, int]] = []

    def __len__(self) -> int:
        return len(self._fifo)

    @property
    def is_empty(self) -> bool:
        """Whether there is nothing to arbitrate for this tenant."""
        return not self._fifo

    @property
    def head(self) -> QueuedCommand:
        """The oldest queued command (raises ``IndexError`` if empty)."""
        return self._fifo[0]

    def push(self, request: Request, seq: int, now: float) -> QueuedCommand:
        """Enqueue one command at time ``now``."""
        if self.max_depth is not None \
                and len(self._fifo) >= self.max_depth:
            raise OverflowError(
                f"submission queue {self.tenant!r} is full "
                f"(max_depth={self.max_depth})")
        command = QueuedCommand(request=request, seq=seq,
                                enqueued_at=now)
        self._fifo.append(command)
        self.enqueued += 1
        depth = len(self._fifo)
        if depth > self.max_depth_seen:
            self.max_depth_seen = depth
        self.depth_samples.append((now, depth))
        return command

    def pop(self, now: float) -> QueuedCommand:
        """Dequeue the head command (the arbiter selected this queue)."""
        if not self._fifo:
            raise IndexError(
                f"submission queue {self.tenant!r} is empty")
        command = self._fifo.popleft()
        self.issued += 1
        self.depth_samples.append((now, len(self._fifo)))
        return command

    def mean_depth(self) -> float:
        """Time-weighted mean queue depth over the sampled interval.

        0.0 when fewer than two samples exist (no interval to weight).
        """
        samples = self.depth_samples
        if len(samples) < 2:
            return 0.0
        first_time = samples[0][0]
        last_time = samples[-1][0]
        span = last_time - first_time
        if span <= 0.0:
            # All activity at one instant: fall back to a plain mean.
            return sum(d for _, d in samples) / len(samples)
        weighted = 0.0
        for (t0, depth), (t1, _) in zip(samples, samples[1:]):
            weighted += depth * (t1 - t0)
        return weighted / span
