"""Per-tenant service-level accounting.

Aggregate IOPS hides exactly the thing a multi-tenant study cares
about: *which* tenant absorbed the queueing delay.  The
:class:`SloAccountant` keeps per-tenant read/write latency samples,
counts violations against optional per-tenant latency targets, and
summarises each tenant with the p50/p95/p99 machinery from
:mod:`repro.metrics.latency`.

It can ride on any host model: attach it to a
:class:`~repro.sim.controller.StorageController` via :meth:`attach`
and every completed request carrying a ``tenant`` tag is recorded —
the :class:`~repro.qos.host.MultiTenantHost` does this for you, but a
plain :class:`~repro.sim.host.TraceReplayHost` replaying a
tenant-tagged trace works just as well.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional

from repro.metrics.latency import latency_summary
from repro.sim.controller import StorageController
from repro.sim.queues import (
    REQUEST_FAILED,
    REQUEST_RECOVERED,
    Request,
    RequestKind,
)


@dataclasses.dataclass(frozen=True)
class SloTarget:
    """Per-tenant latency targets in seconds (None = untracked)."""

    read_latency: Optional[float] = None
    write_latency: Optional[float] = None


@dataclasses.dataclass
class TenantAccount:
    """Everything recorded for one tenant."""

    tenant: str
    target: SloTarget = dataclasses.field(default_factory=SloTarget)
    completed_reads: int = 0
    completed_writes: int = 0
    read_pages: int = 0
    written_pages: int = 0
    read_violations: int = 0
    write_violations: int = 0
    #: requests that failed outright — rejected in read-only degraded
    #: mode or reads whose data was lost (:mod:`repro.faults`)
    failed_requests: int = 0
    #: requests served only after a fault-recovery ladder
    recovered_requests: int = 0
    first_arrival: Optional[float] = None
    last_completion: float = 0.0
    read_latencies: List[float] = dataclasses.field(default_factory=list)
    write_latencies: List[float] = dataclasses.field(default_factory=list)

    def record(self, request: Request, now: float) -> None:
        """Fold one completed request into the account.

        Failed requests are counted but excluded from the completion
        and latency statistics — a rejected write's instant turnaround
        would otherwise *improve* the tenant's percentiles.
        """
        if request.status == REQUEST_FAILED:
            self.failed_requests += 1
            if self.first_arrival is None \
                    or request.time < self.first_arrival:
                self.first_arrival = request.time
            return
        if request.status == REQUEST_RECOVERED:
            self.recovered_requests += 1
        latency = now - request.time
        if self.first_arrival is None \
                or request.time < self.first_arrival:
            self.first_arrival = request.time
        if now > self.last_completion:
            self.last_completion = now
        if request.kind is RequestKind.READ:
            self.completed_reads += 1
            self.read_pages += request.npages
            self.read_latencies.append(latency)
            target = self.target.read_latency
            if target is not None and latency > target:
                self.read_violations += 1
        else:
            self.completed_writes += 1
            self.written_pages += request.npages
            self.write_latencies.append(latency)
            target = self.target.write_latency
            if target is not None and latency > target:
                self.write_violations += 1

    @property
    def elapsed(self) -> float:
        """First arrival to last completion, 0.0 before any traffic."""
        if self.first_arrival is None:
            return 0.0
        return max(0.0, self.last_completion - self.first_arrival)

    def summary(self) -> Dict[str, object]:
        """JSON-safe per-tenant report (NaN percentiles when empty)."""
        elapsed = self.elapsed
        completed = self.completed_reads + self.completed_writes
        iops = completed / elapsed if elapsed > 0.0 else float("nan")
        return {
            "completed_reads": self.completed_reads,
            "completed_writes": self.completed_writes,
            "read_pages": self.read_pages,
            "written_pages": self.written_pages,
            "read_violations": self.read_violations,
            "write_violations": self.write_violations,
            "failed_requests": self.failed_requests,
            "recovered_requests": self.recovered_requests,
            "iops": iops,
            "read_latency": latency_summary(self.read_latencies),
            "write_latency": latency_summary(self.write_latencies),
        }


class _ChainedHook:
    """Two completion hooks in sequence, as a picklable object.

    A local closure would work but could not ride into a fleet
    snapshot; this class pickles along with the controller.
    """

    __slots__ = ("first", "second")

    def __init__(self, first, second) -> None:
        self.first = first
        self.second = second

    def __call__(self, request: Request, now: float) -> None:
        self.first(request, now)
        self.second(request, now)

    def __getstate__(self):
        return (self.first, self.second)

    def __setstate__(self, state) -> None:
        self.first, self.second = state


class SloAccountant:
    """Routes completed requests into per-tenant accounts.

    Args:
        targets: optional per-tenant latency targets; tenants not
            listed are still recorded, just without violation counts.

    Unknown tenants get an account on first sight, so the accountant
    needs no enrolment step.  Untagged requests (``tenant is None``)
    are ignored — single-host experiments stay invisible to it.
    """

    def __init__(self,
                 targets: Optional[Mapping[str, SloTarget]] = None) -> None:
        self.accounts: Dict[str, TenantAccount] = {}
        self._targets = dict(targets) if targets else {}
        for tenant, target in self._targets.items():
            self.accounts[tenant] = TenantAccount(tenant, target)

    def account(self, tenant: str) -> TenantAccount:
        """The (auto-created) account for one tenant."""
        existing = self.accounts.get(tenant)
        if existing is None:
            existing = TenantAccount(
                tenant, self._targets.get(tenant, SloTarget()))
            self.accounts[tenant] = existing
        return existing

    def record(self, request: Request, now: float) -> None:
        """Record one completed request (no-op when untagged)."""
        if request.tenant is None:
            return
        self.account(request.tenant).record(request, now)

    def attach(self, controller: StorageController) -> None:
        """Observe every completion via the controller's hook.

        Chains an already-installed hook rather than replacing it, so
        several observers can coexist.
        """
        previous = controller.completion_hook
        if previous is None:
            controller.completion_hook = self.record
            return
        controller.completion_hook = _ChainedHook(previous, self.record)

    def summary(self) -> Dict[str, Dict[str, object]]:
        """Per-tenant summaries, in tenant registration order."""
        return {tenant: account.summary()
                for tenant, account in self.accounts.items()}
