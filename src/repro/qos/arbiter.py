"""Submission-queue arbitration policies.

The arbiter answers one question, one command at a time: *given the
current submission-queue heads, which tenant does the device serve
next?*  Four policies are provided, mirroring the NVMe arbitration
ladder plus the classic fair-queueing upgrade:

``fifo``
    Global arrival order across all queues — byte-for-byte what a
    single shared queue would do.  This is the baseline every other
    policy is measured against: a bursty tenant's backlog sits in
    front of everyone else's commands.
``rr``
    Plain round-robin over non-empty queues: one command per tenant
    per turn, regardless of command size or configured weight.
``wrr``
    Weighted round-robin: tenant ``i`` may issue up to ``weight_i``
    commands per round.  Cheap, but counts commands, not pages, so a
    tenant issuing 8-page writes gets 8x the bandwidth of one issuing
    1-page writes at equal weight.
``drr``
    Deficit round-robin (Shreedhar & Varghese): each visit credits a
    tenant's deficit counter with ``quantum * weight`` *pages* and
    serves while the head command's page cost fits.  Fair in pages,
    which is the currency the flash back-end actually spends.

Arbiters are deterministic and allocation-free per decision; ties
break by tenant registration order.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.qos.queues import SubmissionQueue

#: Default DRR quantum in pages, credited per visit and scaled by the
#: tenant's weight.  Comparable to the largest common request size so
#: a standard-weight tenant can issue one large command per round.
DEFAULT_QUANTUM = 8


class Arbiter:
    """Base class: owns the tenant order and per-tenant weights."""

    #: registry name, set by subclasses.
    name = "base"

    def __init__(self, tenants: Sequence[str],
                 weights: Optional[Sequence[float]] = None) -> None:
        if not tenants:
            raise ValueError("arbiter needs at least one tenant")
        if len(set(tenants)) != len(tenants):
            raise ValueError(f"duplicate tenant names in {tenants!r}")
        if weights is None:
            weights = [1.0] * len(tenants)
        if len(weights) != len(tenants):
            raise ValueError(
                f"{len(tenants)} tenants but {len(weights)} weights")
        for weight in weights:
            if weight <= 0:
                raise ValueError(
                    f"weights must be positive, got {weight}")
        self.tenants = list(tenants)
        self.weights = [float(w) for w in weights]

    def select(self, queues: Sequence[SubmissionQueue],
               eligible: Sequence[bool]) -> Optional[int]:
        """Index of the queue to serve next, or None if none eligible.

        ``eligible[i]`` is False for queues that are empty or whose
        tenant is currently rate-throttled; the arbiter only ever
        returns an eligible index.  Calling ``select`` commits the
        choice: stateful policies update their counters assuming the
        head command of the returned queue is issued.
        """
        raise NotImplementedError

    def note_empty(self, index: int) -> None:
        """Hook: queue ``index`` ran empty after a pop (no-op here)."""


class FifoArbiter(Arbiter):
    """Serve the eligible head command that arrived first overall."""

    name = "fifo"

    def select(self, queues: Sequence[SubmissionQueue],
               eligible: Sequence[bool]) -> Optional[int]:
        best: Optional[int] = None
        best_seq = -1
        for index, queue in enumerate(queues):
            if not eligible[index]:
                continue
            seq = queue.head.seq
            if best is None or seq < best_seq:
                best = index
                best_seq = seq
        return best


class RoundRobinArbiter(Arbiter):
    """One command per tenant per turn, skipping ineligible queues."""

    name = "rr"

    def __init__(self, tenants: Sequence[str],
                 weights: Optional[Sequence[float]] = None) -> None:
        super().__init__(tenants, weights)
        self._pos = 0

    def select(self, queues: Sequence[SubmissionQueue],
               eligible: Sequence[bool]) -> Optional[int]:
        n = len(queues)
        for offset in range(n):
            index = (self._pos + offset) % n
            if eligible[index]:
                self._pos = (index + 1) % n
                return index
        return None


class WeightedRoundRobinArbiter(Arbiter):
    """Up to ``weight_i`` commands for tenant ``i`` per round.

    Credits refresh by ``weight_i`` at each round boundary (a full
    cycle of the scan position), so fractional weights work: a tenant
    with weight 0.5 is served every other round.
    """

    name = "wrr"

    def __init__(self, tenants: Sequence[str],
                 weights: Optional[Sequence[float]] = None) -> None:
        super().__init__(tenants, weights)
        self._pos = 0
        self._credits = list(self.weights)

    def select(self, queues: Sequence[SubmissionQueue],
               eligible: Sequence[bool]) -> Optional[int]:
        if not any(eligible):
            return None
        n = len(queues)
        # A round adds at least min(weight) credit to every queue, so
        # any eligible queue is served within ceil(1/min_weight) + 1
        # rounds; the bound below can never be hit with the positive
        # weights the constructor enforces.
        min_weight = min(self.weights)
        max_rounds = int(1.0 / min_weight) + 2
        for _ in range(max_rounds * n + n):
            index = self._pos
            if eligible[index] and self._credits[index] >= 1.0:
                self._credits[index] -= 1.0
                return index
            self._pos = (index + 1) % n
            if self._pos == 0:
                for i in range(n):
                    self._credits[i] += self.weights[i]
        raise RuntimeError("WRR failed to make progress")  # pragma: no cover


class DeficitRoundRobinArbiter(Arbiter):
    """Deficit round-robin, fair in *pages* rather than commands."""

    name = "drr"

    def __init__(self, tenants: Sequence[str],
                 weights: Optional[Sequence[float]] = None,
                 quantum: int = DEFAULT_QUANTUM) -> None:
        super().__init__(tenants, weights)
        if quantum <= 0:
            raise ValueError(f"quantum must be positive, got {quantum}")
        self.quantum = quantum
        self._pos = 0
        #: pages each tenant may still spend this visit.
        self._deficit = [0.0] * len(self.tenants)
        #: whether the current position was already credited (serving
        #: several commands in one visit must not re-credit).
        self._credited = False

    def select(self, queues: Sequence[SubmissionQueue],
               eligible: Sequence[bool]) -> Optional[int]:
        if not any(eligible):
            return None
        n = len(queues)
        costs = [queues[i].head.request.npages if eligible[i] else None
                 for i in range(n)]
        max_cost = max(cost for cost in costs if cost is not None)
        min_credit = self.quantum * min(self.weights)
        # Every full cycle credits each eligible queue at least
        # min_credit pages, so some deficit reaches its head cost
        # within ceil(max_cost / min_credit) cycles.
        bound = (int(max_cost / min_credit) + 2) * n + n
        for _ in range(bound):
            index = self._pos
            cost = costs[index]
            if cost is not None:
                if not self._credited:
                    self._deficit[index] += \
                        self.quantum * self.weights[index]
                    self._credited = True
                if self._deficit[index] >= cost:
                    self._deficit[index] -= cost
                    return index
            self._pos = (index + 1) % n
            self._credited = False
        raise RuntimeError("DRR failed to make progress")  # pragma: no cover

    def note_empty(self, index: int) -> None:
        """Classic DRR: an emptied queue forfeits its leftover deficit."""
        self._deficit[index] = 0.0
        if self._pos == index:
            self._pos = (index + 1) % len(self.tenants)
            self._credited = False


#: name -> arbiter class, in documentation order.
ARBITERS: Dict[str, Callable[..., Arbiter]] = {
    FifoArbiter.name: FifoArbiter,
    RoundRobinArbiter.name: RoundRobinArbiter,
    WeightedRoundRobinArbiter.name: WeightedRoundRobinArbiter,
    DeficitRoundRobinArbiter.name: DeficitRoundRobinArbiter,
}


def make_arbiter(name: str, tenants: Sequence[str],
                 weights: Optional[Sequence[float]] = None,
                 **kwargs: object) -> Arbiter:
    """Instantiate an arbitration policy by registry name."""
    if name not in ARBITERS:
        raise KeyError(
            f"unknown arbiter {name!r}; choose from {sorted(ARBITERS)}")
    return ARBITERS[name](tenants, weights, **kwargs)
