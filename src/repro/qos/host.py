"""The multi-tenant QoS front-end host.

:class:`MultiTenantHost` is the piece that turns N independent
workloads into *contending* traffic: each tenant runs its own
closed-loop worker streams, but instead of submitting straight to the
controller, every ready request is enqueued into the tenant's
submission queue (:mod:`repro.qos.queues`).  A dispatch loop then
moves commands from queues to the device under three constraints:

1. the :class:`~repro.qos.throttle.AdmissionGate` bounds in-flight
   commands (backpressure: backlog waits *in the queues*, not in the
   controller FIFO);
2. per-tenant :class:`~repro.qos.throttle.TokenBucket` contracts make
   over-rate tenants ineligible until they refill;
3. the :class:`~repro.qos.arbiter.Arbiter` picks which eligible
   tenant's head command is issued next.

Completion events re-arm the loop; a tenant throttled on tokens gets a
timer wake-up at its refill time.  Everything is deterministic: no
randomness, ties broken by tenant registration order.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.qos.arbiter import Arbiter, make_arbiter
from repro.qos.queues import SubmissionQueue
from repro.qos.slo import SloAccountant, SloTarget
from repro.qos.throttle import AdmissionGate, TokenBucket
from repro.sim.controller import StorageController
from repro.sim.host import StreamOp
from repro.sim.kernel import Simulator
from repro.sim.queues import Request


@dataclasses.dataclass(frozen=True)
class TenantSpec:
    """One tenant's workload and service contract.

    Attributes:
        name: tenant id (stamped on every request it issues).
        streams: closed-loop worker streams, same shape the
            single-tenant :class:`~repro.sim.host.ClosedLoopHost`
            takes — any existing synthetic/zipf/benchmark generator
            output plugs in directly.
        weight: arbitration weight (used by ``wrr``/``drr``).
        rate_pages_per_sec: optional token-bucket rate contract.
        burst_pages: token-bucket capacity; defaults to one second's
            worth of tokens when only the rate is given.
        read_slo: optional per-request read-latency target (seconds)
            for violation counting.
        write_slo: optional per-request write-latency target.
        max_queue_depth: optional submission-queue depth bound.
    """

    name: str
    streams: Tuple[Tuple[StreamOp, ...], ...]
    weight: float = 1.0
    rate_pages_per_sec: Optional[float] = None
    burst_pages: Optional[float] = None
    read_slo: Optional[float] = None
    write_slo: Optional[float] = None
    max_queue_depth: Optional[int] = None

    @classmethod
    def make(cls, name: str, streams: Sequence[Sequence[StreamOp]],
             **kwargs: object) -> "TenantSpec":
        """Build a spec, normalising streams to hashable tuples."""
        return cls(name=name,
                   streams=tuple(tuple(s) for s in streams),
                   **kwargs)  # type: ignore[arg-type]

    @property
    def total_ops(self) -> int:
        """Operations across all of this tenant's streams."""
        return sum(len(stream) for stream in self.streams)

    def slo_target(self) -> SloTarget:
        """The accountant's target record for this tenant."""
        return SloTarget(read_latency=self.read_slo,
                         write_latency=self.write_slo)


class TenantCompletion:
    """Completion callback advancing one tenant stream.

    A plain class (not a lambda) so a host mid-run — callbacks on
    in-flight requests included — pickles into a fleet snapshot.
    """

    __slots__ = ("host", "tenant", "stream", "think")

    def __init__(self, host: "MultiTenantHost", tenant: int,
                 stream: int, think: float) -> None:
        self.host = host
        self.tenant = tenant
        self.stream = stream
        self.think = think

    def __call__(self, _req, _now) -> None:
        self.host._on_done(self.tenant, self.stream, self.think)

    def __getstate__(self):
        return (self.host, self.tenant, self.stream, self.think)

    def __setstate__(self, state) -> None:
        self.host, self.tenant, self.stream, self.think = state


class MultiTenantHost:
    """Multiplexes per-tenant closed-loop workloads through QoS queues.

    A :class:`~repro.observability.tracer.Tracer` attached via
    ``attach_qos`` plants ``_trace`` (class default ``None``) to record
    admissions and arbitration decisions.

    Args:
        sim: simulation kernel.
        controller: device front door.
        tenants: one :class:`TenantSpec` per tenant; names must be
            unique.
        arbiter: an :class:`~repro.qos.arbiter.Arbiter` instance or a
            registry name (``fifo``/``rr``/``wrr``/``drr``).  Named
            arbiters receive the tenants' weights automatically.
        max_outstanding: admission-gate bound on in-flight commands
            (see :class:`~repro.qos.throttle.AdmissionGate`).
        max_pending_admissions: optional extra bound on the
            controller's write-admission backlog.
        accountant: SLO accountant to record into; one is created
            (with the specs' targets) when omitted.
    """

    def __init__(
        self,
        sim: Simulator,
        controller: StorageController,
        tenants: Sequence[TenantSpec],
        arbiter: "Arbiter | str" = "fifo",
        max_outstanding: Optional[int] = 8,
        max_pending_admissions: Optional[int] = None,
        accountant: Optional[SloAccountant] = None,
    ) -> None:
        if not tenants:
            raise ValueError("MultiTenantHost needs at least one tenant")
        names = [spec.name for spec in tenants]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tenant names in {names!r}")
        self.sim = sim
        self.controller = controller
        self.tenants = list(tenants)
        if isinstance(arbiter, str):
            arbiter = make_arbiter(
                arbiter, names, [spec.weight for spec in tenants])
        self.arbiter = arbiter
        self.gate = AdmissionGate(
            controller, max_outstanding=max_outstanding,
            max_pending_admissions=max_pending_admissions)
        self.accountant = accountant or SloAccountant(
            {spec.name: spec.slo_target() for spec in tenants})
        self.queues: List[SubmissionQueue] = [
            SubmissionQueue(spec.name, max_depth=spec.max_queue_depth)
            for spec in tenants
        ]
        self.buckets: List[Optional[TokenBucket]] = []
        for spec in tenants:
            if spec.rate_pages_per_sec is None:
                self.buckets.append(None)
            else:
                burst = spec.burst_pages
                if burst is None:
                    burst = spec.rate_pages_per_sec
                self.buckets.append(
                    TokenBucket(spec.rate_pages_per_sec, burst))
        #: per-tenant per-stream cursors into the stream op lists.
        self._cursor: List[List[int]] = [
            [0] * len(spec.streams) for spec in tenants]
        self._issued = 0
        self._seq = 0
        self._pumping = False
        #: firing time of the earliest scheduled throttle wake-up, or
        #: None; keeps token waits from piling up duplicate events.
        self._wake_at: Optional[float] = None
        self._started = False

    #: observability hooks, planted by ``Tracer.attach_qos``
    _trace = None
    _metrics = None

    # ------------------------------------------------------------------
    # lifecycle

    def start(self) -> None:
        """Attach accounting and kick off every non-empty stream."""
        if self._started:
            raise RuntimeError("MultiTenantHost.start called twice")
        self._started = True
        self.accountant.attach(self.controller)
        for t_index, spec in enumerate(self.tenants):
            for s_index, stream in enumerate(spec.streams):
                if stream:
                    self.sim.schedule(0.0, self._enqueue, t_index,
                                      s_index)

    @property
    def remaining(self) -> int:
        """Operations not yet enqueued across all tenants."""
        return sum(
            len(stream) - self._cursor[t_index][s_index]
            for t_index, spec in enumerate(self.tenants)
            for s_index, stream in enumerate(spec.streams)
        )

    @property
    def queued(self) -> int:
        """Commands sitting in submission queues right now."""
        return sum(len(queue) for queue in self.queues)

    @property
    def issued(self) -> int:
        """Commands dispatched to the controller so far."""
        return self._issued

    # ------------------------------------------------------------------
    # enqueue side (per-stream closed loops)

    def _enqueue(self, t_index: int, s_index: int) -> None:
        spec = self.tenants[t_index]
        op = spec.streams[s_index][self._cursor[t_index][s_index]]
        now = self.sim.now
        request = Request(now, op.kind, op.lpn, op.npages,
                          tenant=spec.name)
        request.on_complete = TenantCompletion(self, t_index, s_index,
                                               op.think_after)
        self.queues[t_index].push(request, self._seq, now)
        self._seq += 1
        if self._trace is not None:
            self._trace.event("qos.admit", tenant=spec.name,
                              kind=op.kind.value, lpn=op.lpn,
                              npages=op.npages,
                              depth=len(self.queues[t_index]))
        if self._metrics is not None:
            self._metrics.counter("qos.admitted",
                                  tenant=spec.name).inc()
        self._pump()

    def _on_done(self, t_index: int, s_index: int,
                 think: float) -> None:
        self.gate.note_complete()
        cursor = self._cursor[t_index]
        cursor[s_index] += 1
        if cursor[s_index] < len(self.tenants[t_index].streams[s_index]):
            self.sim.schedule(think, self._enqueue, t_index, s_index)
        self._pump()

    # ------------------------------------------------------------------
    # dispatch side (gate -> throttle -> arbiter -> controller)

    def _pump(self) -> None:
        """Issue commands until the gate closes or nothing is eligible.

        Re-entrancy guard: ``controller.submit`` can complete a write
        synchronously (buffer admission), whose ``on_complete`` calls
        back into ``_pump``.
        """
        if self._pumping:
            return
        self._pumping = True
        try:
            while self.gate.can_admit():
                now = self.sim.now
                eligible: List[bool] = []
                min_wait: Optional[float] = None
                for index, queue in enumerate(self.queues):
                    if queue.is_empty:
                        eligible.append(False)
                        continue
                    bucket = self.buckets[index]
                    if bucket is not None:
                        wait = bucket.wait_time(
                            queue.head.request.npages, now)
                        if wait > 0.0:
                            eligible.append(False)
                            if min_wait is None or wait < min_wait:
                                min_wait = wait
                            continue
                    eligible.append(True)
                if not any(eligible):
                    if min_wait is not None:
                        self._schedule_wake(now + min_wait)
                    return
                index = self.arbiter.select(self.queues, eligible)
                assert index is not None  # some queue was eligible
                queue = self.queues[index]
                if self._trace is not None:
                    self._trace.event("qos.arbitrate",
                                      tenant=queue.tenant,
                                      depth=len(queue),
                                      issued=self._issued)
                if self._metrics is not None:
                    self._metrics.counter("qos.dispatched",
                                          tenant=queue.tenant).inc()
                    self._metrics.histogram(
                        "qos.dispatch_depth",
                        tenant=queue.tenant).observe(len(queue))
                command = queue.pop(now)
                if queue.is_empty:
                    self.arbiter.note_empty(index)
                bucket = self.buckets[index]
                if bucket is not None:
                    bucket.consume(command.request.npages, now)
                self.gate.note_dispatch()
                self._issued += 1
                self.controller.submit(command.request)
        finally:
            self._pumping = False

    def _schedule_wake(self, at: float) -> None:
        now = self.sim.now
        if at <= now:
            # A wait too small to advance the clock would wake at the
            # same instant forever; force strictly-later progress.
            at = math.nextafter(now, math.inf)
        if self._wake_at is not None and self._wake_at <= at \
                and self._wake_at > now:
            return  # an earlier (still pending) wake-up covers this
        self._wake_at = at
        self.sim.schedule_at(at, self._wake)

    def _wake(self) -> None:
        self._wake_at = None
        self._pump()
