"""Command-line interface: regenerate any experiment from a shell.

::

    python -m repro table1
    python -m repro fig4 --blocks 30 --wordlines 32
    python -m repro fig8 --workloads Varmail,NTRX --scale 0.5
    python -m repro fig8 --jobs 4            # parallel across processes
    python -m repro fig8 --json              # machine-readable output
    python -m repro recovery
    python -m repro ablation quota
    python -m repro tlc
    python -m repro run --workload Fileserver --ftl flexFTL --ops 8000

Dispatch is table-driven: every experiment module registers an
:class:`~repro.experiments.registry.Experiment` (name, argparse spec,
run, render) in the :data:`~repro.experiments.registry
.EXPERIMENT_REGISTRY`, and this module is a single loop over the
table.  Four global flags apply to every command:

* ``--jobs N`` — fan grid-shaped experiments out over N worker
  processes (results are byte-identical to a serial run);
* ``--cell-timeout S`` — per-cell wall-clock budget for pooled runs
  (default: wait forever); a hung cell surfaces a typed
  ``CellTimeoutError`` instead of blocking the whole run;
* ``--no-cache`` — bypass the content-addressed result cache under
  ``~/.cache/repro-rps/`` (``$REPRO_CACHE_DIR`` overrides the
  location);
* ``--json`` — print the experiment's JSON projection instead of the
  text report.
"""

from __future__ import annotations

import argparse
import functools
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.experiments import registry
from repro.experiments.engine import EngineOptions, ResultCache


def _engine_options(args: argparse.Namespace) -> EngineOptions:
    return EngineOptions(
        jobs=args.jobs,
        cache=None if args.no_cache else ResultCache(),
        progress=sys.stderr.isatty(),
        cell_timeout=args.cell_timeout,
    )


def _dispatch(experiment: registry.Experiment,
              args: argparse.Namespace) -> int:
    try:
        result = experiment.run(args, _engine_options(args))
    except registry.CliError as error:
        print(str(error), file=sys.stderr)
        return error.code
    if args.json:
        if experiment.to_dict is not None:
            payload = experiment.to_dict(result)
        else:
            payload = {"report": experiment.render(result)}
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(experiment.render(result))
    return experiment.exit_code(result)


#: Global options, accepted both before and after the subcommand.
_GLOBAL_OPTIONS = (
    (("--seed",), dict(type=int, default=1,
                       help="experiment seed (default 1)")),
    (("--jobs", "-j"), dict(type=int, default=1,
                            help="worker processes for grid "
                                 "experiments (default 1 = serial)")),
    (("--cell-timeout",), dict(type=float, default=None,
                               help="per-cell wall-clock budget in "
                                    "seconds for pooled runs (default: "
                                    "wait forever); a hung cell then "
                                    "fails the run instead of blocking "
                                    "it")),
    (("--no-cache",), dict(action="store_true",
                           help="bypass the on-disk result cache")),
    (("--json",), dict(action="store_true",
                       help="emit machine-readable JSON instead of "
                            "the text report")),
)


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables, figures and "
                    "ablations (DAC'16 RPS/flexFTL reproduction).",
    )
    for flags, spec in _GLOBAL_OPTIONS:
        parser.add_argument(*flags, **spec)
    sub = parser.add_subparsers(dest="command", required=True)
    for experiment in registry.all_experiments():
        p = sub.add_parser(experiment.name, help=experiment.help)
        experiment.add_arguments(p)
        for flags, spec in _GLOBAL_OPTIONS:
            # SUPPRESS keeps the subparser from clobbering a value the
            # root parser already set (``repro --jobs 4 fig8``) while
            # still accepting ``repro fig8 --jobs 4``.
            p.add_argument(*flags, **dict(spec,
                                          default=argparse.SUPPRESS))
        p.set_defaults(fn=functools.partial(_dispatch, experiment),
                       experiment=experiment.name)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return args.fn(args)
    except BrokenPipeError:
        # Reader went away (``repro ... | head``); die quietly like
        # any well-behaved pipeline stage.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
