"""Command-line interface: regenerate any experiment from a shell.

::

    python -m repro table1
    python -m repro fig4 --blocks 30 --wordlines 32
    python -m repro fig8 --workloads Varmail,NTRX --scale 0.5
    python -m repro recovery
    python -m repro ablation quota
    python -m repro tlc
    python -m repro run --workload Fileserver --ftl flexFTL --ops 8000
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional, Sequence

from repro.experiments.ablation import (
    render_ablation,
    run_parity_ablation,
    run_quota_ablation,
    run_threshold_ablation,
)
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig8 import run_fig8
from repro.experiments.recovery import (
    reboot_overhead_report,
    run_spo_recovery,
)
from repro.experiments.runner import (
    ExperimentConfig,
    FTL_REGISTRY,
    experiment_span,
    run_workload,
)
from repro.experiments.table1 import render_table1, run_table1
from repro.metrics.report import render_table
from repro.workloads.benchmarks import PROFILES, build_workload


def _cmd_table1(args: argparse.Namespace) -> int:
    characteristics = run_table1(total_ops=args.ops, seed=args.seed)
    print("Table 1: I/O characteristics of the five workloads")
    print(render_table1(characteristics))
    return 0


def _cmd_fig4(args: argparse.Namespace) -> int:
    result = run_fig4(blocks=args.blocks, wordlines=args.wordlines,
                      seed=args.seed)
    print(result.render())
    return 0 if result.rps_matches_fps() else 1


def _cmd_fig8(args: argparse.Namespace) -> int:
    workloads = (args.workloads.split(",") if args.workloads
                 else None)
    result = run_fig8(workloads=workloads, scale=args.scale,
                      utilization=args.utilization, seed=args.seed)
    print(result.render())
    return 0


def _cmd_recovery(args: argparse.Namespace) -> int:
    scenario = run_spo_recovery(wordlines=args.wordlines,
                                page_size=4096, seed=args.seed)
    print(reboot_overhead_report())
    print()
    print(f"end-to-end power-loss scenario: lost word line "
          f"{scenario.lost_wordline}, recovered={scenario.success}")
    return 0 if scenario.success else 1


def _cmd_ablation(args: argparse.Namespace) -> int:
    if args.which == "quota":
        print(render_ablation(run_quota_ablation(seed=args.seed)))
    elif args.which == "thresholds":
        print(render_ablation(run_threshold_ablation(seed=args.seed)))
    elif args.which == "parity":
        points = run_parity_ablation(seed=args.seed)
        print(render_ablation(list(points.values())))
    elif args.which == "gc":
        from repro.experiments.ablation import run_gc_policy_ablation
        print(render_ablation(run_gc_policy_ablation(seed=args.seed)))
    else:  # pragma: no cover - argparse restricts choices
        raise AssertionError(args.which)
    return 0


def _cmd_endurance(args: argparse.Namespace) -> int:
    from repro.experiments.endurance import run_endurance_sweep
    result = run_endurance_sweep(blocks=args.blocks,
                                 wordlines=args.wordlines,
                                 seed=args.seed)
    print(result.render())
    return 0


def _cmd_scaling(args: argparse.Namespace) -> int:
    from repro.experiments.scaling import run_scaling_study
    result = run_scaling_study(ops_per_chip=args.ops_per_chip,
                               seed=args.seed)
    print(result.render())
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    from repro.experiments.latency import (
        render_read_latency,
        run_read_latency_comparison,
    )
    results = run_read_latency_comparison(workload=args.workload,
                                          total_ops=args.ops,
                                          seed=args.seed)
    print(f"read latency percentiles on {args.workload} [ms]:")
    print(render_read_latency(results))
    return 0


def _cmd_tlc(args: argparse.Namespace) -> int:
    if args.mode == "burst":
        from repro.experiments.tlc_burst import (
            render_tlc_burst,
            run_tlc_burst_experiment,
        )
        print(render_tlc_burst(run_tlc_burst_experiment(
            wordlines=args.wordlines,
            burst_pages=max(1, args.wordlines * 3 // 4))))
        return 0
    if args.mode == "system":
        from repro.experiments.tlc_system import (
            render_tlc_comparison,
            run_tlc_system_comparison,
        )
        results = run_tlc_system_comparison(seed=args.seed)
        print(render_tlc_comparison(results))
        return 0
    from repro.nand.tlc import (
        TlcScheme,
        fps_tlc_order,
        is_valid_tlc_order,
        random_rps_tlc_order,
        rps_tlc_full_order,
        tlc_max_aggressors,
        unconstrained_tlc_order,
    )

    n = args.wordlines
    rng = random.Random(args.seed)
    orders = {
        "FPS-TLC": fps_tlc_order(n),
        "RPS-TLC full": rps_tlc_full_order(n),
        "RPS-TLC random": random_rps_tlc_order(n, rng),
        "unconstrained": unconstrained_tlc_order(n, rng),
    }
    rows = [[name, tlc_max_aggressors(order, n),
             "yes" if is_valid_tlc_order(order, n, TlcScheme.RPS)
             else "no"]
            for name, order in orders.items()]
    print(f"TLC generalisation ({n} word lines, {3 * n} pages):")
    print(render_table(["order", "max aggressors", "RPS-legal"], rows))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    if args.workload not in PROFILES:
        print(f"unknown workload {args.workload!r}; choose from "
              f"{sorted(PROFILES)}", file=sys.stderr)
        return 2
    if args.ftl not in FTL_REGISTRY:
        print(f"unknown FTL {args.ftl!r}; choose from "
              f"{sorted(FTL_REGISTRY)}", file=sys.stderr)
        return 2
    config = ExperimentConfig(flex_use_predictor=args.predictor)
    span = experiment_span(config, utilization=args.utilization)
    streams = build_workload(args.workload, span, total_ops=args.ops,
                             seed=args.seed)
    result = run_workload(args.ftl, streams, config)
    bandwidth = result.stats.write_bandwidth
    rows = [
        ["IOPS", f"{result.iops:.1f}"],
        ["block erasures", result.erases],
        ["write amplification", f"{result.write_amplification:.3f}"],
        ["peak write BW [MB/s]", f"{bandwidth.percentile(1.0):.1f}"],
        ["host programs", result.counters["host_programs"]],
        ["GC programs", result.counters["gc_programs"]],
        ["backup programs", result.counters["backup_programs"]],
    ]
    print(f"{args.ftl} on {args.workload} "
          f"({args.ops} ops, footprint {span} pages)")
    print(render_table(["metric", "value"], rows))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the paper's tables, figures and "
                    "ablations (DAC'16 RPS/flexFTL reproduction).",
    )
    parser.add_argument("--seed", type=int, default=1,
                        help="experiment seed (default 1)")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="workload characteristics")
    p.add_argument("--ops", type=int, default=20000)
    p.set_defaults(fn=_cmd_table1)

    p = sub.add_parser("fig4", help="reliability comparison")
    p.add_argument("--blocks", type=int, default=90)
    p.add_argument("--wordlines", type=int, default=64)
    p.set_defaults(fn=_cmd_fig4)

    p = sub.add_parser("fig8", help="IOPS / erasures / bandwidth CDF")
    p.add_argument("--workloads", default=None,
                   help="comma-separated subset (default: all five)")
    p.add_argument("--scale", type=float, default=1.0,
                   help="op-count multiplier (default 1.0)")
    p.add_argument("--utilization", type=float, default=0.75)
    p.set_defaults(fn=_cmd_fig8)

    p = sub.add_parser("recovery", help="power-loss recovery + "
                                        "reboot estimate")
    p.add_argument("--wordlines", type=int, default=64)
    p.set_defaults(fn=_cmd_recovery)

    p = sub.add_parser("ablation", help="design-parameter sweeps")
    p.add_argument("which",
                   choices=("quota", "thresholds", "parity", "gc"))
    p.set_defaults(fn=_cmd_ablation)

    p = sub.add_parser("endurance", help="BER vs P/E cycles through "
                                         "the ECC lens")
    p.add_argument("--blocks", type=int, default=12)
    p.add_argument("--wordlines", type=int, default=24)
    p.set_defaults(fn=_cmd_endurance)

    p = sub.add_parser("scaling", help="IOPS vs device parallelism")
    p.add_argument("--ops-per-chip", type=int, default=800)
    p.set_defaults(fn=_cmd_scaling)

    p = sub.add_parser("latency", help="read-latency percentiles per "
                                       "FTL")
    p.add_argument("--workload", default="NTRX")
    p.add_argument("--ops", type=int, default=8000)
    p.set_defaults(fn=_cmd_latency)

    p = sub.add_parser("tlc", help="TLC generalisation of RPS")
    p.add_argument("--wordlines", type=int, default=128)
    p.add_argument("--mode", choices=("orders", "burst", "system"),
                   default="orders",
                   help="orders: constraint/aggressor table; burst: "
                        "burst-service study; system: full DES "
                        "comparison")
    p.set_defaults(fn=_cmd_tlc)

    p = sub.add_parser("run", help="one FTL on one workload")
    p.add_argument("--workload", default="Varmail")
    p.add_argument("--ftl", default="flexFTL")
    p.add_argument("--ops", type=int, default=12000)
    p.add_argument("--utilization", type=float, default=0.75)
    p.add_argument("--predictor", action="store_true",
                   help="enable the Section 6 future-write predictor")
    p.set_defaults(fn=_cmd_run)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
