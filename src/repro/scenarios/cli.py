"""The ``scenario`` CLI command: generate, run, export, replay.

One front door for the scenario toolkit::

    python -m repro scenario --list
    python -m repro scenario --preset varmail --ftl flexFTL --ops 8000
    python -m repro scenario --preset oltp --export oltp.csv --ops 8000
    python -m repro scenario --replay oltp.csv --ftl pageFTL

Runs execute through the engine as single ``workload`` cells, so the
result cache and ``--jobs`` behave exactly as for the figure
experiments; ``--export`` writes the scenario's canonical op sequence
as an ``operation_sequence`` CSV (see :mod:`repro.scenarios.csvio`),
and ``--replay`` streams such a file back through any registered FTL
in bounded memory.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict

from repro.experiments import registry
from repro.experiments.engine import (
    EngineOptions,
    derive_seed,
    run_cells,
    workload_cell,
)
from repro.experiments.runner import (
    ExperimentConfig,
    FTL_REGISTRY,
    RunResult,
    experiment_span,
)
from repro.metrics.report import render_table
from repro.scenarios.csvio import (
    ScenarioCsvError,
    TraceScenario,
    write_scenario_csv,
)
from repro.scenarios.presets import PRESETS, make_preset

DEFAULT_OPS = 8000


def _list_payload() -> Dict[str, Any]:
    return {
        "kind": "list",
        "presets": {
            name: {
                "read_fraction": info.read_fraction,
                "read_write_ratio": info.read_write_ratio,
                "blurb": info.blurb,
            }
            for name, info in PRESETS.items()
        },
    }


def _render_list(payload: Dict[str, Any]) -> str:
    rows = [[name, info["read_write_ratio"], info["blurb"]]
            for name, info in payload["presets"].items()]
    return render_table(["preset", "R:W", "description"], rows)


def _render_run(payload: Dict[str, Any]) -> str:
    result: RunResult = payload["result"]
    rows = [
        ["IOPS", f"{result.iops:.1f}"],
        ["block erasures", result.erases],
        ["write amplification", f"{result.write_amplification:.3f}"],
        ["completed reads", result.stats.completed_reads],
        ["completed writes", result.stats.completed_writes],
    ]
    lines = [f"{payload['ftl']} on scenario {payload['scenario']} "
             f"(footprint {payload['span']} pages)"]
    if payload.get("phase_table"):
        lines += [payload["phase_table"], ""]
    lines.append(render_table(["metric", "value"], rows))
    return "\n".join(lines)


def _render(payload: Dict[str, Any]) -> str:
    if payload["kind"] == "list":
        return _render_list(payload)
    if payload["kind"] == "export":
        return (f"wrote {payload['rows']} ops of scenario "
                f"{payload['scenario']} to {payload['path']}")
    return _render_run(payload)


def _to_dict(payload: Dict[str, Any]) -> Dict[str, Any]:
    data = dict(payload)
    if isinstance(data.get("result"), RunResult):
        data["result"] = data["result"].to_dict()
    return data


def _cli_arguments(parser) -> None:
    parser.add_argument("--list", action="store_true",
                        help="list the available presets and exit")
    parser.add_argument("--preset",
                        help="preset to generate "
                             f"(choose from {','.join(PRESETS)})")
    parser.add_argument("--ftl", default="flexFTL",
                        help="FTL to drive (default flexFTL)")
    parser.add_argument("--ops", type=int, default=DEFAULT_OPS,
                        help=f"measured ops (default {DEFAULT_OPS})")
    parser.add_argument("--utilization", type=float, default=0.75,
                        help="footprint fraction of the logical space "
                             "(default 0.75)")
    parser.add_argument("--export", metavar="PATH",
                        help="write the generated scenario as an "
                             "operation_sequence CSV instead of "
                             "running it")
    parser.add_argument("--replay", metavar="PATH",
                        help="replay an operation_sequence CSV "
                             "through --ftl")


def _cli_run(args, engine_options: EngineOptions) -> Dict[str, Any]:
    if args.list:
        return _list_payload()
    if args.replay and (args.preset or args.export):
        raise registry.CliError(
            "--replay is standalone; it takes no --preset/--export")
    if args.ftl not in FTL_REGISTRY:
        raise registry.CliError(
            f"unknown FTL {args.ftl!r}; choose from "
            f"{sorted(FTL_REGISTRY)}")
    config = ExperimentConfig()

    if args.replay:
        path = Path(args.replay)
        try:
            scenario = TraceScenario(path)
        except (FileNotFoundError, ScenarioCsvError, ValueError) as exc:
            raise registry.CliError(str(exc))
        span = experiment_span(config, utilization=args.utilization,
                               ftls=[args.ftl])
        (result,) = run_cells(
            [workload_cell(args.ftl, scenario=scenario, config=config,
                           label=f"replay/{args.ftl}")],
            options=engine_options, label="scenario")
        return {"kind": "replay", "scenario": scenario.name,
                "ftl": args.ftl, "span": scenario.footprint or span,
                "result": result}

    if not args.preset:
        raise registry.CliError(
            "pick one of --list, --preset NAME or --replay PATH")
    if args.preset not in PRESETS:
        raise registry.CliError(
            f"unknown preset {args.preset!r}; choose from "
            f"{sorted(PRESETS)}")
    span = experiment_span(config, utilization=args.utilization)
    scenario = make_preset(args.preset, span, args.ops,
                           seed=derive_seed(args.seed, args.preset))

    if args.export:
        rows = write_scenario_csv(scenario, args.export)
        return {"kind": "export", "scenario": scenario.name,
                "path": str(args.export), "rows": rows,
                "span": span}

    (result,) = run_cells(
        [workload_cell(args.ftl, scenario=scenario, config=config,
                       label=f"{args.preset}/{args.ftl}")],
        options=engine_options, label="scenario")
    return {"kind": "run", "scenario": scenario.name, "ftl": args.ftl,
            "span": span, "phase_table": scenario.phase_table(),
            "result": result}


registry.register(registry.Experiment(
    name="scenario",
    help="generate, run, export or replay one workload scenario",
    add_arguments=_cli_arguments,
    run=_cli_run,
    render=_render,
    to_dict=_to_dict,
    parallel=True,
))
