"""The Scenario abstraction: one front door for every workload source.

A :class:`Scenario` is a *lazy, seeded, iterator-based* source of
tagged host requests.  The measured runners —
:func:`repro.experiments.runner.run_workload`,
:func:`repro.qos.runner.run_qos_workload` and
:func:`repro.faults.runner.run_fault_workload` — all accept one via
``scenario=``, so the stateful phase generator
(:mod:`repro.scenarios.generator`), on-disk trace replay
(:mod:`repro.scenarios.csvio`) and legacy pre-built stream lists
(:class:`StreamScenario`) drive a simulated device through exactly the
same code path.

Two delivery modes exist:

* ``closed`` — per-stream synchronous workers: each worker issues its
  next op only after the previous one completed (Sysbench/Filebench
  shape; see :class:`~repro.scenarios.host.StreamingClosedLoopHost`).
* ``open`` — requests arrive at fixed trace timestamps regardless of
  device state (block-trace replay; see
  :class:`~repro.scenarios.host.StreamingTraceReplayHost`).

Every scenario serializes to a JSON-safe **spec** (:meth:`Scenario.
spec`), invertible via :func:`scenario_from_spec`.  The experiment
engine ships specs — not scenario objects — inside its
:class:`~repro.experiments.engine.Cell` parameters, which keeps cells
picklable, content-hashable and byte-identical across the serial,
parallel and cached execution paths.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.sim.host import StreamOp
from repro.sim.queues import Request, RequestKind

#: Delivery modes (see the module docstring).
CLOSED = "closed"
OPEN = "open"


def scenario_seed(base_seed: int, *coords: object) -> int:
    """A stable per-stream seed from a base seed and coordinates.

    Same construction as :func:`repro.experiments.engine.derive_seed`
    (SHA-256 over the JSON-encoded coordinates) but defined here so the
    workload layer does not depend on the experiment engine.  Stable
    across processes and Python versions: a scenario generated on a
    pool worker is identical to one generated inline.
    """
    text = json.dumps([base_seed, [str(c) for c in coords]],
                      separators=(",", ":"))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


@dataclasses.dataclass(frozen=True, slots=True)
class ScenarioOp:
    """One tagged host operation of a scenario.

    The superset of :class:`~repro.sim.host.StreamOp` (closed-loop
    fields) and a trace record (the optional open-loop ``time``), plus
    the scenario tags (stream, tenant, phase) that QoS accounting, CSV
    export and the trace bus consume.

    Attributes:
        kind: read or write.
        lpn: first logical page.
        npages: length in pages.
        think_after: closed-loop think time after completion (seconds).
        time: open-loop arrival timestamp, or None for closed-loop ops.
        stream: issuing worker-stream index.
        tenant: issuing tenant name, or None for untagged traffic.
        phase: generator phase the op belongs to ("" when unphased).
    """

    kind: RequestKind
    lpn: int
    npages: int = 1
    think_after: float = 0.0
    time: Optional[float] = None
    stream: int = 0
    tenant: Optional[str] = None
    phase: str = ""

    def to_stream_op(self) -> StreamOp:
        """The closed-loop projection (drops the scenario tags)."""
        return StreamOp(self.kind, self.lpn, self.npages,
                        self.think_after)

    def to_request(self) -> Request:
        """The open-loop projection (requires an arrival ``time``)."""
        if self.time is None:
            raise ValueError(
                "op has no arrival time; only open-mode scenarios "
                "replay as requests")
        return Request(time=self.time, kind=self.kind, lpn=self.lpn,
                       npages=self.npages, tenant=self.tenant)


@dataclasses.dataclass(frozen=True)
class TenantBinding:
    """How a slice of a scenario's streams maps onto a QoS tenant.

    Mirrors the contract fields of
    :class:`~repro.qos.host.TenantSpec`; the QoS runner copies them
    across when it materializes tenant specs from a scenario.
    """

    name: str
    streams: int
    weight: float = 1.0
    rate_pages_per_sec: Optional[float] = None
    read_slo: Optional[float] = None
    write_slo: Optional[float] = None

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "TenantBinding":
        return cls(
            name=str(data["name"]),
            streams=int(data["streams"]),
            weight=float(data.get("weight", 1.0)),
            rate_pages_per_sec=(
                None if data.get("rate_pages_per_sec") is None
                else float(data["rate_pages_per_sec"])),
            read_slo=(None if data.get("read_slo") is None
                      else float(data["read_slo"])),
            write_slo=(None if data.get("write_slo") is None
                       else float(data["write_slo"])),
        )


class Scenario:
    """Base class of every workload scenario.

    Subclasses must provide :attr:`name`, :attr:`mode`, :meth:`ops`
    and :meth:`spec`; closed-mode scenarios additionally
    :meth:`op_streams`, open-mode ones :meth:`requests`.  All views
    are *lazy*: iterating a scenario twice regenerates (or re-reads)
    it from scratch, and nothing requires the full op sequence in
    memory at once.
    """

    #: human-readable scenario name (appears in CSV meta and reports).
    name: str = "scenario"
    #: ``closed`` or ``open`` (module constants).
    mode: str = CLOSED

    # -- declared shape ------------------------------------------------

    @property
    def footprint(self) -> Optional[int]:
        """Logical pages the scenario touches (upper bound), or None
        when unknown (e.g. a foreign trace without metadata).  The
        runners precondition ``min(logical_pages, footprint)``."""
        return None

    @property
    def stream_count(self) -> Optional[int]:
        """Closed-loop worker streams, or None when unknown."""
        return None

    @property
    def total_ops(self) -> Optional[int]:
        """Declared operation count, or None when unknown."""
        return None

    def tenant_bindings(self) -> Tuple[TenantBinding, ...]:
        """Tenant contracts, in stream order (empty when untenanted)."""
        return ()

    # -- lazy views ----------------------------------------------------

    def ops(self) -> Iterator[ScenarioOp]:
        """The canonical tagged op sequence (lazy).

        For closed-mode scenarios this is the per-stream sequences
        interleaved round-robin (stream 0 first); CSV export writes
        this order and per-stream replay recovers the originals
        exactly.
        """
        raise NotImplementedError

    def op_streams(self) -> List[Iterator[ScenarioOp]]:
        """One lazy op iterator per closed-loop worker stream."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support closed-loop "
            f"delivery")

    def requests(self) -> Iterator[Request]:
        """Open-loop arrivals, time-ordered (lazy)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support open-loop "
            f"delivery")

    # -- serialization -------------------------------------------------

    def spec(self) -> Dict[str, Any]:
        """JSON-safe spec, invertible via :func:`scenario_from_spec`."""
        raise NotImplementedError

    # -- derived helpers -----------------------------------------------

    def tenant_streams(self) -> Dict[str, List[List[StreamOp]]]:
        """Materialized per-tenant closed-loop streams.

        Groups :meth:`ops` by ``(tenant, stream)``; tenants appear in
        binding order when bindings exist, else in first-seen order.
        This view *does* materialize (QoS tenant specs are tuples by
        design); bounded-memory delivery is the single-host path.
        """
        grouped: Dict[str, Dict[int, List[StreamOp]]] = {}
        for binding in self.tenant_bindings():
            grouped[binding.name] = {}
        for op in self.ops():
            if op.tenant is None:
                raise ValueError(
                    f"scenario {self.name!r} has untagged ops; "
                    f"a multi-tenant run needs every op to carry a "
                    f"tenant")
            streams = grouped.setdefault(op.tenant, {})
            streams.setdefault(op.stream, []).append(op.to_stream_op())
        return {tenant: [streams[index] for index in sorted(streams)]
                for tenant, streams in grouped.items()}

    def fingerprint(self, limit: Optional[int] = None) -> str:
        """SHA-256 over the (first ``limit``) generated ops.

        The determinism oracle: equal fingerprints mean equal op
        sequences, across processes and platforms.
        """
        digest = hashlib.sha256()
        for index, op in enumerate(self.ops()):
            if limit is not None and index >= limit:
                break
            digest.update(
                f"{op.kind.value},{op.lpn},{op.npages},"
                f"{op.think_after!r},{op.time!r},{op.stream},"
                f"{op.tenant},{op.phase};".encode("utf-8"))
        return digest.hexdigest()

    def describe(self) -> str:
        """One-line summary for reports."""
        parts = [f"{self.name} ({self.mode})"]
        if self.stream_count is not None:
            parts.append(f"{self.stream_count} streams")
        if self.total_ops is not None:
            parts.append(f"{self.total_ops} ops")
        if self.footprint is not None:
            parts.append(f"footprint {self.footprint} pages")
        return ", ".join(parts)

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"


# ---------------------------------------------------------------------------
# legacy adapter


_OP_CODES = {RequestKind.READ: "R", RequestKind.WRITE: "W"}
_OP_KINDS = {"R": RequestKind.READ, "W": RequestKind.WRITE}


class StreamScenario(Scenario):
    """Adapter wrapping pre-built closed-loop stream lists.

    This is what the deprecated ``streams=`` keyword of the runners
    becomes internally, and what keeps every pre-scenario workload
    generator (:mod:`repro.workloads`) usable unchanged::

        scenario = StreamScenario.from_streams(
            build_workload("Varmail", span, total_ops=4000))
        run_workload(ftl_name="flexFTL", scenario=scenario)

    The wrapped streams are already materialized, so this adapter is
    *not* bounded-memory — it exists for compatibility and for small
    hand-built workloads.
    """

    mode = CLOSED

    def __init__(self, streams: Sequence[Sequence[StreamOp]],
                 name: str = "streams",
                 tenant: Optional[str] = None) -> None:
        self.name = name
        self.tenant = tenant
        self._streams: List[List[StreamOp]] = [list(s) for s in streams]

    @classmethod
    def from_streams(cls, streams: Sequence[Sequence[StreamOp]],
                     name: str = "streams",
                     tenant: Optional[str] = None) -> "StreamScenario":
        """Explicit constructor mirroring the runner adapter."""
        return cls(streams, name=name, tenant=tenant)

    @property
    def footprint(self) -> int:
        touched = [op.lpn + op.npages for stream in self._streams
                   for op in stream]
        return max(touched) if touched else 1

    @property
    def stream_count(self) -> int:
        return len(self._streams)

    @property
    def total_ops(self) -> int:
        return sum(len(s) for s in self._streams)

    def _tag(self, op: StreamOp, stream: int) -> ScenarioOp:
        return ScenarioOp(kind=op.kind, lpn=op.lpn, npages=op.npages,
                          think_after=op.think_after, stream=stream,
                          tenant=self.tenant)

    def ops(self) -> Iterator[ScenarioOp]:
        return _round_robin(
            [(self._tag(op, index) for op in stream)
             for index, stream in enumerate(self._streams)])

    def op_streams(self) -> List[Iterator[ScenarioOp]]:
        return [(self._tag(op, index) for op in stream)
                for index, stream in enumerate(self._streams)]

    def spec(self) -> Dict[str, Any]:
        return {
            "type": "streams",
            "name": self.name,
            "tenant": self.tenant,
            # compact row encoding keeps engine cell keys small
            "streams": [[[_OP_CODES[op.kind], op.lpn, op.npages,
                          op.think_after] for op in stream]
                        for stream in self._streams],
        }

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "StreamScenario":
        streams = [
            [StreamOp(_OP_KINDS[str(code)], int(lpn), int(npages),
                      float(think))
             for code, lpn, npages, think in stream]
            for stream in spec["streams"]
        ]
        return cls(streams, name=str(spec.get("name", "streams")),
                   tenant=spec.get("tenant"))


def _round_robin(iterators: Sequence[Iterator[ScenarioOp]]
                 ) -> Iterator[ScenarioOp]:
    """Interleave iterators one op at a time, dropping exhausted ones."""
    alive = list(iterators)
    while alive:
        survivors = []
        for iterator in alive:
            op = next(iterator, None)
            if op is not None:
                yield op
                survivors.append(iterator)
        alive = survivors


# ---------------------------------------------------------------------------
# spec registry


#: spec ``type`` -> builder.  Populated by the scenario modules at
#: import time (see :func:`register_spec_type`).
SPEC_TYPES: Dict[str, Callable[[Dict[str, Any]], Scenario]] = {}


def register_spec_type(
        kind: str,
        builder: Callable[[Dict[str, Any]], Scenario]) -> None:
    """Register a scenario spec type (module-level, pool-worker safe)."""
    SPEC_TYPES[kind] = builder


register_spec_type("streams", StreamScenario.from_spec)


def scenario_from_spec(spec: Dict[str, Any]) -> Scenario:
    """Rebuild a scenario from its :meth:`Scenario.spec` dict."""
    if not isinstance(spec, dict) or "type" not in spec:
        raise ValueError(
            "a scenario spec is a dict with a 'type' key; got "
            f"{spec!r}")
    kind = str(spec["type"])
    if kind not in SPEC_TYPES:
        # Late-register the sibling spec types: a pool worker may
        # resolve a spec before anything imported the full package.
        import repro.scenarios.csvio  # noqa: F401
        import repro.scenarios.generator  # noqa: F401
    if kind not in SPEC_TYPES:
        raise KeyError(
            f"unknown scenario spec type {kind!r}; choose from "
            f"{sorted(SPEC_TYPES)}")
    return SPEC_TYPES[kind](spec)


def as_scenario(value: Any) -> Scenario:
    """Coerce a runner's ``scenario=`` argument to a :class:`Scenario`.

    Accepts a scenario object or its spec dict (how engine cells carry
    scenarios).
    """
    if isinstance(value, Scenario):
        return value
    if isinstance(value, dict):
        return scenario_from_spec(value)
    raise TypeError(
        f"scenario must be a Scenario or a spec dict, got "
        f"{type(value).__name__}")
