"""Scenario CSV export and streaming replay.

The on-disk format follows the ``operation_sequence_*.csv`` convention
of NAND sequence generators: RFC-4180 CSV (``csv.QUOTE_MINIMAL``) with
a compact JSON payload column (``json.dumps(..., separators=(",",
":"))``), one row per operation::

    #meta,"{""footprint"":4096,""mode"":""closed"",...}"
    seq,time,op,phase,payload
    0,,W,steady,"{""lpn"":128,""npages"":4}"
    1,,R,steady,"{""lpn"":7,""npages"":4,""stream"":1}"

* ``seq`` — global emission order (the scenario's canonical
  round-robin interleave).
* ``time`` — open-loop arrival timestamp; empty for closed-loop ops.
* ``op`` — ``R`` or ``W``.
* ``phase`` — generator phase label (may be empty).
* ``payload`` — JSON object: ``lpn`` and ``npages`` always; ``think``,
  ``stream`` and ``tenant`` only when non-default, so the round trip
  is lossless field-for-field.

The optional ``#meta`` first row carries the scenario's shape (name,
mode, footprint, stream count, tenant bindings) so a replayed file
reconstructs per-stream closed-loop delivery without scanning.

:class:`TraceScenario` replays such a file — or any file a foreign
generator produced in this format — in **bounded memory**: iteration
parses one row at a time, and per-stream delivery opens one lazily
filtered reader per stream (N sequential parses of the same file
instead of one materialized list; the deliberate CPU-for-memory
trade that makes billion-op traces feasible).
"""

from __future__ import annotations

import csv
import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.scenarios.base import (
    CLOSED,
    OPEN,
    Scenario,
    ScenarioOp,
    TenantBinding,
    register_spec_type,
)
from repro.sim.queues import Request, RequestKind

#: Format version written into the meta row.
CSV_SCHEMA = 1

#: Column order of every data row.
CSV_HEADER = ("seq", "time", "op", "phase", "payload")

_META_TAG = "#meta"
_OP_CODES = {RequestKind.READ: "R", RequestKind.WRITE: "W"}
_OP_KINDS = {"R": RequestKind.READ, "W": RequestKind.WRITE}


class ScenarioCsvError(ValueError):
    """A malformed scenario CSV row, with file/line context."""


def _compact(obj: Any) -> str:
    return json.dumps(obj, separators=(",", ":"), sort_keys=True)


def write_scenario_csv(scenario: Scenario,
                       path: Union[str, Path]) -> int:
    """Export a scenario's canonical op sequence; returns rows written.

    Streaming on both sides: the scenario generates lazily and rows go
    straight to disk, so exporting never materializes the sequence.
    """
    path = Path(path)
    meta: Dict[str, Any] = {
        "schema": CSV_SCHEMA,
        "name": scenario.name,
        "mode": scenario.mode,
    }
    if scenario.footprint is not None:
        meta["footprint"] = scenario.footprint
    if scenario.stream_count is not None:
        meta["streams"] = scenario.stream_count
    bindings = scenario.tenant_bindings()
    if bindings:
        meta["tenants"] = [binding.to_dict() for binding in bindings]
    rows = 0
    with path.open("w", encoding="utf-8", newline="") as handle:
        writer = csv.writer(handle, quoting=csv.QUOTE_MINIMAL)
        writer.writerow([_META_TAG, _compact(meta)])
        writer.writerow(CSV_HEADER)
        for seq, op in enumerate(scenario.ops()):
            payload: Dict[str, Any] = {"lpn": op.lpn,
                                       "npages": op.npages}
            if op.think_after:
                payload["think"] = op.think_after
            if op.stream:
                payload["stream"] = op.stream
            if op.tenant is not None:
                payload["tenant"] = op.tenant
            writer.writerow([
                seq,
                "" if op.time is None else repr(op.time),
                _OP_CODES[op.kind],
                op.phase,
                _compact(payload),
            ])
            rows += 1
    return rows


def read_scenario_meta(path: Union[str, Path]) -> Dict[str, Any]:
    """Read the ``#meta`` row (empty dict when the file has none)."""
    path = Path(path)
    with path.open("r", encoding="utf-8", newline="") as handle:
        row = next(csv.reader(handle), None)
    if not row or row[0] != _META_TAG:
        return {}
    if len(row) != 2:
        raise ScenarioCsvError(
            f"{path}:1: #meta row must have exactly one JSON field")
    try:
        meta = json.loads(row[1])
    except json.JSONDecodeError as exc:
        raise ScenarioCsvError(
            f"{path}:1: malformed #meta JSON: {exc}") from None
    if not isinstance(meta, dict):
        raise ScenarioCsvError(f"{path}:1: #meta must be an object")
    return meta


def _parse_row(path: Path, lineno: int, row: List[str]) -> ScenarioOp:
    if len(row) != len(CSV_HEADER):
        raise ScenarioCsvError(
            f"{path}:{lineno}: expected {len(CSV_HEADER)} fields "
            f"({','.join(CSV_HEADER)}), got {len(row)}")
    _seq, time_str, op_code, phase, payload_str = row
    if op_code not in _OP_KINDS:
        raise ScenarioCsvError(
            f"{path}:{lineno}: unknown op {op_code!r} (expected R/W)")
    try:
        time = None if time_str == "" else float(time_str)
    except ValueError:
        raise ScenarioCsvError(
            f"{path}:{lineno}: malformed time {time_str!r}") from None
    try:
        payload = json.loads(payload_str)
    except json.JSONDecodeError as exc:
        raise ScenarioCsvError(
            f"{path}:{lineno}: malformed payload JSON: {exc}"
        ) from None
    if not isinstance(payload, dict) or "lpn" not in payload \
            or "npages" not in payload:
        raise ScenarioCsvError(
            f"{path}:{lineno}: payload must be an object with at "
            f"least lpn and npages")
    try:
        lpn = int(payload["lpn"])
        npages = int(payload["npages"])
        think = float(payload.get("think", 0.0))
        stream = int(payload.get("stream", 0))
    except (TypeError, ValueError):
        raise ScenarioCsvError(
            f"{path}:{lineno}: non-numeric payload field in "
            f"{payload_str}") from None
    if lpn < 0 or npages <= 0:
        raise ScenarioCsvError(
            f"{path}:{lineno}: lpn must be >= 0 and npages > 0, got "
            f"lpn={lpn} npages={npages}")
    tenant = payload.get("tenant")
    return ScenarioOp(kind=_OP_KINDS[op_code], lpn=lpn, npages=npages,
                      think_after=think, time=time, stream=stream,
                      tenant=None if tenant is None else str(tenant),
                      phase=phase)


def iter_scenario_csv(path: Union[str, Path]
                      ) -> Iterator[ScenarioOp]:
    """Stream the ops of a scenario CSV, one row at a time.

    Skips the ``#meta`` and header rows; raises
    :class:`ScenarioCsvError` with ``file:line`` context on any
    malformed row.
    """
    path = Path(path)
    with path.open("r", encoding="utf-8", newline="") as handle:
        reader = csv.reader(handle)
        for row in reader:
            if not row:
                continue
            if row[0] == _META_TAG or row[0] == CSV_HEADER[0]:
                continue
            yield _parse_row(path, reader.line_num, row)


#: (path, size, mtime_ns) -> file digest, so repeated spec() calls on
#: an unchanged trace do not re-hash gigabytes.
_DIGEST_CACHE: Dict[Tuple[str, int, int], str] = {}


def _file_sha256(path: Path) -> str:
    stat = path.stat()
    key = (str(path), stat.st_size, stat.st_mtime_ns)
    cached = _DIGEST_CACHE.get(key)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    _DIGEST_CACHE[key] = digest.hexdigest()
    return _DIGEST_CACHE[key]


class TraceScenario(Scenario):
    """Replay an on-disk scenario CSV in bounded memory.

    Construction reads only the ``#meta`` row.  Iteration re-reads the
    file on every pass; :meth:`op_streams` opens one filtered reader
    per stream, so closed-loop replay of an N-stream trace parses the
    file N times concurrently — constant memory, the documented
    trade-off for never holding the op list.

    The spec embeds the file's SHA-256, so an engine result cached
    against a trace is invalidated the moment the file's content
    changes.

    Args:
        path: the CSV file.
        mode: ``closed``/``open`` override (defaults to the meta row's
            mode, else ``closed``).
        streams: closed-loop stream count override for foreign files
            whose meta row is missing.
        name: scenario name override.
    """

    def __init__(self, path: Union[str, Path],
                 mode: Optional[str] = None,
                 streams: Optional[int] = None,
                 name: Optional[str] = None) -> None:
        self.path = Path(path)
        if not self.path.exists():
            raise FileNotFoundError(f"no such trace: {self.path}")
        meta = read_scenario_meta(self.path)
        self._meta = meta
        self.mode = mode or str(meta.get("mode", CLOSED))
        if self.mode not in (CLOSED, OPEN):
            raise ValueError(
                f"{self.path}: mode must be {CLOSED!r} or {OPEN!r}, "
                f"got {self.mode!r}")
        self.name = name or str(meta.get("name", self.path.stem))
        self._streams = (int(streams) if streams is not None
                         else (int(meta["streams"])
                               if "streams" in meta else None))
        self._tenants = tuple(
            TenantBinding.from_dict(b) for b in meta.get("tenants", ()))

    @property
    def footprint(self) -> Optional[int]:
        value = self._meta.get("footprint")
        return None if value is None else int(value)

    @property
    def stream_count(self) -> Optional[int]:
        return self._streams

    def tenant_bindings(self) -> Tuple[TenantBinding, ...]:
        return self._tenants

    def ops(self) -> Iterator[ScenarioOp]:
        return iter_scenario_csv(self.path)

    def _stream_ops(self, index: int) -> Iterator[ScenarioOp]:
        return (op for op in iter_scenario_csv(self.path)
                if op.stream == index)

    def op_streams(self) -> List[Iterator[ScenarioOp]]:
        if self.mode != CLOSED:
            raise ValueError(
                f"{self.path}: an open-mode trace replays via "
                f"requests(), not closed-loop streams")
        if self._streams is None:
            raise ValueError(
                f"{self.path}: stream count unknown (no #meta row); "
                f"pass TraceScenario(..., streams=N)")
        return [self._stream_ops(i) for i in range(self._streams)]

    def requests(self) -> Iterator[Request]:
        if self.mode != OPEN:
            raise ValueError(
                f"{self.path}: a closed-mode trace replays via "
                f"op_streams(), not timed arrivals")
        for op in iter_scenario_csv(self.path):
            yield op.to_request()

    def spec(self) -> Dict[str, Any]:
        return {
            "type": "trace",
            "path": str(self.path.resolve()),
            "sha256": _file_sha256(self.path),
            "mode": self.mode,
            "streams": self._streams,
            "name": self.name,
        }

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "TraceScenario":
        scenario = cls(spec["path"], mode=spec.get("mode"),
                       streams=spec.get("streams"),
                       name=spec.get("name"))
        expected = spec.get("sha256")
        if expected is not None:
            actual = _file_sha256(scenario.path)
            if actual != expected:
                raise ValueError(
                    f"{scenario.path}: content changed since the spec "
                    f"was taken (sha256 {actual[:12]}… != "
                    f"{expected[:12]}…)")
        return scenario


register_spec_type("trace", TraceScenario.from_spec)
