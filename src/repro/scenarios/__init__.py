"""Unified workload scenarios: generation, replay, export.

The package's :class:`~repro.scenarios.base.Scenario` abstraction is
the single front door through which every runner consumes workloads::

    from repro.scenarios import make_preset
    from repro.experiments.runner import run_workload

    scenario = make_preset("varmail", footprint=4096, total_ops=8000)
    result = run_workload(ftl_name="flexFTL", scenario=scenario)

See ``docs/SCENARIOS.md`` for the API tour, the preset tables, the
phase-table schema and the CSV format.
"""

from repro.scenarios.base import (
    CLOSED,
    OPEN,
    Scenario,
    ScenarioOp,
    StreamScenario,
    TenantBinding,
    as_scenario,
    register_spec_type,
    scenario_from_spec,
    scenario_seed,
)
from repro.scenarios.csvio import (
    CSV_HEADER,
    CSV_SCHEMA,
    ScenarioCsvError,
    TraceScenario,
    iter_scenario_csv,
    read_scenario_meta,
    write_scenario_csv,
)
from repro.scenarios.generator import Phase, WorkloadScenario
from repro.scenarios.host import (
    StreamingClosedLoopHost,
    StreamingTraceReplayHost,
)
from repro.scenarios.presets import (
    PRESETS,
    TABLE1_PRESETS,
    PresetInfo,
    make_preset,
)

__all__ = [
    "CLOSED",
    "OPEN",
    "CSV_HEADER",
    "CSV_SCHEMA",
    "PRESETS",
    "TABLE1_PRESETS",
    "Phase",
    "PresetInfo",
    "Scenario",
    "ScenarioCsvError",
    "ScenarioOp",
    "StreamScenario",
    "StreamingClosedLoopHost",
    "StreamingTraceReplayHost",
    "TenantBinding",
    "TraceScenario",
    "WorkloadScenario",
    "as_scenario",
    "iter_scenario_csv",
    "make_preset",
    "read_scenario_meta",
    "register_spec_type",
    "scenario_from_spec",
    "scenario_seed",
    "write_scenario_csv",
]
