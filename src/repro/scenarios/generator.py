"""Stateful phase-structured workload generation.

A :class:`WorkloadScenario` describes a workload the way trace
generators such as nandseqgen do: an explicit **phase schedule**
(fill / steady / burst / idle-GC-window), and per phase a small
**probability table** over op kind, request size and address locality.
Sampling is *state-conditioned* — a sequential draw continues from the
stream's previous op, a re-read draw targets a recently written page —
so the emitted sequence has the temporal structure (hot/cold split,
fsync storms, idle windows) that steady-state GC evaluation needs and
that memoryless samplers cannot express.

Generation is lazy and per-stream seeded: stream ``i`` draws from
``default_rng(scenario_seed(seed, name, i))``, so the sequence is
deterministic across processes and independent of how many other
streams exist.  Nothing is materialized — a scenario with a billion
declared ops costs O(1) memory to iterate.

The Table-1 presets built on top of this live in
:mod:`repro.scenarios.presets`.
"""

from __future__ import annotations

import dataclasses
from collections import deque
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.scenarios.base import (
    CLOSED,
    Scenario,
    ScenarioOp,
    TenantBinding,
    _round_robin,
    register_spec_type,
    scenario_seed,
)
from repro.sim.queues import RequestKind
from repro.workloads.zipf import ZipfSampler

#: Phase kinds (the schedule vocabulary).
PHASE_KINDS = ("fill", "steady", "burst", "idle")

#: How many recent writes a stream remembers for ``read_recent`` draws.
RECENT_WINDOW = 64


@dataclasses.dataclass(frozen=True)
class Phase:
    """One row of a scenario's phase schedule.

    A phase is a probability table plus a duration.  ``fill`` writes
    the stream's footprint slice once, sequentially; ``idle`` emits no
    ops but stretches the previous op's think time (the GC window);
    ``steady`` and ``burst`` draw ``ops`` operations from the table.

    Attributes:
        name: phase label (tags every emitted op; trace-bus visible).
        kind: one of :data:`PHASE_KINDS`.
        ops: operations this phase draws across all streams
            (``steady``/``burst`` only).
        read_fraction: P(op is a read).
        npages: candidate request sizes in pages.
        npages_weights: selection weights (uniform when None).
        seq: P(op continues sequentially after the stream's last op).
        hot: P(op targets the scenario's hot region), given it did not
            continue sequentially or hit a recent write.
        zipf_s: skew exponent for cold-region addresses (0 = uniform).
        read_recent: P(a read targets one of the stream's recently
            written pages) — the mail-server re-read pattern.
        think: per-op think time (seconds).
        burst_len: ops per burst; the last op of each burst carries
            ``burst_idle`` instead of ``think`` (``burst`` only).
        burst_idle: inter-burst idle gap (seconds).
        idle: duration of an ``idle`` phase (seconds).
    """

    name: str
    kind: str = "steady"
    ops: int = 0
    read_fraction: float = 0.0
    npages: Tuple[int, ...] = (1,)
    npages_weights: Optional[Tuple[float, ...]] = None
    seq: float = 0.0
    hot: float = 0.0
    zipf_s: float = 0.0
    read_recent: float = 0.0
    think: float = 0.0
    burst_len: int = 0
    burst_idle: float = 0.0
    idle: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in PHASE_KINDS:
            raise ValueError(
                f"phase {self.name!r}: kind must be one of "
                f"{PHASE_KINDS}, got {self.kind!r}")
        for field in ("read_fraction", "seq", "hot", "read_recent"):
            value = getattr(self, field)
            if not (0.0 <= value <= 1.0):
                raise ValueError(
                    f"phase {self.name!r}: {field} must be in [0, 1], "
                    f"got {value}")
        if not self.npages or any(n <= 0 for n in self.npages):
            raise ValueError(
                f"phase {self.name!r}: npages must be positive sizes")
        if (self.npages_weights is not None
                and len(self.npages_weights) != len(self.npages)):
            raise ValueError(
                f"phase {self.name!r}: npages_weights must match "
                f"npages")
        if self.kind in ("steady", "burst") and self.ops <= 0:
            raise ValueError(
                f"phase {self.name!r}: a {self.kind} phase needs "
                f"ops > 0")
        if self.kind == "burst" and self.burst_len <= 0:
            raise ValueError(
                f"phase {self.name!r}: a burst phase needs "
                f"burst_len > 0")
        if self.kind == "idle" and self.idle <= 0.0:
            raise ValueError(
                f"phase {self.name!r}: an idle phase needs idle > 0")

    def to_dict(self) -> Dict[str, Any]:
        data = dataclasses.asdict(self)
        data["npages"] = list(self.npages)
        if self.npages_weights is not None:
            data["npages_weights"] = list(self.npages_weights)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Phase":
        weights = data.get("npages_weights")
        return cls(
            name=str(data["name"]),
            kind=str(data.get("kind", "steady")),
            ops=int(data.get("ops", 0)),
            read_fraction=float(data.get("read_fraction", 0.0)),
            npages=tuple(int(n) for n in data.get("npages", (1,))),
            npages_weights=(None if weights is None
                            else tuple(float(w) for w in weights)),
            seq=float(data.get("seq", 0.0)),
            hot=float(data.get("hot", 0.0)),
            zipf_s=float(data.get("zipf_s", 0.0)),
            read_recent=float(data.get("read_recent", 0.0)),
            think=float(data.get("think", 0.0)),
            burst_len=int(data.get("burst_len", 0)),
            burst_idle=float(data.get("burst_idle", 0.0)),
            idle=float(data.get("idle", 0.0)),
        )


class WorkloadScenario(Scenario):
    """A seeded, phase-structured, multi-stream workload generator.

    Args:
        name: scenario name (reports, CSV metadata).
        footprint: logical pages the workload addresses.
        streams: closed-loop worker streams; phase op budgets are
            split across them (earlier streams get the remainder).
        phases: the schedule, executed in order by every stream.
        seed: base seed; each stream derives its own generator.
        hot_fraction: fraction of the footprint forming the hot
            region ``[0, hot_fraction * footprint)``; phase ``hot``
            probabilities target it.
        tenants: optional QoS bindings; consecutive stream index
            ranges map onto tenants in order, and their ``streams``
            fields must sum to ``streams``.
    """

    mode = CLOSED

    def __init__(self, name: str, footprint: int, streams: int,
                 phases: Tuple[Phase, ...], seed: int = 1,
                 hot_fraction: float = 0.2,
                 tenants: Tuple[TenantBinding, ...] = ()) -> None:
        if footprint <= 0:
            raise ValueError("footprint must be positive")
        if streams <= 0:
            raise ValueError("streams must be positive")
        if not phases:
            raise ValueError("a scenario needs at least one phase")
        if not (0.0 <= hot_fraction <= 1.0):
            raise ValueError("hot_fraction must be in [0, 1]")
        if tenants:
            declared = sum(b.streams for b in tenants)
            if declared != streams:
                raise ValueError(
                    f"tenant bindings declare {declared} streams, "
                    f"scenario has {streams}")
        self.name = name
        self._footprint = int(footprint)
        self._streams = int(streams)
        self.phases = tuple(phases)
        self.seed = int(seed)
        self.hot_fraction = float(hot_fraction)
        self._tenants = tuple(tenants)

    # -- declared shape ------------------------------------------------

    @property
    def footprint(self) -> int:
        return self._footprint

    @property
    def stream_count(self) -> int:
        return self._streams

    @property
    def total_ops(self) -> int:
        total = 0
        for phase in self.phases:
            if phase.kind == "fill":
                # each stream writes its slice in max-size requests
                size = max(phase.npages)
                for index in range(self._streams):
                    lo, hi = self._fill_slice(index)
                    total += -((lo - hi) // size)  # ceil division
            else:
                total += phase.ops
        return total

    def tenant_bindings(self) -> Tuple[TenantBinding, ...]:
        return self._tenants

    def declared_read_fraction(self) -> float:
        """Ops-weighted read fraction over the measured (non-fill)
        phases — the 'declared mix' the scenario_grid experiment
        checks measured traffic against."""
        weight = sum(p.ops for p in self.phases
                     if p.kind in ("steady", "burst"))
        if weight == 0:
            return 0.0
        return sum(p.ops * p.read_fraction for p in self.phases
                   if p.kind in ("steady", "burst")) / weight

    # -- generation ----------------------------------------------------

    def _tenant_of(self, stream: int) -> Optional[str]:
        first = 0
        for binding in self._tenants:
            if stream < first + binding.streams:
                return binding.name
            first += binding.streams
        return None

    def _fill_slice(self, stream: int) -> Tuple[int, int]:
        """The contiguous footprint slice stream ``stream`` fills."""
        base = self._footprint // self._streams
        extra = self._footprint % self._streams
        lo = stream * base + min(stream, extra)
        hi = lo + base + (1 if stream < extra else 0)
        return lo, hi

    def _stream_share(self, ops: int, stream: int) -> int:
        """Stream ``stream``'s share of a phase's op budget."""
        base = ops // self._streams
        return base + (1 if stream < ops % self._streams else 0)

    def _pick_npages(self, phase: Phase,
                     rng: np.random.Generator) -> int:
        if len(phase.npages) == 1:
            return phase.npages[0]
        if phase.npages_weights is None:
            return int(phase.npages[rng.integers(0, len(phase.npages))])
        weights = np.asarray(phase.npages_weights, dtype=float)
        weights = weights / weights.sum()
        return int(rng.choice(np.asarray(phase.npages), p=weights))

    def _stream_ops(self, index: int) -> Iterator[ScenarioOp]:
        """Lazily generate one stream's full op sequence.

        Holds a one-op lookahead so an ``idle`` phase can stretch the
        think time of the op *preceding* the window.
        """
        rng = np.random.default_rng(
            scenario_seed(self.seed, "scenario", self.name, index))
        tenant = self._tenant_of(index)
        hot_span = int(self._footprint * self.hot_fraction)
        recent: deque = deque(maxlen=RECENT_WINDOW)
        last_end: Optional[int] = None
        pending: Optional[ScenarioOp] = None
        cold_samplers: Dict[str, ZipfSampler] = {}

        for phase in self.phases:
            if phase.kind == "idle":
                if pending is not None:
                    pending = dataclasses.replace(
                        pending,
                        think_after=pending.think_after + phase.idle)
                continue

            if phase.kind == "fill":
                lo, hi = self._fill_slice(index)
                size = max(phase.npages)
                lpn = lo
                while lpn < hi:
                    npages = min(size, hi - lpn)
                    op = ScenarioOp(RequestKind.WRITE, lpn, npages,
                                    phase.think, stream=index,
                                    tenant=tenant, phase=phase.name)
                    if pending is not None:
                        yield pending
                    pending = op
                    last_end = lpn + npages
                    lpn += npages
                continue

            count = self._stream_share(phase.ops, index)
            for position in range(count):
                kind = (RequestKind.READ
                        if rng.random() < phase.read_fraction
                        else RequestKind.WRITE)
                npages = self._pick_npages(phase, rng)
                lpn = self._sample_lpn(phase, kind, npages, rng,
                                       hot_span, recent, last_end,
                                       cold_samplers)
                npages = min(npages, self._footprint - lpn)
                think = phase.think
                if phase.kind == "burst":
                    last_of_burst = (
                        position % phase.burst_len == phase.burst_len - 1
                        or position == count - 1)
                    think = phase.burst_idle if last_of_burst else 0.0
                op = ScenarioOp(kind, lpn, npages, think,
                                stream=index, tenant=tenant,
                                phase=phase.name)
                if kind is RequestKind.WRITE:
                    recent.append(lpn)
                last_end = lpn + npages
                if pending is not None:
                    yield pending
                pending = op

        if pending is not None:
            yield pending

    def _sample_lpn(self, phase: Phase, kind: RequestKind, npages: int,
                    rng: np.random.Generator, hot_span: int,
                    recent: deque, last_end: Optional[int],
                    cold_samplers: Dict[str, ZipfSampler]) -> int:
        """Draw the op's first page (state-conditioned)."""
        span = self._footprint
        if (phase.seq > 0.0 and last_end is not None
                and rng.random() < phase.seq):
            lpn = last_end if last_end + npages <= span else 0
            return lpn
        if (kind is RequestKind.READ and phase.read_recent > 0.0
                and recent and rng.random() < phase.read_recent):
            return int(recent[int(rng.integers(0, len(recent)))])
        if hot_span > 0 and phase.hot > 0.0 and rng.random() < phase.hot:
            return int(rng.integers(0, max(1, hot_span - npages + 1)))
        # Cold draws cover the whole cold region regardless of request
        # size (the caller clamps npages at the footprint edge), so one
        # sampler per phase suffices even with mixed request sizes.
        cold_lo = hot_span if hot_span < span else 0
        cold_n = max(1, span - cold_lo)
        if phase.zipf_s > 0.0:
            sampler = cold_samplers.get(phase.name)
            if sampler is None:
                sampler = ZipfSampler(cold_n, phase.zipf_s, rng)
                cold_samplers[phase.name] = sampler
            return cold_lo + sampler.sample()
        return cold_lo + int(rng.integers(0, cold_n))

    # -- lazy views ----------------------------------------------------

    def op_streams(self) -> List[Iterator[ScenarioOp]]:
        return [self._stream_ops(i) for i in range(self._streams)]

    def ops(self) -> Iterator[ScenarioOp]:
        return _round_robin(self.op_streams())

    # -- serialization -------------------------------------------------

    def spec(self) -> Dict[str, Any]:
        return {
            "type": "workload",
            "name": self.name,
            "footprint": self._footprint,
            "streams": self._streams,
            "seed": self.seed,
            "hot_fraction": self.hot_fraction,
            "phases": [phase.to_dict() for phase in self.phases],
            "tenants": [binding.to_dict() for binding in self._tenants],
        }

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "WorkloadScenario":
        return cls(
            name=str(spec["name"]),
            footprint=int(spec["footprint"]),
            streams=int(spec["streams"]),
            phases=tuple(Phase.from_dict(p) for p in spec["phases"]),
            seed=int(spec.get("seed", 1)),
            hot_fraction=float(spec.get("hot_fraction", 0.2)),
            tenants=tuple(TenantBinding.from_dict(b)
                          for b in spec.get("tenants", ())),
        )

    # -- reporting -----------------------------------------------------

    def phase_table(self) -> str:
        """Render the schedule as an aligned text table."""
        header = (f"{'phase':12s} {'kind':7s} {'ops':>8s} {'read':>5s} "
                  f"{'npages':>8s} {'seq':>5s} {'hot':>5s} "
                  f"{'zipf':>5s} {'think/idle':>11s}")
        rows = [header, "-" * len(header)]
        for p in self.phases:
            sizes = "/".join(str(n) for n in p.npages)
            duration = p.idle if p.kind == "idle" else (
                p.burst_idle if p.kind == "burst" else p.think)
            rows.append(
                f"{p.name:12s} {p.kind:7s} {p.ops:>8d} "
                f"{p.read_fraction:>5.2f} {sizes:>8s} {p.seq:>5.2f} "
                f"{p.hot:>5.2f} {p.zipf_s:>5.2f} {duration:>11.4f}")
        return "\n".join(rows)


register_spec_type("workload", WorkloadScenario.from_spec)
