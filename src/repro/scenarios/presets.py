"""Named scenario presets for the paper's Table-1 workload mixes.

Each preset maps one of the evaluation workloads onto a
:class:`~repro.scenarios.generator.WorkloadScenario` phase schedule:
the steady database loads (OLTP/NTRX) run two intensive steady phases
around an idle GC window; the Filebench loads keep their published
burst/idle structure (Varmail fsync storms, Fileserver append bursts).
Every measured phase of a preset shares the preset's read fraction, so
the *declared* read:write mix equals Table 1's ratio and the
``scenario_grid`` experiment can check measured traffic against it.

The ``fill`` phase is opt-in (``fill=True``): the measured runners
already precondition the device with a sequential fill of the
footprint, so presets default to measured traffic only.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, List, Tuple

from repro.scenarios.generator import Phase, WorkloadScenario


@dataclasses.dataclass(frozen=True)
class PresetInfo:
    """Registry entry for one named preset."""

    name: str
    read_fraction: float
    blurb: str
    builder: Callable[..., WorkloadScenario]

    @property
    def read_write_ratio(self) -> str:
        from repro.workloads.benchmarks import format_rw_ratio
        return format_rw_ratio(self.read_fraction)


def _split(total_ops: int, *weights: float) -> List[int]:
    """Split an op budget over phases proportionally (exact total)."""
    scale = sum(weights)
    counts = [int(total_ops * w / scale) for w in weights]
    counts[0] += total_ops - sum(counts)
    return counts


def _fill_phase() -> Phase:
    return Phase(name="fill", kind="fill", npages=(8,))


def _schedule(phases: List[Phase]) -> Tuple[Phase, ...]:
    """Drop drawing phases whose op budget rounded to zero (tiny
    ``total_ops``) so every remaining phase is valid."""
    return tuple(p for p in phases
                 if p.kind not in ("steady", "burst") or p.ops > 0)


def _oltp(footprint: int, total_ops: int, seed: int, fill: bool,
          *, name: str = "oltp", read_fraction: float = 0.7
          ) -> WorkloadScenario:
    ramp, steady = _split(total_ops, 0.4, 0.6)
    phases: List[Phase] = [_fill_phase()] if fill else []
    phases += [
        Phase(name="ramp", kind="steady", ops=ramp,
              read_fraction=read_fraction, npages=(4,), hot=0.6,
              zipf_s=1.1),
        Phase(name="gc-window", kind="idle", idle=0.05),
        Phase(name="steady", kind="steady", ops=steady,
              read_fraction=read_fraction, npages=(4,), hot=0.6,
              zipf_s=1.1),
    ]
    return WorkloadScenario(name=name, footprint=footprint, streams=16,
                            phases=_schedule(phases), seed=seed,
                            hot_fraction=0.15)


def _ntrx(footprint: int, total_ops: int, seed: int, fill: bool
          ) -> WorkloadScenario:
    return _oltp(footprint, total_ops, seed, fill, name="ntrx",
                 read_fraction=0.3)


def _webserver(footprint: int, total_ops: int, seed: int, fill: bool
               ) -> WorkloadScenario:
    serve, tail = _split(total_ops, 0.5, 0.5)
    phases: List[Phase] = [_fill_phase()] if fill else []
    phases += [
        Phase(name="serve", kind="steady", ops=serve,
              read_fraction=0.8, npages=(1, 2), hot=0.5, zipf_s=0.9,
              think=4e-3),
        Phase(name="lull", kind="idle", idle=0.10),
        Phase(name="serve-tail", kind="steady", ops=tail,
              read_fraction=0.8, npages=(1, 2), hot=0.5, zipf_s=0.9,
              think=4e-3),
    ]
    return WorkloadScenario(name="webserver", footprint=footprint,
                            streams=8, phases=_schedule(phases), seed=seed,
                            hot_fraction=0.1)


def _varmail(footprint: int, total_ops: int, seed: int, fill: bool
             ) -> WorkloadScenario:
    first, second = _split(total_ops, 0.5, 0.5)
    phases: List[Phase] = [_fill_phase()] if fill else []
    phases += [
        Phase(name="delivery", kind="burst", ops=first,
              read_fraction=0.5, npages=(1,), burst_len=512,
              burst_idle=0.18, read_recent=0.6, zipf_s=0.9),
        Phase(name="quiet", kind="idle", idle=0.20),
        Phase(name="delivery-2", kind="burst", ops=second,
              read_fraction=0.5, npages=(1,), burst_len=512,
              burst_idle=0.18, read_recent=0.6, zipf_s=0.9),
    ]
    return WorkloadScenario(name="varmail", footprint=footprint,
                            streams=4, phases=_schedule(phases), seed=seed,
                            hot_fraction=0.2)


def _fileserver(footprint: int, total_ops: int, seed: int, fill: bool
                ) -> WorkloadScenario:
    first, second = _split(total_ops, 0.5, 0.5)
    phases: List[Phase] = [_fill_phase()] if fill else []
    phases += [
        Phase(name="appends", kind="burst", ops=first,
              read_fraction=0.33, npages=(4,), burst_len=96,
              burst_idle=0.30, seq=0.3, zipf_s=0.9),
        Phase(name="scan-gap", kind="idle", idle=0.30),
        Phase(name="appends-2", kind="burst", ops=second,
              read_fraction=0.33, npages=(4,), burst_len=96,
              burst_idle=0.30, seq=0.3, zipf_s=0.9),
    ]
    return WorkloadScenario(name="fileserver", footprint=footprint,
                            streams=4, phases=_schedule(phases), seed=seed,
                            hot_fraction=0.2)


def _hot_rewrite(footprint: int, total_ops: int, seed: int, fill: bool
                 ) -> WorkloadScenario:
    """Hot data rewritten constantly: the retention-friendly extreme.

    A small hot set absorbs nearly all writes, so pages are re-programmed
    long before retention or read disturb accumulate — errors are
    dominated by program interference, which the in-block program order
    (RPS vs FPS) controls directly.
    """
    first, second = _split(total_ops, 0.5, 0.5)
    phases: List[Phase] = [_fill_phase()] if fill else []
    phases.append(
        Phase(name="churn", kind="steady", ops=first,
              read_fraction=0.5, npages=(1, 2), hot=0.9, zipf_s=1.2))
    if second > 0:
        phases.append(Phase(name="breather", kind="idle", idle=0.02))
        phases.append(
            Phase(name="churn-2", kind="steady", ops=second,
                  read_fraction=0.5, npages=(1, 2), hot=0.9, zipf_s=1.2))
    return WorkloadScenario(name="hot_rewrite", footprint=footprint,
                            streams=8, phases=_schedule(phases), seed=seed,
                            hot_fraction=0.1)


def _cold_aging(footprint: int, total_ops: int, seed: int, fill: bool
                ) -> WorkloadScenario:
    """Cold data aging out: the retention-stress extreme.

    Writes mostly stop after an initial burst; long idle windows let the
    retention clock advance, and the later read-heavy phases repeatedly
    scan the same aged pages, accumulating read disturb on blocks whose
    data is never refreshed.
    """
    write_burst, scan, late_scan = _split(total_ops, 0.3, 0.4, 0.3)
    phases: List[Phase] = [_fill_phase()] if fill else []
    phases.append(
        Phase(name="ingest", kind="steady", ops=write_burst,
              read_fraction=0.1, npages=(4,), hot=0.3, zipf_s=0.8))
    phases.append(Phase(name="shelf", kind="idle", idle=0.50))
    # Tiny op budgets can round a scan phase to zero ops; a steady
    # phase refuses ops=0, so only build the phases that drew any.
    if scan > 0:
        phases.append(
            Phase(name="scan", kind="steady", ops=scan,
                  read_fraction=0.95, npages=(2,), hot=0.7, zipf_s=1.0))
        phases.append(Phase(name="shelf-2", kind="idle", idle=0.50))
    if late_scan > 0:
        phases.append(
            Phase(name="scan-2", kind="steady", ops=late_scan,
                  read_fraction=0.95, npages=(2,), hot=0.7, zipf_s=1.0))
    return WorkloadScenario(name="cold_aging", footprint=footprint,
                            streams=4, phases=_schedule(phases), seed=seed,
                            hot_fraction=0.25)


#: preset name -> registry entry.  The first four are Table 1's
#: Figure-8 workloads; ``ntrx`` is the fifth Table-1 mix.
PRESETS: Dict[str, PresetInfo] = {
    "oltp": PresetInfo(
        "oltp", 0.7,
        "Sysbench OLTP: 16 steady streams, 4-page ops, hot/cold skew",
        _oltp),
    "webserver": PresetInfo(
        "webserver", 0.8,
        "Filebench Webserver: 8 read-dominant streams with think time",
        _webserver),
    "varmail": PresetInfo(
        "varmail", 0.5,
        "Filebench Varmail: fsync storms re-reading fresh writes",
        _varmail),
    "fileserver": PresetInfo(
        "fileserver", 0.33,
        "Filebench Fileserver: sequential-leaning append bursts",
        _fileserver),
    "ntrx": PresetInfo(
        "ntrx", 0.3,
        "Sysbench NTRX: the OLTP shape with a 3:7 read:write mix",
        _ntrx),
    "hot_rewrite": PresetInfo(
        "hot_rewrite", 0.5,
        "Hot churn: a small set rewritten constantly (interference-"
        "dominated reliability)",
        _hot_rewrite),
    "cold_aging": PresetInfo(
        "cold_aging", 0.695,
        "Cold aging: write once, shelve, then scan repeatedly "
        "(retention/read-disturb-dominated reliability)",
        _cold_aging),
}

#: Table 1's Figure-8 four, in the paper's order.
TABLE1_PRESETS: Tuple[str, ...] = ("oltp", "webserver", "varmail",
                                   "fileserver")


def make_preset(name: str, footprint: int, total_ops: int,
                seed: int = 1, fill: bool = False) -> WorkloadScenario:
    """Instantiate a named preset.

    Args:
        name: a :data:`PRESETS` key.
        footprint: logical pages the workload addresses (size it with
            :func:`repro.experiments.runner.experiment_span`).
        total_ops: measured operations across all streams and phases.
        seed: base RNG seed.
        fill: prepend an explicit sequential fill phase (off by
            default — the runners precondition separately).
    """
    if name not in PRESETS:
        raise KeyError(
            f"unknown preset {name!r}; choose from {sorted(PRESETS)}")
    if total_ops <= 0:
        raise ValueError(f"total_ops must be positive, got {total_ops}")
    return PRESETS[name].builder(footprint, total_ops, seed, fill)
