"""Streaming hosts: drive a controller from lazy scenario iterators.

These mirror the materialized hosts of :mod:`repro.sim.host` — same
event pattern, same request construction, same completion-driven
advancement — but pull operations from iterators one at a time, so a
scenario (or an on-disk trace) of any length runs in bounded memory.

:class:`StreamingClosedLoopHost` is event-for-event identical to
:class:`~repro.sim.host.ClosedLoopHost` on the same op sequence: the
golden fig8 byte-identity test runs the legacy ``streams=`` adapter
through this host, so any divergence fails tier 1.

When the controller has a tracer installed, the closed-loop host emits
a ``scenario.phase`` trace event the first time an op of a new
generator phase is issued — the bridge between the workload's declared
structure (fill/steady/burst/idle) and the device-side event stream.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence

from repro.observability.events import SCENARIO_PHASE
from repro.scenarios.base import Scenario, ScenarioOp, scenario_from_spec
from repro.sim.controller import StorageController
from repro.sim.host import StreamCompletion
from repro.sim.kernel import Simulator
from repro.sim.queues import Request


class StreamingClosedLoopHost:
    """Closed-loop delivery from per-stream op iterators.

    Holds exactly one pending op per stream (the lookahead needed to
    know whether a stream is exhausted); everything else stays inside
    the iterators.

    ``tenant`` is the default tag for ops that carry none of their
    own; a :class:`~repro.scenarios.base.ScenarioOp`'s ``tenant``
    field wins when set.

    ``scenario`` (optional) is the scenario the iterators came from.
    When given, the host is *snapshot-capable*: generator iterators
    cannot pickle, so ``__getstate__`` drops them and records the
    scenario spec plus per-stream pull counts, and ``__setstate__``
    rebuilds the iterators from the spec and fast-forwards each one —
    deterministic because scenario generation is seeded.  The restored
    lookahead op is checked against the pickled one, so a
    non-deterministic scenario fails loudly instead of silently
    diverging.
    """

    def __init__(self, sim: Simulator, controller: StorageController,
                 streams: Sequence[Iterator[ScenarioOp]],
                 tenant: Optional[str] = None,
                 scenario: Optional[Scenario] = None) -> None:
        self.sim = sim
        self.controller = controller
        self.tenant = tenant
        self._iters: List[Iterator[ScenarioOp]] = list(streams)
        self._current: List[Optional[ScenarioOp]] = \
            [None] * len(self._iters)
        self._pulled = [0] * len(self._iters)
        self._phase = ""
        self.issued = 0
        self.scenario_spec: Optional[Dict[str, Any]] = \
            scenario.spec() if scenario is not None else None

    def start(self) -> None:
        """Pull each stream's first op and kick off the non-empty ones."""
        for index, iterator in enumerate(self._iters):
            op = next(iterator, None)
            self._pulled[index] += 1
            self._current[index] = op
            if op is not None:
                self.sim.schedule(0.0, self._issue, index)

    def _issue(self, index: int) -> None:
        op = self._current[index]
        assert op is not None
        trace = getattr(self.controller, "_trace", None)
        if trace is not None and op.phase and op.phase != self._phase:
            trace.event(SCENARIO_PHASE, name=op.phase,
                        prev=self._phase, stream=index)
            self._phase = op.phase
        request = Request(self.sim.now, op.kind, op.lpn, op.npages,
                          tenant=op.tenant if op.tenant is not None
                          else self.tenant)
        request.on_complete = StreamCompletion(self, index, op.think_after)
        self.controller.submit(request)
        self.issued += 1

    def _advance(self, index: int, think: float) -> None:
        nxt = next(self._iters[index], None)
        self._pulled[index] += 1
        self._current[index] = nxt
        if nxt is not None:
            self.sim.schedule(think, self._issue, index)

    def resume(self) -> int:
        """Re-issue every unfinished stream after a power cut.

        Mirrors :meth:`repro.sim.host.ClosedLoopHost.resume`: streams
        whose in-flight op never completed retry it from their held
        pending op.  Returns the number of streams restarted.
        """
        restarted = 0
        for index, op in enumerate(self._current):
            if op is not None:
                self.sim.schedule(0.0, self._issue, index)
                restarted += 1
        return restarted

    # -- snapshot support ----------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        if self.scenario_spec is None:
            raise TypeError(
                "StreamingClosedLoopHost holds live generator "
                "iterators and no scenario spec to rebuild them from; "
                "construct it with scenario= to make it "
                "snapshot-capable")
        state = self.__dict__.copy()
        del state["_iters"]
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        scenario = scenario_from_spec(self.scenario_spec)
        streams = scenario.op_streams()
        if len(streams) != len(self._current):
            raise ValueError(
                f"scenario {scenario.name!r} rebuilt with "
                f"{len(streams)} streams; snapshot recorded "
                f"{len(self._current)}")
        self._iters = []
        for index, iterator in enumerate(streams):
            last: Optional[ScenarioOp] = None
            for _ in range(self._pulled[index]):
                last = next(iterator, None)
            if self._pulled[index] and last != self._current[index]:
                raise ValueError(
                    f"scenario {scenario.name!r} stream {index} did "
                    f"not regenerate deterministically: op "
                    f"{self._pulled[index]} was {self._current[index]!r}"
                    f" at snapshot time but {last!r} on restore")
            self._iters.append(iterator)


class StreamingTraceReplayHost:
    """Open-loop delivery from a lazy, time-ordered request iterator.

    The streaming counterpart of
    :class:`~repro.sim.host.TraceReplayHost`: arrivals fire at their
    trace timestamps regardless of device state, but only a single
    look-ahead request is ever held, so a billion-op on-disk trace
    replays in constant memory.  Raises on an out-of-order arrival,
    naming the offending position.
    """

    def __init__(self, sim: Simulator, controller: StorageController,
                 requests: Iterator[Request],
                 scenario: Optional[Scenario] = None) -> None:
        self.sim = sim
        self.controller = controller
        self._iter = iter(requests)
        self._next: Optional[Request] = next(self._iter, None)
        self._pulled = 1
        self.issued = 0
        self.scenario_spec: Optional[Dict[str, Any]] = \
            scenario.spec() if scenario is not None else None

    def start(self) -> None:
        """Schedule the first arrival (no-op for an empty trace)."""
        if self._next is not None:
            self.sim.schedule_at(max(self.sim.now, self._next.time),
                                 self._arrive)

    def _arrive(self) -> None:
        request = self._next
        assert request is not None
        self._next = next(self._iter, None)
        self._pulled += 1
        if self._next is not None:
            if self._next.time < request.time:
                raise ValueError(
                    f"trace must be sorted by arrival time; request "
                    f"{self.issued + 1} arrives at {self._next.time!r} "
                    f"after {request.time!r}")
            self.sim.schedule_at(max(self.sim.now, self._next.time),
                                 self._arrive)
        self.controller.submit(request)
        self.issued += 1

    # -- snapshot support ----------------------------------------------

    def __getstate__(self) -> Dict[str, Any]:
        if self.scenario_spec is None:
            raise TypeError(
                "StreamingTraceReplayHost holds a live request "
                "iterator and no scenario spec to rebuild it from; "
                "construct it with scenario= to make it "
                "snapshot-capable")
        state = self.__dict__.copy()
        del state["_iter"]
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        scenario = scenario_from_spec(self.scenario_spec)
        iterator = iter(scenario.requests())
        last: Optional[Request] = None
        for _ in range(self._pulled):
            last = next(iterator, None)
        if self._pulled and _request_key(last) != _request_key(self._next):
            raise ValueError(
                f"scenario {scenario.name!r} did not regenerate "
                f"deterministically: request {self._pulled} was "
                f"{self._next!r} at snapshot time but {last!r} on "
                f"restore")
        self._iter = iterator


def _request_key(request: Optional[Request]):
    """Identity fields of a trace request (callback excluded)."""
    if request is None:
        return None
    return (request.time, request.kind, request.lpn, request.npages,
            request.tenant)
