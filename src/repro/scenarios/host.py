"""Streaming hosts: drive a controller from lazy scenario iterators.

These mirror the materialized hosts of :mod:`repro.sim.host` — same
event pattern, same request construction, same completion-driven
advancement — but pull operations from iterators one at a time, so a
scenario (or an on-disk trace) of any length runs in bounded memory.

:class:`StreamingClosedLoopHost` is event-for-event identical to
:class:`~repro.sim.host.ClosedLoopHost` on the same op sequence: the
golden fig8 byte-identity test runs the legacy ``streams=`` adapter
through this host, so any divergence fails tier 1.

When the controller has a tracer installed, the closed-loop host emits
a ``scenario.phase`` trace event the first time an op of a new
generator phase is issued — the bridge between the workload's declared
structure (fill/steady/burst/idle) and the device-side event stream.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from repro.observability.events import SCENARIO_PHASE
from repro.scenarios.base import ScenarioOp
from repro.sim.controller import StorageController
from repro.sim.kernel import Simulator
from repro.sim.queues import Request


class StreamingClosedLoopHost:
    """Closed-loop delivery from per-stream op iterators.

    Holds exactly one pending op per stream (the lookahead needed to
    know whether a stream is exhausted); everything else stays inside
    the iterators.

    ``tenant`` is the default tag for ops that carry none of their
    own; a :class:`~repro.scenarios.base.ScenarioOp`'s ``tenant``
    field wins when set.
    """

    def __init__(self, sim: Simulator, controller: StorageController,
                 streams: Sequence[Iterator[ScenarioOp]],
                 tenant: Optional[str] = None) -> None:
        self.sim = sim
        self.controller = controller
        self.tenant = tenant
        self._iters: List[Iterator[ScenarioOp]] = list(streams)
        self._current: List[Optional[ScenarioOp]] = \
            [None] * len(self._iters)
        self._phase = ""
        self.issued = 0

    def start(self) -> None:
        """Pull each stream's first op and kick off the non-empty ones."""
        for index, iterator in enumerate(self._iters):
            op = next(iterator, None)
            self._current[index] = op
            if op is not None:
                self.sim.schedule(0.0, self._issue, index)

    def _issue(self, index: int) -> None:
        op = self._current[index]
        assert op is not None
        trace = getattr(self.controller, "_trace", None)
        if trace is not None and op.phase and op.phase != self._phase:
            trace.event(SCENARIO_PHASE, name=op.phase,
                        prev=self._phase, stream=index)
            self._phase = op.phase
        request = Request(self.sim.now, op.kind, op.lpn, op.npages,
                          tenant=op.tenant if op.tenant is not None
                          else self.tenant)
        request.on_complete = \
            lambda _req, _now, i=index, think=op.think_after: \
            self._advance(i, think)
        self.controller.submit(request)
        self.issued += 1

    def _advance(self, index: int, think: float) -> None:
        nxt = next(self._iters[index], None)
        self._current[index] = nxt
        if nxt is not None:
            self.sim.schedule(think, self._issue, index)

    def resume(self) -> int:
        """Re-issue every unfinished stream after a power cut.

        Mirrors :meth:`repro.sim.host.ClosedLoopHost.resume`: streams
        whose in-flight op never completed retry it from their held
        pending op.  Returns the number of streams restarted.
        """
        restarted = 0
        for index, op in enumerate(self._current):
            if op is not None:
                self.sim.schedule(0.0, self._issue, index)
                restarted += 1
        return restarted


class StreamingTraceReplayHost:
    """Open-loop delivery from a lazy, time-ordered request iterator.

    The streaming counterpart of
    :class:`~repro.sim.host.TraceReplayHost`: arrivals fire at their
    trace timestamps regardless of device state, but only a single
    look-ahead request is ever held, so a billion-op on-disk trace
    replays in constant memory.  Raises on an out-of-order arrival,
    naming the offending position.
    """

    def __init__(self, sim: Simulator, controller: StorageController,
                 requests: Iterator[Request]) -> None:
        self.sim = sim
        self.controller = controller
        self._iter = iter(requests)
        self._next: Optional[Request] = next(self._iter, None)
        self.issued = 0

    def start(self) -> None:
        """Schedule the first arrival (no-op for an empty trace)."""
        if self._next is not None:
            self.sim.schedule_at(max(self.sim.now, self._next.time),
                                 self._arrive)

    def _arrive(self) -> None:
        request = self._next
        assert request is not None
        self._next = next(self._iter, None)
        if self._next is not None:
            if self._next.time < request.time:
                raise ValueError(
                    f"trace must be sorted by arrival time; request "
                    f"{self.issued + 1} arrives at {self._next.time!r} "
                    f"after {request.time!r}")
            self.sim.schedule_at(max(self.sim.now, self._next.time),
                                 self._arrive)
        self.controller.submit(request)
        self.issued += 1
