"""Plain-text tables for experiment output.

The benchmark harness prints the same rows the paper's figures plot;
these helpers keep that rendering consistent and dependency-free.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned ASCII table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells, expected {columns}"
            )
    cells = [[str(h) for h in headers]] + \
        [[_fmt(value) for value in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(columns)]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.rjust(width)
                               for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def render_grouped_bars(data: Mapping[str, Mapping[str, float]],
                        series: Sequence[str],
                        value_format: str = "{:.2f}") -> str:
    """Render a Figure 8(a)/(b)-style grouped table.

    ``data`` maps group name (workload) to per-series values (FTLs);
    an ``Average`` row is appended, matching the paper's figures.
    """
    groups = list(data)
    headers = [""] + list(series)
    rows: List[List[object]] = []
    for group in groups:
        rows.append([group] + [value_format.format(data[group].get(s, float("nan")))
                               for s in series])
    averages: Dict[str, float] = {}
    for s in series:
        values = [data[g][s] for g in groups if s in data[g]]
        averages[s] = sum(values) / len(values) if values else float("nan")
    rows.append(["Average"] + [value_format.format(averages[s])
                               for s in series])
    return render_table(headers, rows)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)
