"""Lifetime metrics: erasures, write amplification, wear spread."""

from __future__ import annotations

import statistics
from typing import Dict, List, Mapping

from repro.nand.array import NandArray


def erasure_summary(counters: Mapping[str, int]) -> Dict[str, float]:
    """Lifetime-relevant summary of one run's operation counters."""
    host = max(1, counters.get("host_programs", 0))
    total_programs = (counters.get("host_programs", 0)
                      + counters.get("gc_programs", 0)
                      + counters.get("backup_programs", 0))
    return {
        "erases": float(counters.get("erases", 0)),
        "write_amplification": total_programs / host,
        "backup_overhead": counters.get("backup_programs", 0) / host,
        "gc_overhead": counters.get("gc_programs", 0) / host,
    }


def wear_spread(array: NandArray) -> Dict[str, float]:
    """Distribution of per-block erase counts across the device.

    A large spread means uneven wear; the evaluated FTLs use no
    explicit wear levelling, so this quantifies how much the block
    allocation policies spread erasures on their own.
    """
    counts: List[int] = []
    for chip in array.chips:
        counts.extend(chip.erase_counts())
    if not counts:
        raise ValueError("array has no blocks")
    mean = statistics.fmean(counts)
    return {
        "min": float(min(counts)),
        "max": float(max(counts)),
        "mean": mean,
        "stdev": statistics.pstdev(counts),
    }
