"""ASCII plots for experiment reports.

The benchmark harness is terminal-only; these renderers echo the
paper's figure types — box plots for the Figure 4 distributions and
grouped horizontal bars for Figures 8(a)/(b) — without any plotting
dependency.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from repro.reliability.montecarlo import BoxStats


def ascii_box_plot(stats_by_label: Mapping[str, BoxStats],
                   width: int = 60) -> str:
    """Render box plots on a shared horizontal axis.

    ``|`` marks min/max whiskers, ``[``/``]`` the quartiles and ``*``
    the median — one row per label.
    """
    if not stats_by_label:
        raise ValueError("nothing to plot")
    if width < 10:
        raise ValueError("width must be at least 10")
    lo = min(s.minimum for s in stats_by_label.values())
    hi = max(s.maximum for s in stats_by_label.values())
    span = hi - lo or 1.0

    def column(value: float) -> int:
        return min(width - 1, max(0, int((value - lo) / span
                                         * (width - 1))))

    label_width = max(len(label) for label in stats_by_label)
    lines = []
    for label, stats in stats_by_label.items():
        row = [" "] * width
        for position in range(column(stats.minimum),
                              column(stats.maximum) + 1):
            row[position] = "-"
        row[column(stats.minimum)] = "|"
        row[column(stats.maximum)] = "|"
        for position in range(column(stats.p25),
                              column(stats.p75) + 1):
            row[position] = "="
        row[column(stats.p25)] = "["
        row[column(stats.p75)] = "]"
        row[column(stats.median)] = "*"
        lines.append(f"{label:>{label_width}s}  " + "".join(row))
    lines.append(f"{'':>{label_width}s}  "
                 f"{lo:<{width // 2}.3g}{hi:>{width - width // 2}.3g}")
    return "\n".join(lines)


def ascii_bars(values: Mapping[str, float], width: int = 50,
               value_format: str = "{:.2f}") -> str:
    """Render a horizontal bar chart (one row per label)."""
    if not values:
        raise ValueError("nothing to plot")
    peak = max(values.values())
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label in values)
    lines = []
    for label, value in values.items():
        bar = "#" * max(0, int(value / peak * width))
        lines.append(
            f"{label:>{label_width}s}  {bar} "
            + value_format.format(value)
        )
    return "\n".join(lines)


def ascii_grouped_bars(data: Mapping[str, Mapping[str, float]],
                       width: int = 40) -> str:
    """Figure 8-style grouped bars: one block per group (workload)."""
    blocks = []
    for group, values in data.items():
        blocks.append(group)
        blocks.append(ascii_bars(values, width))
        blocks.append("")
    return "\n".join(blocks).rstrip()


def ascii_cdf(points_by_label: Mapping[str, "list[Tuple[float, float]]"],
              width: int = 60, height: int = 12) -> str:
    """Plot CDF curves (fraction on Y, value on X) as a char grid."""
    if not points_by_label:
        raise ValueError("nothing to plot")
    all_values = [value for points in points_by_label.values()
                  for _, value in points]
    lo, hi = min(all_values), max(all_values)
    span = hi - lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "abcdefgh"
    legend: Dict[str, str] = {}
    for index, (label, points) in enumerate(points_by_label.items()):
        marker = markers[index % len(markers)]
        legend[label] = marker
        for fraction, value in points:
            x = min(width - 1, int((value - lo) / span * (width - 1)))
            y = min(height - 1, int((1.0 - fraction) * (height - 1)))
            grid[y][x] = marker
    lines = ["1.0 |" + "".join(grid[0])]
    lines += ["    |" + "".join(row) for row in grid[1:]]
    lines += ["0.0 +" + "-" * width]
    lines.append(f"     {lo:<{width // 2}.3g}{hi:>{width - width // 2}.3g}")
    lines.append("     " + "  ".join(f"{m}={label}"
                                     for label, m in legend.items()))
    return "\n".join(lines)
