"""Metric post-processing and report rendering.

Turns raw :class:`~repro.experiments.runner.RunResult` objects into the
paper's reported quantities: normalised IOPS (Figure 8(a)), normalised
block erasure counts (Figure 8(b)), write-bandwidth CDFs (Figure 8(c)),
write amplification and wear statistics, and plain-text tables.
"""

from repro.metrics.iops import normalize, speedup_matrix
from repro.metrics.bandwidth import cdf_points, peak_ratio
from repro.metrics.latency import latency_summary, percentile
from repro.metrics.lifetime import erasure_summary, wear_spread
from repro.metrics.plots import (
    ascii_bars,
    ascii_box_plot,
    ascii_cdf,
    ascii_grouped_bars,
)
from repro.metrics.report import render_grouped_bars, render_table
from repro.metrics.utilization import (
    chip_utilization,
    render_utilization,
    utilization_summary,
)

__all__ = [
    "normalize",
    "speedup_matrix",
    "cdf_points",
    "peak_ratio",
    "latency_summary",
    "percentile",
    "erasure_summary",
    "wear_spread",
    "render_table",
    "render_grouped_bars",
    "ascii_box_plot",
    "ascii_bars",
    "ascii_grouped_bars",
    "ascii_cdf",
    "chip_utilization",
    "utilization_summary",
    "render_utilization",
]
