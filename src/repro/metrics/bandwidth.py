"""Write-bandwidth CDF utilities (Figure 8(c))."""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.sim.stats import WindowedBandwidth


def cdf_points(tracker: WindowedBandwidth,
               fractions: Sequence[float] = (0.1, 0.25, 0.5, 0.75,
                                             0.9, 0.99, 1.0)
               ) -> List[Tuple[float, float]]:
    """Sample a bandwidth CDF at fixed fractions: ``(fraction, MB/s)``."""
    samples = sorted(tracker.samples_mbps())
    if not samples:
        raise ValueError("no bandwidth samples recorded")
    points: List[Tuple[float, float]] = []
    for fraction in fractions:
        index = min(len(samples) - 1, max(0, int(fraction * len(samples)) - 1))
        points.append((fraction, samples[index]))
    return points


def peak_ratio(trackers: Mapping[str, WindowedBandwidth],
               numerator: str, denominator: str,
               fraction: float = 0.99) -> float:
    """Ratio of two systems' peak (high-percentile) write bandwidth.

    The paper's Figure 8(c) claim — flexFTL's peak write bandwidth is
    ~2.13x rtfFTL's — is this number with flexFTL over rtfFTL.
    """
    num = trackers[numerator].percentile(fraction)
    den = trackers[denominator].percentile(fraction)
    if den == 0:
        raise ValueError(f"{denominator!r} has zero bandwidth at the peak")
    return num / den


def mean_bandwidth(tracker: WindowedBandwidth) -> float:
    """Mean of the active-window bandwidth samples in MB/s."""
    samples = tracker.samples_mbps()
    if not samples:
        raise ValueError("no bandwidth samples recorded")
    return sum(samples) / len(samples)
