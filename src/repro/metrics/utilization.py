"""Device-utilisation metrics: how busy each chip actually was.

Chips accumulate ``busy_time`` as operations execute; dividing by the
run's makespan gives the utilisation the dispatcher achieved.  Low,
even utilisation under an intensive workload points at a host-side
bottleneck; skew across chips points at striping problems.
"""

from __future__ import annotations

from typing import Dict, List

from repro.metrics.report import render_table


def chip_utilization(array, elapsed: float) -> List[float]:
    """Per-chip busy fraction over ``elapsed`` seconds."""
    if elapsed <= 0:
        raise ValueError("elapsed must be positive")
    return [chip.busy_time / elapsed for chip in array.chips]


def utilization_summary(array, elapsed: float) -> Dict[str, float]:
    """Min/mean/max chip utilisation of a run."""
    fractions = chip_utilization(array, elapsed)
    return {
        "min": min(fractions),
        "mean": sum(fractions) / len(fractions),
        "max": max(fractions),
    }


def render_utilization(array, elapsed: float) -> str:
    """Render the per-chip utilisation table."""
    fractions = chip_utilization(array, elapsed)
    rows = [[chip_id, f"{fraction * 100:.1f}%"]
            for chip_id, fraction in enumerate(fractions)]
    summary = utilization_summary(array, elapsed)
    rows.append(["mean", f"{summary['mean'] * 100:.1f}%"])
    return render_table(["chip", "busy"], rows)
