"""Request-latency analysis.

The paper reports IOPS and bandwidth; latency *distributions* add a
complementary view this harness also exposes: under FPS an incoming
read can stall up to a full 2000 us MSB program, while a flexFTL
LSB-burst keeps the worst in-flight program at 500 us — a real (if
unreported) RPS side effect.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of a sample set."""
    if not samples:
        raise ValueError("no samples")
    if not (0.0 <= fraction <= 1.0):
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, int(fraction * len(ordered))))
    return ordered[index]


def latency_summary(samples: Sequence[float]) -> Dict[str, float]:
    """Mean / p50 / p95 / p99 / max of a latency sample set (seconds)."""
    if not samples:
        raise ValueError("no samples")
    ordered = sorted(samples)
    return {
        "mean": sum(ordered) / len(ordered),
        "p50": percentile(ordered, 0.50),
        "p95": percentile(ordered, 0.95),
        "p99": percentile(ordered, 0.99),
        "max": ordered[-1],
    }


def summary_row(label: str, samples: Sequence[float],
                unit: float = 1e-3) -> List[str]:
    """One formatted report row (default unit: milliseconds)."""
    summary = latency_summary(samples)
    return [
        label,
        f"{summary['mean'] / unit:.3f}",
        f"{summary['p50'] / unit:.3f}",
        f"{summary['p95'] / unit:.3f}",
        f"{summary['p99'] / unit:.3f}",
        f"{summary['max'] / unit:.3f}",
    ]
