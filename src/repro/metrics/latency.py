"""Request-latency analysis.

The paper reports IOPS and bandwidth; latency *distributions* add a
complementary view this harness also exposes: under FPS an incoming
read can stall up to a full 2000 us MSB program, while a flexFTL
LSB-burst keeps the worst in-flight program at 500 us — a real (if
unreported) RPS side effect.
"""

from __future__ import annotations

from typing import Dict, List, Sequence


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of a sample set.

    ``fraction`` must lie in (0, 1]: a zeroth percentile has no
    nearest-rank definition, and values outside the unit interval
    would silently index the wrong rank.
    """
    if not samples:
        raise ValueError("no samples")
    if not (0.0 < fraction <= 1.0):
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(fraction * len(ordered)))
    return ordered[index]


#: The :func:`latency_summary` of an empty sample set: every field is
#: NaN, matching the repo-wide convention that statistics of an empty
#: run are undefined rather than zero.
EMPTY_SUMMARY: Dict[str, float] = {
    "mean": float("nan"),
    "p50": float("nan"),
    "p95": float("nan"),
    "p99": float("nan"),
    "max": float("nan"),
}


def latency_summary(samples: Sequence[float]) -> Dict[str, float]:
    """Mean / p50 / p95 / p99 / max of a latency sample set (seconds).

    An empty sample set yields NaN fields (see :data:`EMPTY_SUMMARY`)
    so callers summarising quiet tenants or empty runs need no guard.
    """
    if not samples:
        return dict(EMPTY_SUMMARY)
    ordered = sorted(samples)
    return {
        "mean": sum(ordered) / len(ordered),
        "p50": percentile(ordered, 0.50),
        "p95": percentile(ordered, 0.95),
        "p99": percentile(ordered, 0.99),
        "max": ordered[-1],
    }


def summary_row(label: str, samples: Sequence[float],
                unit: float = 1e-3) -> List[str]:
    """One formatted report row (default unit: milliseconds)."""
    summary = latency_summary(samples)
    return [
        label,
        f"{summary['mean'] / unit:.3f}",
        f"{summary['p50'] / unit:.3f}",
        f"{summary['p95'] / unit:.3f}",
        f"{summary['p99'] / unit:.3f}",
        f"{summary['max'] / unit:.3f}",
    ]
