"""IOPS normalisation and comparison helpers (Figure 8(a))."""

from __future__ import annotations

from typing import Dict, Mapping


def normalize(values: Mapping[str, float], baseline: str,
              zero_floor: float = 0.0) -> Dict[str, float]:
    """Normalise a metric mapping to one entry (the paper's pageFTL).

    Raises ``KeyError`` when the baseline is missing.  A zero baseline
    raises ``ValueError`` unless ``zero_floor`` is positive, in which
    case the floor substitutes for the denominator (useful for count
    metrics like erasures, which can legitimately be zero in short
    runs).
    """
    if baseline not in values:
        raise KeyError(f"baseline {baseline!r} not among {sorted(values)}")
    base = values[baseline]
    if base == 0:
        if zero_floor <= 0:
            raise ValueError(f"baseline {baseline!r} value is zero")
        base = zero_floor
    return {name: value / base for name, value in values.items()}


def speedup_matrix(values: Mapping[str, float]) -> Dict[str, Dict[str, float]]:
    """Pairwise ratios ``matrix[a][b] = values[a] / values[b]``.

    Used to express the paper's headline claims ("flexFTL outperforms
    parityFTL by up to 56 %") directly from a result set.
    """
    matrix: Dict[str, Dict[str, float]] = {}
    for a, va in values.items():
        matrix[a] = {}
        for b, vb in values.items():
            matrix[a][b] = float("inf") if vb == 0 else va / vb
    return matrix
