"""Measurement harness behind ``repro perfbench``.

Methodology
-----------

Each workload is timed on a **fresh system** (new simulator, device and
FTL) so runs are independent and deterministic.  The timed region
covers the sequential-fill warm-up *and* the measured workload: the
warm-up is itself write-pipeline work and excluding it would flatter
configurations that shift cost into preconditioning.  The metric is
simulator events per second (``sim.processed / wall``), the rate the
event kernel retires scheduled events; host operations per second is
reported alongside as the end-to-end number.

By default the device is built with ``track_history=False`` — the
per-block program-history lists exist for the reliability analyses and
change no simulation outcome, so benchmarks opt out of the bookkeeping
(``--full-history`` restores it; see ``docs/PERFORMANCE.md``).

Timed regions run with the cyclic garbage collector quiesced (one
``gc.collect()`` then ``gc.disable()``, restored afterwards): the
simulation allocates hundreds of thousands of acyclic objects per run
and collector pauses only add variance, not signal.

Wall-clock numbers are inherently noisy (+/-10% on a busy machine);
compare medians of several runs, never single samples.
"""

from __future__ import annotations

import contextlib
import dataclasses
import gc
import json
import platform
import statistics
import time
from math import isqrt
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.runner import ExperimentConfig, build_system
from repro.nand.geometry import NandGeometry
from repro.qos.host import MultiTenantHost, TenantSpec
from repro.sim.host import ClosedLoopHost, StreamOp
from repro.workloads.benchmarks import WorkloadProfile, build_workload
from repro.workloads.synthetic import sequential_fill

#: The benchmarked FTL: flexFTL exercises the paper's full write
#: pipeline (two-phase allocation, parity backup, quota) and is the
#: hottest configuration of the core.
BENCH_FTL = "flexFTL"

#: Fraction of the logical space the benchmark workloads occupy
#: (matches the Figure 8 evaluation utilisation).
BENCH_UTILIZATION = 0.75

#: Operations of the fig8/zipf workloads at ``--scale 1.0``.
BASE_OPS = 8000

#: Sequential rewrite passes of the endurance loop at ``--scale 1.0``.
BASE_PASSES = 3

#: Default acceptable enabled-tracing slowdown (percent) for
#: ``--trace-overhead``.  One constant shared by the CLI default, the
#: CI guard and the committed ``BENCH_PR5.json`` so the three can
#: never silently judge against different budgets again.  20% bounds
#: the full capture cost (per-op ring-buffer records plus phase
#: bookkeeping) with headroom for shared-runner noise; the measured
#: best-of overhead is well under it (see docs/PERFORMANCE.md).
TRACE_OVERHEAD_BUDGET_PCT = 20.0

#: Default acceptable armed-physics slowdown (percent) for
#: ``--physics-overhead``.  The physics error engine costs more than
#: tracing by design — every op completion updates per-block history
#: state and every sampled host read fetches a (memoized) closed-form
#: failure probability and draws from the RNG stream — and both arms
#: must run with ``track_history=True`` (the engine's prerequisite),
#: so the budget only bounds the engine itself, not the history
#: bookkeeping.  Recorded in ``BENCH_PR10.json``.
PHYSICS_OVERHEAD_BUDGET_PCT = 30.0

#: Baseline stress point of the physics-overhead guard: worn and aged
#: enough that probability lookups span many distinct memoization keys,
#: but below the ECC cliff so ladder recoveries stay rare — the guard
#: times the per-read sampling path, not the (intentionally expensive)
#: error ladder.
PHYSICS_BENCH_PE = 3000
PHYSICS_BENCH_RETENTION_HOURS = 8760.0

#: Chip-count multipliers of ``--scale-sweep`` (geometry grows by
#: ``sqrt(m)`` per axis, so the chip count scales by exactly ``m``).
SWEEP_MULTIPLIERS = (1, 4, 16)


@contextlib.contextmanager
def _quiesced_gc():
    """Collect, then disable, the cyclic GC around a timed region."""
    was_enabled = gc.isenabled()
    gc.collect()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def sweep_geometry(multiplier: int) -> NandGeometry:
    """The benchmark geometry scaled to ``multiplier`` times the chips.

    Both die axes grow by ``sqrt(multiplier)`` — channels from 4 and
    chips per channel from 2 — so parallelism rises without making
    individual chips bigger; blocks, pages and page size stay at the
    experiment defaults.  ``multiplier`` must be a perfect square.
    """
    multiplier = int(multiplier)
    factor = isqrt(multiplier) if multiplier > 0 else 0
    if multiplier < 1 or factor * factor != multiplier:
        raise ValueError(
            f"sweep multiplier must be a positive perfect square, "
            f"got {multiplier}")
    return NandGeometry(
        channels=4 * factor,
        chips_per_channel=2 * factor,
        blocks_per_chip=64,
        pages_per_block=64,
        page_size=4096,
    )

#: 50/50 read/write Zipf mix: exercises the read path (mapping lookup,
#: address decode, chip read) alongside the write pipeline.
ZIPF_PROFILE = WorkloadProfile(
    name="zipf-mix", read_fraction=0.5, intensiveness="very high",
    streams=8, npages=2, think=0.0, zipf_s=1.0,
)


def _fig8_write(span: int, scale: float, seed: int
                ) -> List[List[StreamOp]]:
    ops = max(200, int(BASE_OPS * scale))
    return build_workload("NTRX", span, total_ops=ops, seed=seed)


def _zipf_mix(span: int, scale: float, seed: int
              ) -> List[List[StreamOp]]:
    ops = max(200, int(BASE_OPS * scale))
    return build_workload("zipf-mix", span, total_ops=ops, seed=seed,
                          profile=ZIPF_PROFILE)


def _endurance_loop(span: int, scale: float, seed: int
                    ) -> List[List[StreamOp]]:
    passes = max(1, round(BASE_PASSES * scale))
    loop: List[StreamOp] = []
    for _ in range(passes):
        loop.extend(sequential_fill(span))
    return [loop]


#: name -> stream builder ``(span, scale, seed) -> streams``, in
#: canonical report order.
WORKLOADS: Dict[str, Callable[[int, float, int], List[List[StreamOp]]]] = {
    "fig8_write": _fig8_write,
    "zipf_mix": _zipf_mix,
    "endurance_loop": _endurance_loop,
}


def _qos_mix(span: int, scale: float, seed: int) -> List[TenantSpec]:
    from repro.experiments.qos_isolation import build_noisy_neighbor

    ops = max(200, int(BASE_OPS * scale))
    return build_noisy_neighbor(span, ops, seed)


#: Arbitration policy the qos_mix scenario exercises (DRR carries the
#: most per-decision bookkeeping of the four).
QOS_ARBITER = "drr"

#: Multi-tenant scenarios timed through the QoS front-end
#: (``(span, scale, seed) -> tenant specs``).  Not part of the default
#: set: the front-end adds host-side work by design, so its rates are
#: compared against their own floor, not the raw-core one.
QOS_WORKLOADS: Dict[str, Callable[[int, float, int],
                                  List[TenantSpec]]] = {
    "qos_mix": _qos_mix,
}

#: Opt-in streaming-replay benchmark (see :func:`time_scenario_replay`).
SCENARIO_REPLAY = "scenario_replay"

#: Preset the replay benchmark exports and streams back (fileserver is
#: the most write- and burst-heavy of the Table-1 presets).
SCENARIO_REPLAY_PRESET = "fileserver"


@dataclasses.dataclass(frozen=True)
class WorkloadTiming:
    """One timed workload run."""

    name: str
    events: int
    host_ops: int
    wall_seconds: float
    events_per_sec: float
    host_ops_per_sec: float

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class PerfbenchResult:
    """All timed workloads of one ``repro perfbench`` invocation."""

    timings: Dict[str, WorkloadTiming]
    scale: float
    span: int
    track_history: bool
    floor: Optional[float] = None
    profile_path: Optional[str] = None
    kernel: str = "calendar"
    stepping: str = "auto"

    # -- summary -------------------------------------------------------

    def min_events_per_sec(self) -> float:
        """Slowest workload's event rate (what ``--floor`` tests)."""
        return min(t.events_per_sec for t in self.timings.values())

    def median_events_per_sec(self) -> float:
        """Median event rate across the timed workloads."""
        return statistics.median(
            t.events_per_sec for t in self.timings.values())

    def passed(self) -> bool:
        """Whether the run met the ``--floor`` target (if any)."""
        return self.floor is None or self.min_events_per_sec() >= self.floor

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON projection (the ``BENCH_PR2.json`` schema)."""
        payload: Dict[str, object] = {
            "ftl": BENCH_FTL,
            "scale": self.scale,
            "span": self.span,
            "track_history": self.track_history,
            "kernel": self.kernel,
            "stepping": self.stepping,
            "python": platform.python_version(),
            "workloads": {name: t.to_dict()
                          for name, t in self.timings.items()},
            "summary": {
                "min_events_per_sec": self.min_events_per_sec(),
                "median_events_per_sec": self.median_events_per_sec(),
            },
        }
        if self.floor is not None:
            payload["floor"] = {
                "events_per_sec": self.floor,
                "passed": self.passed(),
            }
        return payload

    # -- rendering -----------------------------------------------------

    def render(self) -> str:
        """Text report: one row per workload plus the summary."""
        header = (f"{'workload':16s} {'events':>10s} {'host ops':>10s} "
                  f"{'wall [s]':>9s} {'events/s':>10s} {'host-ops/s':>11s}")
        rows = [header, "-" * len(header)]
        for t in self.timings.values():
            rows.append(
                f"{t.name:16s} {t.events:>10d} {t.host_ops:>10d} "
                f"{t.wall_seconds:>9.3f} {t.events_per_sec:>10.0f} "
                f"{t.host_ops_per_sec:>11.0f}"
            )
        rows.append("")
        rows.append(
            f"median {self.median_events_per_sec():.0f} events/s, "
            f"min {self.min_events_per_sec():.0f} events/s "
            f"(scale {self.scale:g}, track_history={self.track_history})"
        )
        if self.floor is not None:
            verdict = "PASS" if self.passed() else "FAIL"
            rows.append(
                f"floor {self.floor:.0f} events/s: {verdict}"
            )
        if self.profile_path is not None:
            rows.append(f"cProfile stats written to {self.profile_path}")
        return "\n".join(rows)


def time_workload(name: str, streams: Sequence[List[StreamOp]],
                  config: ExperimentConfig,
                  warmup_span: int) -> WorkloadTiming:
    """Time one workload on a freshly built system.

    The warm-up fill runs inside the timed region (see the module
    docstring); ``events`` counts every kernel event of fill plus
    workload, ``host_ops`` every host request of both phases.
    """
    sim, _array, _buffer, _ftl, controller = build_system(BENCH_FTL,
                                                          config)
    host_ops = sum(len(s) for s in streams)
    with _quiesced_gc():
        start = time.perf_counter()
        fill = sequential_fill(warmup_span)
        warm = ClosedLoopHost(sim, controller, [fill])
        warm.start()
        sim.run()
        host = ClosedLoopHost(sim, controller, list(streams))
        host.start()
        sim.run()
        wall = time.perf_counter() - start
    total_ops = host_ops + len(fill)
    return WorkloadTiming(
        name=name,
        events=sim.processed,
        host_ops=total_ops,
        wall_seconds=wall,
        events_per_sec=sim.processed / wall,
        host_ops_per_sec=total_ops / wall,
    )


def time_qos_workload(name: str, tenants: Sequence[TenantSpec],
                      config: ExperimentConfig,
                      warmup_span: int) -> WorkloadTiming:
    """Time one multi-tenant workload through the QoS front-end.

    Same methodology as :func:`time_workload` (fresh system, warm-up
    fill inside the timed region), but the measured phase runs a
    :class:`~repro.qos.host.MultiTenantHost` with per-tenant
    submission queues and :data:`QOS_ARBITER` arbitration — the number
    this produces covers the whole QoS dispatch path, not just the
    simulation core.
    """
    sim, _array, _buffer, _ftl, controller = build_system(BENCH_FTL,
                                                          config)
    host_ops = sum(spec.total_ops for spec in tenants)
    with _quiesced_gc():
        start = time.perf_counter()
        fill = sequential_fill(warmup_span)
        warm = ClosedLoopHost(sim, controller, [fill])
        warm.start()
        sim.run()
        host = MultiTenantHost(sim, controller, list(tenants),
                               arbiter=QOS_ARBITER)
        host.start()
        sim.run()
        wall = time.perf_counter() - start
    total_ops = host_ops + len(fill)
    return WorkloadTiming(
        name=name,
        events=sim.processed,
        host_ops=total_ops,
        wall_seconds=wall,
        events_per_sec=sim.processed / wall,
        host_ops_per_sec=total_ops / wall,
    )


def time_traced_workload(name: str, streams: Sequence[List[StreamOp]],
                         config: ExperimentConfig,
                         warmup_span: int) -> WorkloadTiming:
    """Time one workload with a :class:`Tracer` armed.

    Identical timed region to :func:`time_workload` — fresh system,
    warm-up fill included — with the tracer installed before the clock
    starts and its ``warmup``/``measured`` phase bookkeeping inside the
    region, exactly how a real traced run pays for it.
    """
    from repro.observability.tracer import Tracer

    sim, _array, _buffer, _ftl, controller = build_system(BENCH_FTL,
                                                          config)
    host_ops = sum(len(s) for s in streams)
    tracer = Tracer()
    tracer.install(controller)
    with _quiesced_gc():
        start = time.perf_counter()
        tracer.begin_phase("warmup")
        fill = sequential_fill(warmup_span)
        warm = ClosedLoopHost(sim, controller, [fill])
        warm.start()
        sim.run()
        tracer.begin_phase("measured")
        host = ClosedLoopHost(sim, controller, list(streams))
        host.start()
        sim.run()
        tracer.finish()
        wall = time.perf_counter() - start
    tracer.detach()
    total_ops = host_ops + len(fill)
    return WorkloadTiming(
        name=name,
        events=sim.processed,
        host_ops=total_ops,
        wall_seconds=wall,
        events_per_sec=sim.processed / wall,
        host_ops_per_sec=total_ops / wall,
    )


def time_physics_workload(name: str, streams: Sequence[List[StreamOp]],
                          config: ExperimentConfig,
                          warmup_span: int,
                          physics) -> WorkloadTiming:
    """Time one workload with the physics error engine armed.

    Identical timed region to :func:`time_workload` — fresh system,
    warm-up fill included — with the engine attached between fill and
    measured workload (the supported arming point), so its
    history-priming pass *and* its per-completion/per-read costs are
    all inside the clock, exactly how a real armed run pays for them.
    ``config`` must have ``track_history=True`` (the engine's
    prerequisite); pass the same config to the untraced arm so the
    comparison isolates the engine.
    """
    from repro.reliability.physics import PhysicsEngine

    sim, _array, _buffer, _ftl, controller = build_system(BENCH_FTL,
                                                          config)
    host_ops = sum(len(s) for s in streams)
    with _quiesced_gc():
        start = time.perf_counter()
        fill = sequential_fill(warmup_span)
        warm = ClosedLoopHost(sim, controller, [fill])
        warm.start()
        sim.run()
        controller.attach_physics(PhysicsEngine(physics))
        host = ClosedLoopHost(sim, controller, list(streams))
        host.start()
        sim.run()
        wall = time.perf_counter() - start
    total_ops = host_ops + len(fill)
    return WorkloadTiming(
        name=name,
        events=sim.processed,
        host_ops=total_ops,
        wall_seconds=wall,
        events_per_sec=sim.processed / wall,
        host_ops_per_sec=total_ops / wall,
    )


def time_scenario_replay(name: str, path: str, host_ops: int,
                         config: ExperimentConfig,
                         warmup_span: int) -> WorkloadTiming:
    """Time a streaming closed-loop replay of an on-disk scenario CSV.

    Same shape as :func:`time_workload` — fresh system, warm-up fill
    inside the timed region — but the measured phase streams
    ``operation_sequence`` rows straight off disk through a
    :class:`~repro.scenarios.host.StreamingClosedLoopHost`.  CSV
    parsing is deliberately *inside* the timed region: a real replay
    pays for it on every run, and this benchmark is the guard that the
    bounded-memory path stays within shouting distance of the
    materialized one.  (Exporting the file is not timed — the caller
    writes it beforehand.)
    """
    from repro.scenarios.csvio import TraceScenario
    from repro.scenarios.host import StreamingClosedLoopHost

    sim, _array, _buffer, _ftl, controller = build_system(BENCH_FTL,
                                                          config)
    with _quiesced_gc():
        start = time.perf_counter()
        fill = sequential_fill(warmup_span)
        warm = ClosedLoopHost(sim, controller, [fill])
        warm.start()
        sim.run()
        scenario = TraceScenario(path)
        host = StreamingClosedLoopHost(sim, controller,
                                       scenario.op_streams())
        host.start()
        sim.run()
        wall = time.perf_counter() - start
    total_ops = host_ops + len(fill)
    return WorkloadTiming(
        name=name,
        events=sim.processed,
        host_ops=total_ops,
        wall_seconds=wall,
        events_per_sec=sim.processed / wall,
        host_ops_per_sec=total_ops / wall,
    )


def _scenario_replay_case(span: int, scale: float, seed: int,
                          config: ExperimentConfig) -> WorkloadTiming:
    """Export the replay preset to a temp CSV and time its replay."""
    import os
    import tempfile

    from repro.scenarios.csvio import write_scenario_csv
    from repro.scenarios.presets import make_preset

    ops = max(200, int(BASE_OPS * scale))
    scenario = make_preset(SCENARIO_REPLAY_PRESET, span, ops, seed=seed)
    with tempfile.TemporaryDirectory(prefix="repro-perfbench-") as tmp:
        path = os.path.join(
            tmp, f"operation_sequence_{SCENARIO_REPLAY_PRESET}.csv")
        rows = write_scenario_csv(scenario, path)
        return time_scenario_replay(SCENARIO_REPLAY, path, rows,
                                    config, span)


@dataclasses.dataclass
class TraceOverheadResult:
    """Outcome of ``repro perfbench --trace-overhead``.

    ``off``/``on`` hold per-pair event rates from paired
    untraced/traced runs; within each pair the execution order
    alternates (off-first on even pairs, on-first on odd) so that slow
    wall-clock drift cancels instead of biasing one arm.

    Two estimators are reported.  The headline :meth:`overhead_pct` is
    the *best-of* (minimum-time) estimate — external noise only ever
    slows a run down, so the fastest observation of each arm is the
    closest to the true cost, which is why ``timeit`` recommends
    ``min()`` over means.  :meth:`paired_median_pct` (the median of
    per-pair on/off ratios) is the drift-robust cross-check; on a
    loaded machine it can overstate the true cost by several percent
    (an off/off control run of the same protocol measured +0.4%
    median, individual pairs jittering well past +-10%).
    """

    workload: str
    scale: float
    span: int
    rounds: int
    off: List[float]
    on: List[float]
    budget_pct: float

    def best_off(self) -> float:
        return max(self.off)

    def best_on(self) -> float:
        return max(self.on)

    def pair_overheads_pct(self) -> List[float]:
        """Per-pair slowdown ``100 * (1 - on/off)``, in percent."""
        return [(off - on) / off * 100.0
                for off, on in zip(self.off, self.on)]

    def paired_median_pct(self) -> float:
        """Median of the per-pair slowdowns (drift-robust, noise-shy)."""
        return statistics.median(self.pair_overheads_pct())

    def overhead_pct(self) -> float:
        """Headline slowdown: best-of-N off vs best-of-N on."""
        off = self.best_off()
        return (off - self.best_on()) / off * 100.0

    def passed(self) -> bool:
        return self.overhead_pct() <= self.budget_pct

    def to_dict(self) -> Dict[str, object]:
        """JSON projection (the ``BENCH_PR5.json`` schema)."""
        return {
            "ftl": BENCH_FTL,
            "workload": self.workload,
            "scale": self.scale,
            "span": self.span,
            "rounds": self.rounds,
            "python": platform.python_version(),
            "methodology": (
                "paired untraced/traced runs on fresh systems with "
                "within-pair order alternating per pair, fill + "
                "workload inside the timed region; headline overhead "
                "compares the best (fastest) observation of each arm "
                "because noise is strictly additive; the median of "
                "per-pair ratios is reported as a drift-robust "
                "cross-check (an off/off control of this protocol "
                "measured +0.4% median with +-10% pair jitter)"),
            "events_per_sec": {"off": list(self.off),
                               "on": list(self.on)},
            "pair_overheads_pct": self.pair_overheads_pct(),
            "summary": {
                "best_off": self.best_off(),
                "best_on": self.best_on(),
                "overhead_pct": self.overhead_pct(),
                "paired_median_pct": self.paired_median_pct(),
                "budget_pct": self.budget_pct,
                "passed": self.passed(),
            },
        }

    def render(self) -> str:
        rows = [
            f"trace overhead: {self.workload} x{self.rounds} pairs "
            f"(scale {self.scale:g})",
            f"{'pair':>5s} {'off ev/s':>10s} {'on ev/s':>10s} "
            f"{'pair %':>8s}",
        ]
        pair_pcts = self.pair_overheads_pct()
        for index, (off, on) in enumerate(zip(self.off, self.on)):
            rows.append(f"{index:>5d} {off:>10.0f} {on:>10.0f} "
                        f"{pair_pcts[index]:>+8.2f}")
        rows.append("")
        verdict = "PASS" if self.passed() else "FAIL"
        rows.append(
            f"best off {self.best_off():.0f} ev/s, "
            f"on {self.best_on():.0f} ev/s -> "
            f"{self.overhead_pct():.2f}% overhead "
            f"(paired median {self.paired_median_pct():+.2f}%, "
            f"budget {self.budget_pct:g}%): {verdict}")
        return "\n".join(rows)


def run_trace_overhead(
    workload: str = "fig8_write",
    scale: float = 1.0,
    seed: int = 1,
    rounds: int = 5,
    budget_pct: float = TRACE_OVERHEAD_BUDGET_PCT,
    output_path: Optional[str] = None,
) -> TraceOverheadResult:
    """Measure the enabled-tracing slowdown against ``budget_pct``.

    Runs ``rounds`` pairs of untraced and traced executions of one
    :data:`WORKLOADS` workload, alternating which arm goes first
    within each pair, and compares the best observation of each arm
    (see :class:`TraceOverheadResult` for why best-of, not means).
    This is the perf guard for the observability layer: the
    determinism guard (traced results byte-identical) lives in the
    test suite, this one bounds the wall-clock price.
    """
    if workload not in WORKLOADS:
        raise KeyError(f"unknown workload {workload!r}; trace overhead "
                       f"supports {sorted(WORKLOADS)}")
    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")
    config = ExperimentConfig(track_history=False)
    _, _, _, probe, _ = build_system(BENCH_FTL, config)
    span = max(1, int(probe.logical_pages * BENCH_UTILIZATION))
    streams = WORKLOADS[workload](span, scale, seed)

    off: List[float] = []
    on: List[float] = []
    for index in range(rounds):
        if index % 2 == 0:
            off.append(time_workload(workload, streams, config,
                                     span).events_per_sec)
            on.append(time_traced_workload(workload, streams, config,
                                           span).events_per_sec)
        else:
            on.append(time_traced_workload(workload, streams, config,
                                           span).events_per_sec)
            off.append(time_workload(workload, streams, config,
                                     span).events_per_sec)

    result = TraceOverheadResult(
        workload=workload,
        scale=scale,
        span=span,
        rounds=rounds,
        off=off,
        on=on,
        budget_pct=budget_pct,
    )
    if output_path is not None:
        with open(output_path, "w", encoding="utf-8") as handle:
            json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return result


@dataclasses.dataclass
class PhysicsOverheadResult(TraceOverheadResult):
    """Outcome of ``repro perfbench --physics-overhead``.

    Same paired-measurement estimators as
    :class:`TraceOverheadResult` (best-of headline, paired-median
    cross-check, alternating within-pair order), applied to the
    physics-grounded error engine: ``off`` runs plain, ``on`` runs
    with a :class:`~repro.reliability.physics.PhysicsEngine` armed at
    the :data:`PHYSICS_BENCH_PE`/:data:`PHYSICS_BENCH_RETENTION_HOURS`
    stress point.  Both arms keep ``track_history=True`` so the
    overhead is the engine's alone.
    """

    def to_dict(self) -> Dict[str, object]:
        """JSON projection (the ``BENCH_PR10.json`` schema)."""
        return {
            "ftl": BENCH_FTL,
            "workload": self.workload,
            "scale": self.scale,
            "span": self.span,
            "rounds": self.rounds,
            "python": platform.python_version(),
            "physics": {
                "pe_baseline": PHYSICS_BENCH_PE,
                "retention_baseline_hours": PHYSICS_BENCH_RETENTION_HOURS,
            },
            "methodology": (
                "paired plain/physics-armed runs on fresh systems "
                "(both arms track_history=True, the engine's "
                "prerequisite) with within-pair order alternating per "
                "pair, fill + engine arming + workload inside the "
                "timed region; headline overhead compares the best "
                "(fastest) observation of each arm because noise is "
                "strictly additive; the median of per-pair ratios is "
                "the drift-robust cross-check"),
            "events_per_sec": {"off": list(self.off),
                               "on": list(self.on)},
            "pair_overheads_pct": self.pair_overheads_pct(),
            "summary": {
                "best_off": self.best_off(),
                "best_on": self.best_on(),
                "overhead_pct": self.overhead_pct(),
                "paired_median_pct": self.paired_median_pct(),
                "budget_pct": self.budget_pct,
                "passed": self.passed(),
            },
        }

    def render(self) -> str:
        rows = [
            f"physics overhead: {self.workload} x{self.rounds} pairs "
            f"(scale {self.scale:g}, pe={PHYSICS_BENCH_PE}, "
            f"ret={PHYSICS_BENCH_RETENTION_HOURS:g}h)",
            f"{'pair':>5s} {'off ev/s':>10s} {'on ev/s':>10s} "
            f"{'pair %':>8s}",
        ]
        pair_pcts = self.pair_overheads_pct()
        for index, (off, on) in enumerate(zip(self.off, self.on)):
            rows.append(f"{index:>5d} {off:>10.0f} {on:>10.0f} "
                        f"{pair_pcts[index]:>+8.2f}")
        rows.append("")
        verdict = "PASS" if self.passed() else "FAIL"
        rows.append(
            f"best off {self.best_off():.0f} ev/s, "
            f"on {self.best_on():.0f} ev/s -> "
            f"{self.overhead_pct():.2f}% overhead "
            f"(paired median {self.paired_median_pct():+.2f}%, "
            f"budget {self.budget_pct:g}%): {verdict}")
        return "\n".join(rows)


def run_physics_overhead(
    workload: str = "fig8_write",
    scale: float = 1.0,
    seed: int = 1,
    rounds: int = 5,
    budget_pct: float = PHYSICS_OVERHEAD_BUDGET_PCT,
    output_path: Optional[str] = None,
) -> PhysicsOverheadResult:
    """Measure the armed-physics slowdown against ``budget_pct``.

    The physics twin of :func:`run_trace_overhead`: ``rounds`` pairs
    of plain and physics-armed executions of one :data:`WORKLOADS`
    workload, within-pair order alternating, best observation of each
    arm compared.  Both arms run with ``track_history=True`` (the
    engine cannot prime without block histories), so the reported
    overhead is the engine's sampling/bookkeeping cost alone — the
    history-tracking cost itself is covered by ``--full-history`` on
    the main benchmark.
    """
    from repro.reliability.physics import PhysicsConfig

    if workload not in WORKLOADS:
        raise KeyError(f"unknown workload {workload!r}; physics "
                       f"overhead supports {sorted(WORKLOADS)}")
    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")
    config = ExperimentConfig(track_history=True)
    _, _, _, probe, _ = build_system(BENCH_FTL, config)
    span = max(1, int(probe.logical_pages * BENCH_UTILIZATION))
    streams = WORKLOADS[workload](span, scale, seed)
    physics = PhysicsConfig(
        pe_baseline=PHYSICS_BENCH_PE,
        retention_baseline_hours=PHYSICS_BENCH_RETENTION_HOURS,
    )

    off: List[float] = []
    on: List[float] = []
    for index in range(rounds):
        if index % 2 == 0:
            off.append(time_workload(workload, streams, config,
                                     span).events_per_sec)
            on.append(time_physics_workload(workload, streams, config,
                                            span,
                                            physics).events_per_sec)
        else:
            on.append(time_physics_workload(workload, streams, config,
                                            span,
                                            physics).events_per_sec)
            off.append(time_workload(workload, streams, config,
                                     span).events_per_sec)

    result = PhysicsOverheadResult(
        workload=workload,
        scale=scale,
        span=span,
        rounds=rounds,
        off=off,
        on=on,
        budget_pct=budget_pct,
    )
    if output_path is not None:
        with open(output_path, "w", encoding="utf-8") as handle:
            json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return result


@dataclasses.dataclass
class SweepPoint:
    """One geometry of a ``--scale-sweep`` run.

    ``new`` holds events/sec of the configuration under test (the
    default calendar kernel), ``baseline`` of the heap-kernel
    event-stepping oracle on the *same* streams; the two arms run
    interleaved with alternating order so wall-clock drift cancels.
    ``events`` is asserted identical across every run of both arms —
    the sweep doubles as an end-to-end equivalence check.
    """

    multiplier: int
    channels: int
    chips_per_channel: int
    total_chips: int
    span: int
    events: int
    new: List[float]
    baseline: List[float]

    def best_new(self) -> float:
        return max(self.new)

    def best_baseline(self) -> float:
        return max(self.baseline)

    def speedup(self) -> float:
        """Best-of new rate over best-of baseline rate."""
        return self.best_new() / self.best_baseline()

    def to_dict(self) -> Dict[str, object]:
        return {
            "multiplier": self.multiplier,
            "channels": self.channels,
            "chips_per_channel": self.chips_per_channel,
            "total_chips": self.total_chips,
            "span": self.span,
            "events": self.events,
            "events_per_sec": {"new": list(self.new),
                               "baseline": list(self.baseline)},
            "summary": {
                "best_new": self.best_new(),
                "best_baseline": self.best_baseline(),
                "speedup": self.speedup(),
            },
        }


@dataclasses.dataclass
class ScaleSweepResult:
    """Outcome of ``repro perfbench --scale-sweep``."""

    workload: str
    scale: float
    seed: int
    rounds: int
    kernel: str
    stepping: str
    points: List[SweepPoint]
    #: free-form context block recorded verbatim in the JSON (e.g. the
    #: prior bench file this sweep is compared against).
    reference: Optional[Dict[str, object]] = None

    def passed(self) -> bool:
        """The sweep has no floor; it fails only on construction (an
        event-count mismatch between arms raises)."""
        return True

    def to_dict(self) -> Dict[str, object]:
        """JSON projection (the ``BENCH_PR7.json`` schema)."""
        payload: Dict[str, object] = {
            "ftl": BENCH_FTL,
            "workload": self.workload,
            "scale": self.scale,
            "seed": self.seed,
            "rounds": self.rounds,
            "kernel": self.kernel,
            "stepping": self.stepping,
            "python": platform.python_version(),
            "methodology": (
                "per geometry multiplier, paired runs of the "
                "configuration under test and the heap-kernel "
                "event-stepping oracle on identical streams, order "
                "alternating per round, GC quiesced, warm-up fill "
                "inside the timed region; best-of rates compared "
                "(noise is strictly additive); event counts asserted "
                "identical across arms"),
            "points": [p.to_dict() for p in self.points],
        }
        if self.reference is not None:
            payload["reference"] = self.reference
        return payload

    def render(self) -> str:
        rows = [
            f"scale sweep: {self.workload} (scale {self.scale:g}, "
            f"{self.rounds} rounds/arm, kernel={self.kernel}, "
            f"stepping={self.stepping} vs heap/event baseline)",
            f"{'mult':>5s} {'chips':>6s} {'events':>9s} "
            f"{'new ev/s':>10s} {'base ev/s':>10s} {'speedup':>8s}",
        ]
        for p in self.points:
            rows.append(
                f"{p.multiplier:>4d}x {p.total_chips:>6d} "
                f"{p.events:>9d} {p.best_new():>10.0f} "
                f"{p.best_baseline():>10.0f} {p.speedup():>8.3f}")
        return "\n".join(rows)


def run_scale_sweep(
    workload: str = "fig8_write",
    scale: float = 1.0,
    seed: int = 1,
    rounds: int = 3,
    multipliers: Sequence[int] = SWEEP_MULTIPLIERS,
    kernel: str = "calendar",
    stepping: str = "auto",
    reference: Optional[Dict[str, object]] = None,
    output_path: Optional[str] = None,
) -> ScaleSweepResult:
    """Benchmark one workload across geometry multipliers.

    For each multiplier the device grows to ``m`` times the chips
    (:func:`sweep_geometry`) and the same generated streams are timed
    under both the configuration under test (``kernel``/``stepping``)
    and the frozen heap-kernel event-stepping oracle, interleaved.
    Every run's event count must match across arms — a mismatch means
    the kernels diverged and raises ``RuntimeError`` rather than
    reporting a meaningless speedup.
    """
    if workload not in WORKLOADS:
        raise KeyError(f"unknown workload {workload!r}; the scale "
                       f"sweep supports {sorted(WORKLOADS)}")
    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    points: List[SweepPoint] = []
    for multiplier in multipliers:
        geometry = sweep_geometry(multiplier)
        new_config = ExperimentConfig(geometry=geometry,
                                      track_history=False,
                                      kernel=kernel, stepping=stepping)
        base_config = ExperimentConfig(geometry=geometry,
                                       track_history=False,
                                       kernel="heap", stepping="event")
        _, _, _, probe, _ = build_system(BENCH_FTL, new_config)
        span = max(1, int(probe.logical_pages * BENCH_UTILIZATION))
        streams = WORKLOADS[workload](span, scale, seed)
        new_rates: List[float] = []
        base_rates: List[float] = []
        events: Optional[int] = None
        for index in range(rounds):
            arms = ((new_config, new_rates), (base_config, base_rates))
            if index % 2:
                arms = arms[::-1]
            for config, rates in arms:
                timing = time_workload(workload, streams, config, span)
                if events is None:
                    events = timing.events
                elif timing.events != events:
                    raise RuntimeError(
                        f"kernel divergence at {multiplier}x: "
                        f"{timing.events} events != {events}")
                rates.append(timing.events_per_sec)
        points.append(SweepPoint(
            multiplier=multiplier,
            channels=geometry.channels,
            chips_per_channel=geometry.chips_per_channel,
            total_chips=geometry.total_chips,
            span=span,
            events=events if events is not None else 0,
            new=new_rates,
            baseline=base_rates,
        ))
    result = ScaleSweepResult(
        workload=workload,
        scale=scale,
        seed=seed,
        rounds=rounds,
        kernel=kernel,
        stepping=stepping,
        points=points,
        reference=reference,
    )
    if output_path is not None:
        with open(output_path, "w", encoding="utf-8") as handle:
            json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return result


def run_perfbench(
    workloads: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    seed: int = 1,
    track_history: bool = False,
    floor: Optional[float] = None,
    profile_path: Optional[str] = None,
    output_path: Optional[str] = None,
    kernel: str = "calendar",
    stepping: str = "auto",
) -> PerfbenchResult:
    """Run the throughput benchmark.

    Args:
        workloads: subset of :data:`WORKLOADS` plus
            :data:`QOS_WORKLOADS` and :data:`SCENARIO_REPLAY`
            (default: the three core workloads; ``qos_mix`` and
            ``scenario_replay`` are opt-in — each compares against its
            own floor, not the raw-core one).
        scale: op-count multiplier (``--quick`` uses 0.1).
        seed: workload generation seed.
        track_history: keep per-block program histories (default off:
            they change no simulation outcome, only memory traffic).
        floor: minimum acceptable events/sec; recorded in the result
            and reflected in :meth:`PerfbenchResult.passed`.
        profile_path: when given, the whole benchmark runs under
            :mod:`cProfile` and the stats are dumped here (wall-clock
            numbers are then distorted by profiler overhead — use for
            hotspot hunting, not for rates).
        output_path: when given, the JSON projection is written here
            (this is how ``BENCH_PR2.json`` is produced).
        kernel: event-queue implementation to benchmark ("calendar"
            or the oracle "heap").
        stepping: chip-dispatch stepping mode (see
            :class:`~repro.experiments.runner.ExperimentConfig`).
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    names = list(workloads) if workloads else list(WORKLOADS)
    for name in names:
        if (name not in WORKLOADS and name not in QOS_WORKLOADS
                and name != SCENARIO_REPLAY):
            known = sorted({**WORKLOADS, **QOS_WORKLOADS,
                            SCENARIO_REPLAY: None})
            raise KeyError(
                f"unknown workload {name!r}; choose from {known}"
            )
    config = ExperimentConfig(track_history=track_history,
                              kernel=kernel, stepping=stepping)
    _, _, _, probe, _ = build_system(BENCH_FTL, config)
    span = max(1, int(probe.logical_pages * BENCH_UTILIZATION))

    profiler = None
    if profile_path is not None:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        timings = {}
        for name in names:
            if name in WORKLOADS:
                timings[name] = time_workload(
                    name, WORKLOADS[name](span, scale, seed), config,
                    span)
            elif name == SCENARIO_REPLAY:
                timings[name] = _scenario_replay_case(span, scale,
                                                      seed, config)
            else:
                timings[name] = time_qos_workload(
                    name, QOS_WORKLOADS[name](span, scale, seed),
                    config, span)
    finally:
        if profiler is not None:
            profiler.disable()
            profiler.dump_stats(profile_path)

    result = PerfbenchResult(
        timings=timings,
        scale=scale,
        span=span,
        track_history=track_history,
        floor=floor,
        profile_path=profile_path,
        kernel=kernel,
        stepping=stepping,
    )
    if output_path is not None:
        with open(output_path, "w", encoding="utf-8") as handle:
            json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return result
