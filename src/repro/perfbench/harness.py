"""Measurement harness behind ``repro perfbench``.

Methodology
-----------

Each workload is timed on a **fresh system** (new simulator, device and
FTL) so runs are independent and deterministic.  The timed region
covers the sequential-fill warm-up *and* the measured workload: the
warm-up is itself write-pipeline work and excluding it would flatter
configurations that shift cost into preconditioning.  The metric is
simulator events per second (``sim.processed / wall``), the rate the
event kernel retires scheduled events; host operations per second is
reported alongside as the end-to-end number.

By default the device is built with ``track_history=False`` — the
per-block program-history lists exist for the reliability analyses and
change no simulation outcome, so benchmarks opt out of the bookkeeping
(``--full-history`` restores it; see ``docs/PERFORMANCE.md``).

Wall-clock numbers are inherently noisy (+/-10% on a busy machine);
compare medians of several runs, never single samples.
"""

from __future__ import annotations

import dataclasses
import json
import platform
import statistics
import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.runner import ExperimentConfig, build_system
from repro.qos.host import MultiTenantHost, TenantSpec
from repro.sim.host import ClosedLoopHost, StreamOp
from repro.workloads.benchmarks import WorkloadProfile, build_workload
from repro.workloads.synthetic import sequential_fill

#: The benchmarked FTL: flexFTL exercises the paper's full write
#: pipeline (two-phase allocation, parity backup, quota) and is the
#: hottest configuration of the core.
BENCH_FTL = "flexFTL"

#: Fraction of the logical space the benchmark workloads occupy
#: (matches the Figure 8 evaluation utilisation).
BENCH_UTILIZATION = 0.75

#: Operations of the fig8/zipf workloads at ``--scale 1.0``.
BASE_OPS = 8000

#: Sequential rewrite passes of the endurance loop at ``--scale 1.0``.
BASE_PASSES = 3

#: 50/50 read/write Zipf mix: exercises the read path (mapping lookup,
#: address decode, chip read) alongside the write pipeline.
ZIPF_PROFILE = WorkloadProfile(
    name="zipf-mix", read_fraction=0.5, intensiveness="very high",
    streams=8, npages=2, think=0.0, zipf_s=1.0,
)


def _fig8_write(span: int, scale: float, seed: int
                ) -> List[List[StreamOp]]:
    ops = max(200, int(BASE_OPS * scale))
    return build_workload("NTRX", span, total_ops=ops, seed=seed)


def _zipf_mix(span: int, scale: float, seed: int
              ) -> List[List[StreamOp]]:
    ops = max(200, int(BASE_OPS * scale))
    return build_workload("zipf-mix", span, total_ops=ops, seed=seed,
                          profile=ZIPF_PROFILE)


def _endurance_loop(span: int, scale: float, seed: int
                    ) -> List[List[StreamOp]]:
    passes = max(1, round(BASE_PASSES * scale))
    loop: List[StreamOp] = []
    for _ in range(passes):
        loop.extend(sequential_fill(span))
    return [loop]


#: name -> stream builder ``(span, scale, seed) -> streams``, in
#: canonical report order.
WORKLOADS: Dict[str, Callable[[int, float, int], List[List[StreamOp]]]] = {
    "fig8_write": _fig8_write,
    "zipf_mix": _zipf_mix,
    "endurance_loop": _endurance_loop,
}


def _qos_mix(span: int, scale: float, seed: int) -> List[TenantSpec]:
    from repro.experiments.qos_isolation import build_noisy_neighbor

    ops = max(200, int(BASE_OPS * scale))
    return build_noisy_neighbor(span, ops, seed)


#: Arbitration policy the qos_mix scenario exercises (DRR carries the
#: most per-decision bookkeeping of the four).
QOS_ARBITER = "drr"

#: Multi-tenant scenarios timed through the QoS front-end
#: (``(span, scale, seed) -> tenant specs``).  Not part of the default
#: set: the front-end adds host-side work by design, so its rates are
#: compared against their own floor, not the raw-core one.
QOS_WORKLOADS: Dict[str, Callable[[int, float, int],
                                  List[TenantSpec]]] = {
    "qos_mix": _qos_mix,
}

#: Opt-in streaming-replay benchmark (see :func:`time_scenario_replay`).
SCENARIO_REPLAY = "scenario_replay"

#: Preset the replay benchmark exports and streams back (fileserver is
#: the most write- and burst-heavy of the Table-1 presets).
SCENARIO_REPLAY_PRESET = "fileserver"


@dataclasses.dataclass(frozen=True)
class WorkloadTiming:
    """One timed workload run."""

    name: str
    events: int
    host_ops: int
    wall_seconds: float
    events_per_sec: float
    host_ops_per_sec: float

    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class PerfbenchResult:
    """All timed workloads of one ``repro perfbench`` invocation."""

    timings: Dict[str, WorkloadTiming]
    scale: float
    span: int
    track_history: bool
    floor: Optional[float] = None
    profile_path: Optional[str] = None

    # -- summary -------------------------------------------------------

    def min_events_per_sec(self) -> float:
        """Slowest workload's event rate (what ``--floor`` tests)."""
        return min(t.events_per_sec for t in self.timings.values())

    def median_events_per_sec(self) -> float:
        """Median event rate across the timed workloads."""
        return statistics.median(
            t.events_per_sec for t in self.timings.values())

    def passed(self) -> bool:
        """Whether the run met the ``--floor`` target (if any)."""
        return self.floor is None or self.min_events_per_sec() >= self.floor

    # -- serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON projection (the ``BENCH_PR2.json`` schema)."""
        payload: Dict[str, object] = {
            "ftl": BENCH_FTL,
            "scale": self.scale,
            "span": self.span,
            "track_history": self.track_history,
            "python": platform.python_version(),
            "workloads": {name: t.to_dict()
                          for name, t in self.timings.items()},
            "summary": {
                "min_events_per_sec": self.min_events_per_sec(),
                "median_events_per_sec": self.median_events_per_sec(),
            },
        }
        if self.floor is not None:
            payload["floor"] = {
                "events_per_sec": self.floor,
                "passed": self.passed(),
            }
        return payload

    # -- rendering -----------------------------------------------------

    def render(self) -> str:
        """Text report: one row per workload plus the summary."""
        header = (f"{'workload':16s} {'events':>10s} {'host ops':>10s} "
                  f"{'wall [s]':>9s} {'events/s':>10s} {'host-ops/s':>11s}")
        rows = [header, "-" * len(header)]
        for t in self.timings.values():
            rows.append(
                f"{t.name:16s} {t.events:>10d} {t.host_ops:>10d} "
                f"{t.wall_seconds:>9.3f} {t.events_per_sec:>10.0f} "
                f"{t.host_ops_per_sec:>11.0f}"
            )
        rows.append("")
        rows.append(
            f"median {self.median_events_per_sec():.0f} events/s, "
            f"min {self.min_events_per_sec():.0f} events/s "
            f"(scale {self.scale:g}, track_history={self.track_history})"
        )
        if self.floor is not None:
            verdict = "PASS" if self.passed() else "FAIL"
            rows.append(
                f"floor {self.floor:.0f} events/s: {verdict}"
            )
        if self.profile_path is not None:
            rows.append(f"cProfile stats written to {self.profile_path}")
        return "\n".join(rows)


def time_workload(name: str, streams: Sequence[List[StreamOp]],
                  config: ExperimentConfig,
                  warmup_span: int) -> WorkloadTiming:
    """Time one workload on a freshly built system.

    The warm-up fill runs inside the timed region (see the module
    docstring); ``events`` counts every kernel event of fill plus
    workload, ``host_ops`` every host request of both phases.
    """
    sim, _array, _buffer, _ftl, controller = build_system(BENCH_FTL,
                                                          config)
    host_ops = sum(len(s) for s in streams)
    start = time.perf_counter()
    fill = sequential_fill(warmup_span)
    warm = ClosedLoopHost(sim, controller, [fill])
    warm.start()
    sim.run()
    host = ClosedLoopHost(sim, controller, list(streams))
    host.start()
    sim.run()
    wall = time.perf_counter() - start
    total_ops = host_ops + len(fill)
    return WorkloadTiming(
        name=name,
        events=sim.processed,
        host_ops=total_ops,
        wall_seconds=wall,
        events_per_sec=sim.processed / wall,
        host_ops_per_sec=total_ops / wall,
    )


def time_qos_workload(name: str, tenants: Sequence[TenantSpec],
                      config: ExperimentConfig,
                      warmup_span: int) -> WorkloadTiming:
    """Time one multi-tenant workload through the QoS front-end.

    Same methodology as :func:`time_workload` (fresh system, warm-up
    fill inside the timed region), but the measured phase runs a
    :class:`~repro.qos.host.MultiTenantHost` with per-tenant
    submission queues and :data:`QOS_ARBITER` arbitration — the number
    this produces covers the whole QoS dispatch path, not just the
    simulation core.
    """
    sim, _array, _buffer, _ftl, controller = build_system(BENCH_FTL,
                                                          config)
    host_ops = sum(spec.total_ops for spec in tenants)
    start = time.perf_counter()
    fill = sequential_fill(warmup_span)
    warm = ClosedLoopHost(sim, controller, [fill])
    warm.start()
    sim.run()
    host = MultiTenantHost(sim, controller, list(tenants),
                           arbiter=QOS_ARBITER)
    host.start()
    sim.run()
    wall = time.perf_counter() - start
    total_ops = host_ops + len(fill)
    return WorkloadTiming(
        name=name,
        events=sim.processed,
        host_ops=total_ops,
        wall_seconds=wall,
        events_per_sec=sim.processed / wall,
        host_ops_per_sec=total_ops / wall,
    )


def time_traced_workload(name: str, streams: Sequence[List[StreamOp]],
                         config: ExperimentConfig,
                         warmup_span: int) -> WorkloadTiming:
    """Time one workload with a :class:`Tracer` armed.

    Identical timed region to :func:`time_workload` — fresh system,
    warm-up fill included — with the tracer installed before the clock
    starts and its ``warmup``/``measured`` phase bookkeeping inside the
    region, exactly how a real traced run pays for it.
    """
    from repro.observability.tracer import Tracer

    sim, _array, _buffer, _ftl, controller = build_system(BENCH_FTL,
                                                          config)
    host_ops = sum(len(s) for s in streams)
    tracer = Tracer()
    tracer.install(controller)
    start = time.perf_counter()
    tracer.begin_phase("warmup")
    fill = sequential_fill(warmup_span)
    warm = ClosedLoopHost(sim, controller, [fill])
    warm.start()
    sim.run()
    tracer.begin_phase("measured")
    host = ClosedLoopHost(sim, controller, list(streams))
    host.start()
    sim.run()
    tracer.finish()
    wall = time.perf_counter() - start
    tracer.detach()
    total_ops = host_ops + len(fill)
    return WorkloadTiming(
        name=name,
        events=sim.processed,
        host_ops=total_ops,
        wall_seconds=wall,
        events_per_sec=sim.processed / wall,
        host_ops_per_sec=total_ops / wall,
    )


def time_scenario_replay(name: str, path: str, host_ops: int,
                         config: ExperimentConfig,
                         warmup_span: int) -> WorkloadTiming:
    """Time a streaming closed-loop replay of an on-disk scenario CSV.

    Same shape as :func:`time_workload` — fresh system, warm-up fill
    inside the timed region — but the measured phase streams
    ``operation_sequence`` rows straight off disk through a
    :class:`~repro.scenarios.host.StreamingClosedLoopHost`.  CSV
    parsing is deliberately *inside* the timed region: a real replay
    pays for it on every run, and this benchmark is the guard that the
    bounded-memory path stays within shouting distance of the
    materialized one.  (Exporting the file is not timed — the caller
    writes it beforehand.)
    """
    from repro.scenarios.csvio import TraceScenario
    from repro.scenarios.host import StreamingClosedLoopHost

    sim, _array, _buffer, _ftl, controller = build_system(BENCH_FTL,
                                                          config)
    start = time.perf_counter()
    fill = sequential_fill(warmup_span)
    warm = ClosedLoopHost(sim, controller, [fill])
    warm.start()
    sim.run()
    scenario = TraceScenario(path)
    host = StreamingClosedLoopHost(sim, controller,
                                   scenario.op_streams())
    host.start()
    sim.run()
    wall = time.perf_counter() - start
    total_ops = host_ops + len(fill)
    return WorkloadTiming(
        name=name,
        events=sim.processed,
        host_ops=total_ops,
        wall_seconds=wall,
        events_per_sec=sim.processed / wall,
        host_ops_per_sec=total_ops / wall,
    )


def _scenario_replay_case(span: int, scale: float, seed: int,
                          config: ExperimentConfig) -> WorkloadTiming:
    """Export the replay preset to a temp CSV and time its replay."""
    import os
    import tempfile

    from repro.scenarios.csvio import write_scenario_csv
    from repro.scenarios.presets import make_preset

    ops = max(200, int(BASE_OPS * scale))
    scenario = make_preset(SCENARIO_REPLAY_PRESET, span, ops, seed=seed)
    with tempfile.TemporaryDirectory(prefix="repro-perfbench-") as tmp:
        path = os.path.join(
            tmp, f"operation_sequence_{SCENARIO_REPLAY_PRESET}.csv")
        rows = write_scenario_csv(scenario, path)
        return time_scenario_replay(SCENARIO_REPLAY, path, rows,
                                    config, span)


@dataclasses.dataclass
class TraceOverheadResult:
    """Outcome of ``repro perfbench --trace-overhead``.

    ``off``/``on`` hold per-pair event rates from paired
    untraced/traced runs; within each pair the execution order
    alternates (off-first on even pairs, on-first on odd) so that slow
    wall-clock drift cancels instead of biasing one arm.

    Two estimators are reported.  The headline :meth:`overhead_pct` is
    the *best-of* (minimum-time) estimate — external noise only ever
    slows a run down, so the fastest observation of each arm is the
    closest to the true cost, which is why ``timeit`` recommends
    ``min()`` over means.  :meth:`paired_median_pct` (the median of
    per-pair on/off ratios) is the drift-robust cross-check; on a
    loaded machine it can overstate the true cost by several percent
    (an off/off control run of the same protocol measured +0.4%
    median, individual pairs jittering well past +-10%).
    """

    workload: str
    scale: float
    span: int
    rounds: int
    off: List[float]
    on: List[float]
    budget_pct: float

    def best_off(self) -> float:
        return max(self.off)

    def best_on(self) -> float:
        return max(self.on)

    def pair_overheads_pct(self) -> List[float]:
        """Per-pair slowdown ``100 * (1 - on/off)``, in percent."""
        return [(off - on) / off * 100.0
                for off, on in zip(self.off, self.on)]

    def paired_median_pct(self) -> float:
        """Median of the per-pair slowdowns (drift-robust, noise-shy)."""
        return statistics.median(self.pair_overheads_pct())

    def overhead_pct(self) -> float:
        """Headline slowdown: best-of-N off vs best-of-N on."""
        off = self.best_off()
        return (off - self.best_on()) / off * 100.0

    def passed(self) -> bool:
        return self.overhead_pct() <= self.budget_pct

    def to_dict(self) -> Dict[str, object]:
        """JSON projection (the ``BENCH_PR5.json`` schema)."""
        return {
            "ftl": BENCH_FTL,
            "workload": self.workload,
            "scale": self.scale,
            "span": self.span,
            "rounds": self.rounds,
            "python": platform.python_version(),
            "methodology": (
                "paired untraced/traced runs on fresh systems with "
                "within-pair order alternating per pair, fill + "
                "workload inside the timed region; headline overhead "
                "compares the best (fastest) observation of each arm "
                "because noise is strictly additive; the median of "
                "per-pair ratios is reported as a drift-robust "
                "cross-check (an off/off control of this protocol "
                "measured +0.4% median with +-10% pair jitter)"),
            "events_per_sec": {"off": list(self.off),
                               "on": list(self.on)},
            "pair_overheads_pct": self.pair_overheads_pct(),
            "summary": {
                "best_off": self.best_off(),
                "best_on": self.best_on(),
                "overhead_pct": self.overhead_pct(),
                "paired_median_pct": self.paired_median_pct(),
                "budget_pct": self.budget_pct,
                "passed": self.passed(),
            },
        }

    def render(self) -> str:
        rows = [
            f"trace overhead: {self.workload} x{self.rounds} pairs "
            f"(scale {self.scale:g})",
            f"{'pair':>5s} {'off ev/s':>10s} {'on ev/s':>10s} "
            f"{'pair %':>8s}",
        ]
        pair_pcts = self.pair_overheads_pct()
        for index, (off, on) in enumerate(zip(self.off, self.on)):
            rows.append(f"{index:>5d} {off:>10.0f} {on:>10.0f} "
                        f"{pair_pcts[index]:>+8.2f}")
        rows.append("")
        verdict = "PASS" if self.passed() else "FAIL"
        rows.append(
            f"best off {self.best_off():.0f} ev/s, "
            f"on {self.best_on():.0f} ev/s -> "
            f"{self.overhead_pct():.2f}% overhead "
            f"(paired median {self.paired_median_pct():+.2f}%, "
            f"budget {self.budget_pct:g}%): {verdict}")
        return "\n".join(rows)


def run_trace_overhead(
    workload: str = "fig8_write",
    scale: float = 1.0,
    seed: int = 1,
    rounds: int = 5,
    budget_pct: float = 3.0,
    output_path: Optional[str] = None,
) -> TraceOverheadResult:
    """Measure the enabled-tracing slowdown against ``budget_pct``.

    Runs ``rounds`` pairs of untraced and traced executions of one
    :data:`WORKLOADS` workload, alternating which arm goes first
    within each pair, and compares the best observation of each arm
    (see :class:`TraceOverheadResult` for why best-of, not means).
    This is the perf guard for the observability layer: the
    determinism guard (traced results byte-identical) lives in the
    test suite, this one bounds the wall-clock price.
    """
    if workload not in WORKLOADS:
        raise KeyError(f"unknown workload {workload!r}; trace overhead "
                       f"supports {sorted(WORKLOADS)}")
    if rounds <= 0:
        raise ValueError(f"rounds must be positive, got {rounds}")
    config = ExperimentConfig(track_history=False)
    _, _, _, probe, _ = build_system(BENCH_FTL, config)
    span = max(1, int(probe.logical_pages * BENCH_UTILIZATION))
    streams = WORKLOADS[workload](span, scale, seed)

    off: List[float] = []
    on: List[float] = []
    for index in range(rounds):
        if index % 2 == 0:
            off.append(time_workload(workload, streams, config,
                                     span).events_per_sec)
            on.append(time_traced_workload(workload, streams, config,
                                           span).events_per_sec)
        else:
            on.append(time_traced_workload(workload, streams, config,
                                           span).events_per_sec)
            off.append(time_workload(workload, streams, config,
                                     span).events_per_sec)

    result = TraceOverheadResult(
        workload=workload,
        scale=scale,
        span=span,
        rounds=rounds,
        off=off,
        on=on,
        budget_pct=budget_pct,
    )
    if output_path is not None:
        with open(output_path, "w", encoding="utf-8") as handle:
            json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return result


def run_perfbench(
    workloads: Optional[Sequence[str]] = None,
    scale: float = 1.0,
    seed: int = 1,
    track_history: bool = False,
    floor: Optional[float] = None,
    profile_path: Optional[str] = None,
    output_path: Optional[str] = None,
) -> PerfbenchResult:
    """Run the throughput benchmark.

    Args:
        workloads: subset of :data:`WORKLOADS` plus
            :data:`QOS_WORKLOADS` and :data:`SCENARIO_REPLAY`
            (default: the three core workloads; ``qos_mix`` and
            ``scenario_replay`` are opt-in — each compares against its
            own floor, not the raw-core one).
        scale: op-count multiplier (``--quick`` uses 0.1).
        seed: workload generation seed.
        track_history: keep per-block program histories (default off:
            they change no simulation outcome, only memory traffic).
        floor: minimum acceptable events/sec; recorded in the result
            and reflected in :meth:`PerfbenchResult.passed`.
        profile_path: when given, the whole benchmark runs under
            :mod:`cProfile` and the stats are dumped here (wall-clock
            numbers are then distorted by profiler overhead — use for
            hotspot hunting, not for rates).
        output_path: when given, the JSON projection is written here
            (this is how ``BENCH_PR2.json`` is produced).
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    names = list(workloads) if workloads else list(WORKLOADS)
    for name in names:
        if (name not in WORKLOADS and name not in QOS_WORKLOADS
                and name != SCENARIO_REPLAY):
            known = sorted({**WORKLOADS, **QOS_WORKLOADS,
                            SCENARIO_REPLAY: None})
            raise KeyError(
                f"unknown workload {name!r}; choose from {known}"
            )
    config = ExperimentConfig(track_history=track_history)
    _, _, _, probe, _ = build_system(BENCH_FTL, config)
    span = max(1, int(probe.logical_pages * BENCH_UTILIZATION))

    profiler = None
    if profile_path is not None:
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        timings = {}
        for name in names:
            if name in WORKLOADS:
                timings[name] = time_workload(
                    name, WORKLOADS[name](span, scale, seed), config,
                    span)
            elif name == SCENARIO_REPLAY:
                timings[name] = _scenario_replay_case(span, scale,
                                                      seed, config)
            else:
                timings[name] = time_qos_workload(
                    name, QOS_WORKLOADS[name](span, scale, seed),
                    config, span)
    finally:
        if profiler is not None:
            profiler.disable()
            profiler.dump_stats(profile_path)

    result = PerfbenchResult(
        timings=timings,
        scale=scale,
        span=span,
        track_history=track_history,
        floor=floor,
        profile_path=profile_path,
    )
    if output_path is not None:
        with open(output_path, "w", encoding="utf-8") as handle:
            json.dump(result.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return result
