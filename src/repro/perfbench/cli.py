"""CLI registration of ``repro perfbench``.

Registers the benchmark as a regular
:class:`~repro.experiments.registry.Experiment`, so it shares the
global flags (``--seed``, ``--json``) and dispatch loop with the
paper experiments.  ``--jobs``/``--no-cache`` are accepted but have no
effect: a throughput benchmark must run serially and uncached.
"""

from __future__ import annotations

import argparse

from repro.experiments import registry
from repro.experiments.engine import EngineOptions
from repro.perfbench.harness import (
    QOS_WORKLOADS,
    WORKLOADS,
    PerfbenchResult,
    run_perfbench,
)

#: ``--quick`` op-count multiplier: a CI-sized smoke run.
QUICK_SCALE = 0.1


def _cli_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workloads", default=None,
        help="comma-separated subset of "
             f"{','.join(WORKLOADS)},{','.join(QOS_WORKLOADS)} "
             f"(default: {','.join(WORKLOADS)}; the multi-tenant "
             f"{','.join(QOS_WORKLOADS)} scenario is opt-in)")
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="op-count multiplier (default 1.0)")
    parser.add_argument(
        "--quick", action="store_true",
        help=f"CI smoke run: shorthand for --scale {QUICK_SCALE}")
    parser.add_argument(
        "--full-history", action="store_true",
        help="keep per-block program histories (reliability-analysis "
             "bookkeeping; off by default when benchmarking)")
    parser.add_argument(
        "--floor", type=float, default=None, metavar="EVENTS_PER_SEC",
        help="exit 1 if the slowest workload falls below this rate")
    parser.add_argument(
        "--profile", default=None, metavar="PATH",
        help="run under cProfile and dump the stats to PATH "
             "(distorts the reported rates)")
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="also write the JSON report to PATH "
             "(e.g. BENCH_PR2.json)")


def _cli_run(args: argparse.Namespace,
             engine_options: EngineOptions) -> PerfbenchResult:
    del engine_options  # serial by design; see module docstring
    workloads = args.workloads.split(",") if args.workloads else None
    scale = QUICK_SCALE if args.quick else args.scale
    try:
        return run_perfbench(
            workloads=workloads,
            scale=scale,
            seed=args.seed,
            track_history=args.full_history,
            floor=args.floor,
            profile_path=args.profile,
            output_path=args.output,
        )
    except (KeyError, ValueError) as error:
        raise registry.CliError(str(error.args[0])) from error


registry.register(registry.Experiment(
    name="perfbench",
    help="core throughput benchmark (events/sec, host-ops/sec)",
    add_arguments=_cli_arguments,
    run=_cli_run,
    render=PerfbenchResult.render,
    to_dict=PerfbenchResult.to_dict,
    exit_code=lambda result: 0 if result.passed() else 1,
))
