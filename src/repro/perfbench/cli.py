"""CLI registration of ``repro perfbench``.

Registers the benchmark as a regular
:class:`~repro.experiments.registry.Experiment`, so it shares the
global flags (``--seed``, ``--json``) and dispatch loop with the
paper experiments.  ``--jobs``/``--no-cache`` are accepted but have no
effect: a throughput benchmark must run serially and uncached.
"""

from __future__ import annotations

import argparse

from repro.experiments import registry
from repro.experiments.engine import EngineOptions
from repro.perfbench.harness import (
    PHYSICS_OVERHEAD_BUDGET_PCT,
    QOS_WORKLOADS,
    SCENARIO_REPLAY,
    TRACE_OVERHEAD_BUDGET_PCT,
    WORKLOADS,
    PerfbenchResult,
    run_perfbench,
    run_physics_overhead,
    run_scale_sweep,
    run_trace_overhead,
)

#: ``--quick`` op-count multiplier: a CI-sized smoke run.
QUICK_SCALE = 0.1


def _cli_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workloads", default=None,
        help="comma-separated subset of "
             f"{','.join(WORKLOADS)},{','.join(QOS_WORKLOADS)},"
             f"{SCENARIO_REPLAY} "
             f"(default: {','.join(WORKLOADS)}; the multi-tenant "
             f"{','.join(QOS_WORKLOADS)} and streaming "
             f"{SCENARIO_REPLAY} scenarios are opt-in)")
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="op-count multiplier (default 1.0)")
    parser.add_argument(
        "--quick", action="store_true",
        help=f"CI smoke run: shorthand for --scale {QUICK_SCALE}")
    parser.add_argument(
        "--full-history", action="store_true",
        help="keep per-block program histories (reliability-analysis "
             "bookkeeping; off by default when benchmarking)")
    parser.add_argument(
        "--floor", type=float, default=None, metavar="EVENTS_PER_SEC",
        help="exit 1 if the slowest workload falls below this rate")
    parser.add_argument(
        "--profile", default=None, metavar="PATH",
        help="run under cProfile and dump the stats to PATH "
             "(distorts the reported rates)")
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="also write the JSON report to PATH "
             "(e.g. BENCH_PR2.json)")
    parser.add_argument(
        "--trace-overhead", action="store_true",
        help="measure enabled-tracing overhead instead of raw "
             "throughput: alternating untraced/traced rounds of one "
             "workload, median rates compared (see --overhead-budget)")
    parser.add_argument(
        "--physics-overhead", action="store_true",
        help="measure the armed physics-error-engine overhead instead "
             "of raw throughput: alternating plain/armed rounds of one "
             "workload, both arms with track_history=True "
             f"(budget {PHYSICS_OVERHEAD_BUDGET_PCT:g}% unless "
             "--overhead-budget is given)")
    parser.add_argument(
        "--scale-sweep", action="store_true",
        help="benchmark one workload at 1x/4x/16x chip counts, new "
             "config vs the heap/event oracle on identical streams "
             "(event counts cross-checked; see docs/PERFORMANCE.md)")
    parser.add_argument(
        "--rounds", type=int, default=None,
        help="measurement rounds per arm (default 5 for "
             "--trace-overhead, 3 for --scale-sweep)")
    parser.add_argument(
        "--sweep-multipliers", default="1,4,16", metavar="M,M,...",
        help="comma-separated chip-count multipliers for "
             "--scale-sweep; each must be a perfect square "
             "(default 1,4,16)")
    parser.add_argument(
        "--overhead-budget", type=float, default=None, metavar="PCT",
        help="maximum acceptable overhead percent for "
             "--trace-overhead / --physics-overhead; the run is "
             "judged (and its JSON records passed/failed) against "
             f"exactly this value (default "
             f"{TRACE_OVERHEAD_BUDGET_PCT:g} for tracing, "
             f"{PHYSICS_OVERHEAD_BUDGET_PCT:g} for physics)")
    parser.add_argument(
        "--kernel", choices=("calendar", "heap"), default="calendar",
        help="event-queue implementation to benchmark "
             "(default calendar; heap is the frozen oracle)")
    parser.add_argument(
        "--stepping", choices=("auto", "event", "batch", "vector"),
        default="auto",
        help="chip-dispatch stepping mode (default auto)")


def _cli_run(args: argparse.Namespace, engine_options: EngineOptions):
    del engine_options  # serial by design; see module docstring
    workloads = args.workloads.split(",") if args.workloads else None
    scale = QUICK_SCALE if args.quick else args.scale
    modes = [name for name, flag in
             (("--trace-overhead", args.trace_overhead),
              ("--physics-overhead", args.physics_overhead),
              ("--scale-sweep", args.scale_sweep)) if flag]
    if len(modes) > 1:
        raise registry.CliError(
            f"{' and '.join(modes)} are mutually exclusive")
    if args.trace_overhead:
        workload = workloads[0] if workloads else "fig8_write"
        try:
            return run_trace_overhead(
                workload=workload,
                scale=scale,
                seed=args.seed,
                rounds=args.rounds if args.rounds is not None else 5,
                budget_pct=(args.overhead_budget
                            if args.overhead_budget is not None
                            else TRACE_OVERHEAD_BUDGET_PCT),
                output_path=args.output,
            )
        except (KeyError, ValueError) as error:
            raise registry.CliError(str(error.args[0])) from error
    if args.physics_overhead:
        workload = workloads[0] if workloads else "fig8_write"
        try:
            return run_physics_overhead(
                workload=workload,
                scale=scale,
                seed=args.seed,
                rounds=args.rounds if args.rounds is not None else 5,
                budget_pct=(args.overhead_budget
                            if args.overhead_budget is not None
                            else PHYSICS_OVERHEAD_BUDGET_PCT),
                output_path=args.output,
            )
        except (KeyError, ValueError) as error:
            raise registry.CliError(str(error.args[0])) from error
    if args.scale_sweep:
        workload = workloads[0] if workloads else "fig8_write"
        try:
            multipliers = tuple(
                int(part) for part in args.sweep_multipliers.split(","))
        except ValueError as error:
            raise registry.CliError(
                f"--sweep-multipliers must be comma-separated "
                f"integers, got {args.sweep_multipliers!r}") from error
        try:
            return run_scale_sweep(
                workload=workload,
                scale=scale,
                seed=args.seed,
                rounds=args.rounds if args.rounds is not None else 3,
                multipliers=multipliers,
                kernel=args.kernel,
                stepping=args.stepping,
                output_path=args.output,
            )
        except (KeyError, ValueError) as error:
            raise registry.CliError(str(error.args[0])) from error
    try:
        return run_perfbench(
            workloads=workloads,
            scale=scale,
            seed=args.seed,
            track_history=args.full_history,
            floor=args.floor,
            profile_path=args.profile,
            output_path=args.output,
            kernel=args.kernel,
            stepping=args.stepping,
        )
    except (KeyError, ValueError) as error:
        raise registry.CliError(str(error.args[0])) from error


# Render/to_dict are duck-typed: _cli_run returns a PerfbenchResult or
# (with --trace-overhead) a TraceOverheadResult; both carry render(),
# to_dict() and passed().
registry.register(registry.Experiment(
    name="perfbench",
    help="core throughput benchmark (events/sec, host-ops/sec)",
    add_arguments=_cli_arguments,
    run=_cli_run,
    render=lambda result: result.render(),
    to_dict=lambda result: result.to_dict(),
    exit_code=lambda result: 0 if result.passed() else 1,
))
