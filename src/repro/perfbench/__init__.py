"""Throughput benchmarking for the simulation core.

``repro perfbench`` times the discrete-event core on three canonical
workloads (the Figure 8 write-dominant mix, a Zipf read/write mix and
an endurance-style sequential rewrite loop) and reports simulator
events per second and host operations per second.  It exists to keep
the PR-2 core optimisations honest: the numbers it emits are the ones
quoted in ``BENCH_PR2.json`` and guarded by the CI perf-smoke job.

See :mod:`repro.perfbench.harness` for the measurement methodology and
``docs/PERFORMANCE.md`` for how to interpret the results.
"""

from repro.perfbench.harness import (  # noqa: F401
    BENCH_FTL,
    WORKLOADS,
    PerfbenchResult,
    WorkloadTiming,
    run_perfbench,
)
