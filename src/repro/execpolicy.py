"""Shared timeout/retry policy helpers.

Both execution fan-outs in the repo — the experiment engine's process
pool (:mod:`repro.experiments.engine`) and the fleet supervisor
(:mod:`repro.fleet.supervisor`) — need the same two primitives:

* **Deadlines** that bound how long a unit of work may run before it
  is declared hung (:class:`Deadline` / :class:`DeadlineExceeded`).
* **Capped exponential backoff with deterministic jitter**
  (:func:`backoff_delay`): retry schedules derived from a seed and
  stable coordinates, so two supervised runs of the same fleet retry
  at exactly the same offsets and a failure report is reproducible.

Everything here is dependency-free plain data so it can sit below
both the engine and the fleet without import cycles.
"""

from __future__ import annotations

import hashlib
import json
import random
import time
from typing import Optional


class DeadlineExceeded(Exception):
    """A unit of work overran its wall-clock deadline."""


class Deadline:
    """A wall-clock budget anchored at construction time.

    ``None`` seconds means "no deadline": :meth:`expired` is always
    False and :meth:`remaining` is None, so callers can thread one
    object through unconditionally.
    """

    def __init__(self, seconds: Optional[float]) -> None:
        if seconds is not None and seconds <= 0:
            raise ValueError(
                f"deadline must be positive, got {seconds}")
        self.seconds = seconds
        self.start = time.monotonic()

    def elapsed(self) -> float:
        """Seconds since the deadline was armed."""
        return time.monotonic() - self.start

    def remaining(self) -> Optional[float]:
        """Seconds left (clamped at 0), or None when unbounded."""
        if self.seconds is None:
            return None
        return max(0.0, self.seconds - self.elapsed())

    def expired(self) -> bool:
        """Whether the budget has run out."""
        return self.seconds is not None \
            and self.elapsed() >= self.seconds


def stable_seed(base_seed: int, *coords: object) -> int:
    """A process- and version-stable seed from coordinates.

    Same construction as the engine's ``derive_seed`` (SHA-256 over
    canonical JSON), duplicated here so this module stays leaf-level.
    """
    text = json.dumps([base_seed, [str(c) for c in coords]],
                      separators=(",", ":"))
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


def backoff_delay(base: float, cap: float, failures: int,
                  seed: int, *coords: object) -> float:
    """Capped exponential backoff with deterministic jitter.

    Args:
        base: first-retry delay in seconds.
        cap: upper bound on any delay.
        failures: how many failures have occurred (>= 1; the first
            failure waits ~``base``, each further one doubles).
        seed: jitter seed (e.g. the fleet seed).
        coords: stable jitter coordinates (e.g. shard index, attempt)
            so distinct retries jitter independently but two runs of
            the same schedule jitter identically.

    The jitter multiplies the exponential delay by a deterministic
    factor in ``[0.5, 1.0)`` — "equal jitter": enough spread to
    de-synchronize a thundering herd of retries, never more than the
    uncapped exponential.
    """
    if failures < 1:
        raise ValueError(f"failures must be >= 1, got {failures}")
    if base < 0 or cap < 0:
        raise ValueError("backoff base and cap must be non-negative")
    raw = base * (2.0 ** (failures - 1))
    rng = random.Random(stable_seed(seed, "backoff", *coords, failures))
    jittered = raw * (0.5 + 0.5 * rng.random())
    return min(cap, jittered)
