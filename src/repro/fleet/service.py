"""The fleet service: shard, serve, checkpoint, resume, aggregate.

:func:`run_fleet` is the engine behind ``repro serve``: it derives one
:class:`~repro.fleet.device.DeviceSpec` per device from a
:class:`FleetSpec` (per-device reseeded scenarios, optional tenant
bindings), shards them across worker processes
(:mod:`repro.fleet.shard` / :mod:`repro.fleet.worker`), and merges the
per-device results into a :class:`~repro.fleet.aggregate.FleetReport`.

Completed-device results are memoised in the engine's
content-addressed :class:`~repro.experiments.engine.ResultCache`
(kind ``fleet_device``), so re-serving an unchanged fleet — or growing
it — replays finished devices instantly.  Partial (checkpointed)
results are never cached.

Determinism contract: ``jobs=1`` and ``jobs=N`` produce identical
reports, and a fleet stopped mid-run (``stop_after_events``), killed,
and resumed (``resume=True``) produces a report byte-identical to the
uninterrupted run — per-device snapshots restore the full simulator
state (see :mod:`repro.fleet.snapshot`).
"""

from __future__ import annotations

import concurrent.futures
import dataclasses
import hashlib
import json
from typing import Any, Dict, List, Optional, Tuple

from repro.experiments.engine import ResultCache
from repro.experiments.runner import (
    ExperimentConfig,
    build_system,
)
from repro.fleet.aggregate import FleetReport
from repro.fleet.chaos import ChaosPlan
from repro.fleet.device import DeviceSpec, device_scenario_spec
from repro.fleet.health import SupervisionPolicy
from repro.fleet.shard import shard_ranges
from repro.fleet.supervisor import FleetSupervisor
from repro.fleet.worker import DEFAULT_QUANTUM, ShardTask, run_shard
from repro.nand.geometry import NandGeometry
from repro.scenarios.base import TenantBinding
from repro.scenarios.presets import make_preset

#: Default per-device geometry for fleet serving: 2 channels x 1 chip,
#: 16 blocks of 16 pages — small enough that thousands of devices
#: build and warm up in seconds, structured enough that GC, the 2PO
#: machinery and QoS arbitration all engage.
FLEET_GEOMETRY = NandGeometry(
    channels=2,
    chips_per_channel=1,
    blocks_per_chip=16,
    pages_per_block=16,
    page_size=4096,
)


def fleet_config(kernel: str = "calendar",
                 stepping: str = "auto") -> ExperimentConfig:
    """The default per-device configuration for fleet serving."""
    return ExperimentConfig(geometry=FLEET_GEOMETRY,
                            track_history=False,
                            kernel=kernel, stepping=stepping)


@dataclasses.dataclass(frozen=True)
class FleetSpec:
    """Declarative description of one whole fleet.

    Attributes:
        devices: simulated device count.
        ftl_name: FTL every device runs.
        preset: workload preset name
            (:data:`repro.scenarios.presets.PRESETS`).
        ops_per_device: measured ops per device (before per-phase
            splitting).
        footprint: logical pages each device's workload touches; None
            sizes it to 60% of the FTL's logical space.
        tenants: tenant count; 0 serves untenanted traffic, >0 binds
            the preset's streams onto ``tenant0..tenantN-1`` and runs
            every device behind the QoS submission-queue front-end.
        arbiter: QoS arbitration policy for tenanted fleets.
        seed: fleet base seed; device ``i`` reseeds its scenario with
            ``scenario_seed(seed, "device", i)``.
        config: per-device system configuration.
    """

    devices: int = 64
    ftl_name: str = "flexFTL"
    preset: str = "oltp"
    ops_per_device: int = 400
    footprint: Optional[int] = None
    tenants: int = 0
    arbiter: str = "wrr"
    seed: int = 1
    config: ExperimentConfig = dataclasses.field(
        default_factory=fleet_config)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot of the fleet parameters."""
        out = dataclasses.asdict(self)
        out["config"] = self.config.to_dict()
        return out

    def content_hash(self) -> str:
        """Digest of the full fleet parameterisation.

        Stamped into every device snapshot header and verified on
        resume: a checkpoint directory left over from a *different*
        fleet spec is refused (typed
        :class:`~repro.fleet.snapshot.SnapshotMismatchError`) instead
        of silently splicing stale state into the report.
        """
        canon = json.dumps(self.to_dict(), sort_keys=True,
                           separators=(",", ":"))
        return hashlib.sha256(canon.encode("utf-8")).hexdigest()

    def resolved_footprint(self) -> int:
        """The per-device workload footprint (derived when unset)."""
        if self.footprint is not None:
            return self.footprint
        _sim, _array, _buffer, ftl, _controller = build_system(
            self.ftl_name, self.config)
        return max(1, int(ftl.logical_pages * 0.6))

    def base_scenario_spec(self) -> Dict[str, Any]:
        """The shared scenario spec devices derive theirs from."""
        scenario = make_preset(self.preset,
                               footprint=self.resolved_footprint(),
                               total_ops=self.ops_per_device,
                               seed=self.seed)
        spec = scenario.spec()
        if self.tenants > 0:
            streams = int(spec["streams"])
            if streams < self.tenants:
                raise ValueError(
                    f"preset {self.preset!r} generates {streams} "
                    f"streams; cannot bind {self.tenants} tenants")
            base, extra = divmod(streams, self.tenants)
            spec["tenants"] = [
                TenantBinding(
                    name=f"tenant{index}",
                    streams=base + (1 if index < extra else 0),
                ).to_dict()
                for index in range(self.tenants)
            ]
        return spec

    def device_specs(self) -> List[DeviceSpec]:
        """One :class:`DeviceSpec` per device, in device-id order."""
        base = self.base_scenario_spec()
        arbiter = self.arbiter if self.tenants > 0 else None
        return [
            DeviceSpec(
                device_id=device_id,
                ftl_name=self.ftl_name,
                scenario=device_scenario_spec(base, self.seed,
                                              device_id),
                config=self.config,
                arbiter=arbiter,
            )
            for device_id in range(self.devices)
        ]


@dataclasses.dataclass
class FleetServeResult:
    """One fleet pass: the aggregate report plus serving metadata."""

    report: FleetReport
    workers: int
    resumed: int
    checkpoints: int
    cache_hits: int
    rebuilt: int = 0
    supervised: bool = False

    def to_dict(self) -> Dict[str, Any]:
        out = self.report.to_dict()
        out["service"] = {
            "workers": self.workers,
            "resumed_devices": self.resumed,
            "checkpoints_written": self.checkpoints,
            "cache_hits": self.cache_hits,
            "rebuilt_devices": self.rebuilt,
            "supervised": self.supervised,
        }
        return out

    def render(self) -> str:
        lines = [self.report.render()]
        extra = f" · {self.rebuilt} rebuilt" if self.rebuilt else ""
        lines.append(
            f"  service            {self.workers} workers · "
            f"{self.resumed} resumed · {self.checkpoints} "
            f"checkpoints · {self.cache_hits} cache hits{extra}")
        return "\n".join(lines)


def run_fleet(
    fleet: FleetSpec,
    *,
    jobs: int = 1,
    checkpoint_dir: Optional[str] = None,
    resume: bool = False,
    stop_after_events: Optional[int] = None,
    checkpoint_every: Optional[int] = None,
    quantum: int = DEFAULT_QUANTUM,
    cache: Optional[ResultCache] = None,
    supervise: Optional[SupervisionPolicy] = None,
    chaos: Optional[ChaosPlan] = None,
) -> FleetServeResult:
    """Serve one fleet pass and aggregate its results.

    Args:
        fleet: the fleet description.
        jobs: worker processes (1 = run shards inline).
        checkpoint_dir: snapshot directory; required for ``resume``
            and for any checkpointing.
        resume: load per-device snapshots found in ``checkpoint_dir``
            instead of rebuilding those devices.
        stop_after_events: deterministic mid-run stop — each device
            halts and checkpoints after this many measured events
            (the kill/resume drill).  None serves to completion.
        checkpoint_every: periodic checkpoint interval in events.
        quantum: per-device round-robin event quantum.
        cache: completed-device result cache (None disables
            memoization).
        supervise: run shards under the fleet supervisor
            (:mod:`repro.fleet.supervisor`) with this policy —
            heartbeat liveness, deadlines, deterministic-backoff
            retries, poison-device quarantine and the fleet circuit
            breaker.  None (default) keeps the plain pool path,
            byte-identical to previous releases.
        chaos: deterministic fault-injection plan; requires
            ``supervise`` (the plan kills workers — someone must be
            watching).
    """
    if resume and checkpoint_dir is None:
        raise ValueError("resume=True needs a checkpoint_dir")
    if chaos is not None and chaos.enabled and supervise is None:
        raise ValueError(
            "a chaos plan needs supervise= — injected kills and "
            "hangs are only recoverable under the supervisor")
    specs = fleet.device_specs()

    # Fleet-level memoization: completed devices replay from the
    # content-addressed cache; a partial pass must not consult it
    # (cached results are full runs).
    cache_hits = 0
    cached_results: List[Dict[str, Any]] = []
    pending_specs: List[DeviceSpec] = []
    use_cache = cache is not None and stop_after_events is None
    if use_cache:
        for spec in specs:
            encoded = cache.get(spec.cache_key())
            if encoded is not None and encoded.get("completed"):
                cached_results.append(encoded)
                cache_hits += 1
            else:
                pending_specs.append(spec)
    else:
        pending_specs = list(specs)

    workers = max(1, jobs)
    fleet_hash = fleet.content_hash() \
        if checkpoint_dir is not None else None
    tasks = [
        ShardTask(
            shard_index=index,
            specs=tuple(pending_specs[start:stop]),
            checkpoint_dir=checkpoint_dir,
            resume=resume,
            stop_after_events=stop_after_events,
            checkpoint_every=checkpoint_every,
            quantum=quantum,
            fleet_hash=fleet_hash,
        )
        for index, (start, stop) in enumerate(
            shard_ranges(len(pending_specs), workers))
    ]

    health = None
    quarantined: List[Dict[str, Any]] = []
    reports: List[Dict[str, Any]] = []
    if supervise is not None:
        supervisor = FleetSupervisor(tasks, supervise,
                                     seed=fleet.seed, chaos=chaos)
        reports, fleet_health, quarantined = supervisor.run()
        health = fleet_health.to_dict()
    elif workers == 1 or len(tasks) <= 1:
        for task in tasks:
            reports.append(run_shard(task))
    else:
        with concurrent.futures.ProcessPoolExecutor(
                max_workers=len(tasks)) as pool:
            futures = [pool.submit(run_shard, task) for task in tasks]
            for future in futures:
                reports.append(future.result())

    device_results = list(cached_results)
    resumed = checkpoints = rebuilt = 0
    for shard_report in reports:
        resumed += shard_report["resumed"]
        checkpoints += shard_report["checkpoints"]
        rebuilt += shard_report.get("rebuilt", 0)
        for result in shard_report["results"]:
            device_results.append(result)
            if use_cache and result["completed"]:
                key = specs[result["device_id"]].cache_key()
                cache.put(key, "fleet_device", result)

    report = FleetReport(device_results, health=health,
                         quarantined=quarantined)
    return FleetServeResult(report=report, workers=len(tasks) or 1,
                            resumed=resumed, checkpoints=checkpoints,
                            cache_hits=cache_hits, rebuilt=rebuilt,
                            supervised=supervise is not None)
