"""The fleet supervisor: crash/hang recovery, retry, quarantine.

:class:`FleetSupervisor` runs every :class:`~repro.fleet.worker
.ShardTask` of a fleet pass under true OS supervision instead of a
bare process pool:

* each shard attempt runs in its own killable
  :class:`multiprocessing.Process`, reporting **liveness heartbeats**
  (device id, cumulative events, checkpoints written) over a queue;
* a shard with no heartbeat inside the policy's window is declared
  hung and its process SIGKILLed; a per-attempt wall-clock deadline
  catches livelock that still heartbeats;
* failed/hung/killed/crashed attempts are **retried with capped
  exponential backoff and deterministic jitter** (seeded from the
  fleet seed via :func:`repro.execpolicy.backoff_delay`, so two
  supervised runs retry on identical schedules), resuming from the
  latest checkpoints when a checkpoint directory is configured;
* a device that keeps failing (a **poison device**) is quarantined:
  excised from its shard, its checkpoint retired, the shard restarted
  without it and its identity recorded for the report's
  ``quarantined`` section — one bad spec cannot sink the fleet;
* a per-shard retry budget raises :class:`~repro.fleet.health
  .ShardFailedError` and a fleet-wide failure budget raises
  :class:`~repro.fleet.health.CircuitOpenError` when recovery stops
  being plausible.

Determinism: the simulation work itself is unaffected by *when* or
*how often* it is re-run — device state advances only at event
boundaries and checkpoints restore byte-identically — so a supervised
run that eventually completes every device produces exactly the
uninterrupted run's fleet fingerprint.  That is the chaos oracle
(:mod:`repro.fleet.chaos`).
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.execpolicy import backoff_delay
from repro.fleet.chaos import ChaosPlan, ChaosRuntime
from repro.fleet.health import (
    CircuitOpenError,
    DeviceFailure,
    FleetHealth,
    ShardFailedError,
    ShardHealth,
    SupervisionPolicy,
)
from repro.fleet.worker import ShardTask, checkpoint_path, run_shard


def _shard_main(task: ShardTask, attempt: int,
                plan_data: Optional[Dict[str, Any]],
                heartbeat_interval: float,
                hb_queue, result_queue) -> None:
    """Supervised shard entry point (child process)."""
    runtime = None
    if plan_data is not None:
        runtime = ChaosRuntime(ChaosPlan.from_dict(plan_data),
                               task.shard_index, attempt)
    last_sent = [0.0]

    def observer(device_id: int, events: int,
                 checkpoints: int) -> None:
        now = time.monotonic()
        if now - last_sent[0] >= heartbeat_interval:
            last_sent[0] = now
            hb_queue.put((task.shard_index, attempt, device_id,
                          events, checkpoints))

    try:
        report = run_shard(task, observer=observer, chaos=runtime)
    except DeviceFailure as failure:
        result_queue.put(("failed", task.shard_index, attempt,
                          {"device_id": failure.device_id,
                           "error": str(failure)}))
    except Exception as exc:  # report, don't die silently
        result_queue.put(("failed", task.shard_index, attempt,
                          {"device_id": None, "error": repr(exc)}))
    else:
        result_queue.put(("done", task.shard_index, attempt, report))


def _empty_report(shard: int) -> Dict[str, Any]:
    """The report of a shard whose every device was quarantined."""
    return {"shard": shard, "results": [], "resumed": 0,
            "rebuilt": 0, "checkpoints": 0}


@dataclasses.dataclass
class _ShardState:
    """Supervisor-side bookkeeping for one shard."""

    task: ShardTask
    health: ShardHealth
    proc: Optional[multiprocessing.Process] = None
    attempt: int = -1         # active attempt index
    spawned_at: float = 0.0
    last_hb: float = 0.0
    retry_at: Optional[float] = None
    failures: int = 0         # since the last quarantine
    report: Optional[Dict[str, Any]] = None

    @property
    def shard(self) -> int:
        return self.health.shard

    @property
    def done(self) -> bool:
        return self.report is not None


class FleetSupervisor:
    """Run shard tasks to completion under the supervision policy."""

    def __init__(self, tasks: List[ShardTask],
                 policy: SupervisionPolicy, *, seed: int = 0,
                 chaos: Optional[ChaosPlan] = None) -> None:
        self.policy = policy
        self.seed = seed
        self.chaos = chaos if chaos is not None and chaos.enabled \
            else chaos
        self._plan_data = chaos.to_dict() if chaos is not None \
            else None
        ctx = multiprocessing.get_context()
        self._hb_queue = ctx.SimpleQueue()
        self._result_queue = ctx.SimpleQueue()
        self._ctx = ctx
        self.states = [
            _ShardState(task=task,
                        health=ShardHealth(shard=task.shard_index))
            for task in tasks
        ]
        self.total_failures = 0
        self.device_failures: Dict[int, int] = {}
        self.quarantined: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    # lifecycle

    def run(self) -> Tuple[List[Dict[str, Any]], FleetHealth,
                           List[Dict[str, Any]]]:
        """Supervise every shard to completion.

        Returns ``(shard_reports, health, quarantined)`` with reports
        in shard order.  Raises :class:`ShardFailedError` /
        :class:`CircuitOpenError` when recovery is exhausted; all
        worker processes are killed before raising.
        """
        try:
            for state in self.states:
                self._spawn(state)
            while not all(state.done for state in self.states):
                self._drain_heartbeats()
                self._drain_results()
                now = time.monotonic()
                for state in self.states:
                    if state.done:
                        continue
                    if state.proc is not None:
                        self._check_running(state, now)
                    elif state.retry_at is not None \
                            and now >= state.retry_at:
                        state.retry_at = None
                        self._spawn(state)
                time.sleep(self.policy.poll_interval)
        except BaseException:
            self._shutdown()
            raise
        health = FleetHealth(
            shards=[state.health for state in self.states],
            policy=self.policy,
            chaos=self._plan_data,
        )
        reports = [state.report for state in
                   sorted(self.states, key=lambda s: s.shard)]
        return reports, health, list(self.quarantined)

    def _shutdown(self) -> None:
        """Kill every live worker (error-path cleanup)."""
        for state in self.states:
            if state.proc is not None and state.proc.is_alive():
                state.proc.kill()
        for state in self.states:
            if state.proc is not None:
                state.proc.join(timeout=5.0)
                state.proc = None

    # ------------------------------------------------------------------
    # spawning and retries

    def _spawn(self, state: _ShardState) -> None:
        if not state.task.specs:
            # Everything quarantined away: nothing left to serve.
            state.report = _empty_report(state.shard)
            return
        attempt = state.health.attempts
        state.health.attempts += 1
        if attempt > 0:
            state.health.retries += 1
        state.attempt = attempt
        now = time.monotonic()
        state.spawned_at = state.last_hb = now
        if self.chaos is not None \
                and self.chaos.submit_error(state.shard, attempt):
            # Transient task-submission error: the attempt never
            # reaches a worker; it fails instantly and backs off.
            self._on_failure(state, "submit_error", None)
            return
        task = state.task
        if attempt > 0 and task.checkpoint_dir is not None:
            # Retries resume from the latest checkpoints so only the
            # lost quantum is re-done.
            task = dataclasses.replace(task, resume=True)
        proc = self._ctx.Process(
            target=_shard_main,
            args=(task, attempt, self._plan_data,
                  self.policy.heartbeat_interval,
                  self._hb_queue, self._result_queue),
            daemon=True,
        )
        proc.start()
        state.proc = proc

    def _check_running(self, state: _ShardState, now: float) -> None:
        """Kill a hung/overdue attempt; detect a silently dead one."""
        if not state.proc.is_alive():
            # Dead without a drained message: give the result queue
            # one final look (the exit may have raced the drain).
            self._drain_results()
            if state.done or state.proc is None:
                return
            state.proc.join()
            state.proc = None
            self._on_failure(state, "worker_died", None)
            return
        reason = None
        if now - state.last_hb > self.policy.heartbeat_timeout:
            reason = "hung"
        elif self.policy.shard_deadline is not None \
                and now - state.spawned_at > self.policy.shard_deadline:
            reason = "deadline"
        if reason is not None:
            state.proc.kill()
            state.proc.join(timeout=5.0)
            state.proc = None
            self._on_failure(state, reason, None)

    def _on_failure(self, state: _ShardState, reason: str,
                    info: Optional[Dict[str, Any]]) -> None:
        now = time.monotonic()
        state.health.kills.append(reason)
        state.health.failures.append({
            "attempt": state.attempt,
            "reason": reason,
            "device_id": info.get("device_id") if info else None,
            "error": info.get("error") if info else None,
        })
        state.health.wall_lost += max(0.0, now - state.spawned_at)
        state.failures += 1
        self.total_failures += 1
        state.proc = None

        quarantined_now = False
        device_id = info.get("device_id") if info else None
        if device_id is not None:
            count = self.device_failures.get(device_id, 0) + 1
            self.device_failures[device_id] = count
            if self.policy.quarantine \
                    and count >= self.policy.device_retry_budget \
                    and (self.policy.max_quarantined is None
                         or len(self.quarantined)
                         < self.policy.max_quarantined):
                self._quarantine(state, device_id, info)
                quarantined_now = True

        budget = self.policy.max_fleet_failures
        if budget is not None and self.total_failures > budget:
            raise CircuitOpenError(self.total_failures, budget)
        if not quarantined_now \
                and state.failures > self.policy.max_retries:
            raise ShardFailedError(
                state.shard, state.health.attempts,
                state.health.kills,
                [entry["device_id"] for entry in self.quarantined])

        if not state.task.specs:
            state.report = _empty_report(state.shard)
            return
        delay = backoff_delay(
            self.policy.backoff_base, self.policy.backoff_cap,
            max(1, state.failures), self.seed,
            "supervise", state.shard, state.health.attempts)
        state.retry_at = now + delay
        state.health.wall_lost += delay

    def _quarantine(self, state: _ShardState, device_id: int,
                    info: Optional[Dict[str, Any]]) -> None:
        """Excise a poison device and give the shard a fresh budget."""
        self.quarantined.append({
            "device_id": device_id,
            "shard": state.shard,
            "failures": self.device_failures.get(device_id, 0),
            "error": info.get("error") if info else None,
        })
        state.task = dataclasses.replace(
            state.task,
            specs=tuple(spec for spec in state.task.specs
                        if spec.device_id != device_id))
        # The excised device's cause is gone: the shard earns a fresh
        # retry budget, and its stale checkpoint must not linger.
        state.failures = 0
        if state.task.checkpoint_dir is not None:
            try:
                checkpoint_path(state.task.checkpoint_dir,
                                device_id).unlink()
            except OSError:
                pass

    # ------------------------------------------------------------------
    # queue draining

    def _state_for(self, shard: int) -> _ShardState:
        for state in self.states:
            if state.shard == shard:
                return state
        raise KeyError(f"unknown shard {shard}")

    def _drain_heartbeats(self) -> None:
        while not self._hb_queue.empty():
            shard, attempt, device_id, events, checkpoints = \
                self._hb_queue.get()
            state = self._state_for(shard)
            if attempt != state.attempt or state.proc is None:
                continue  # stale: from an attempt already retired
            now = time.monotonic()
            gap = now - state.last_hb
            state.last_hb = now
            health = state.health
            health.heartbeats += 1
            health.heartbeat_gap_max = max(health.heartbeat_gap_max,
                                           gap)
            health.last_device = device_id
            health.last_events = events

    def _drain_results(self) -> None:
        while not self._result_queue.empty():
            message = self._result_queue.get()
            kind, shard, attempt = message[0], message[1], message[2]
            state = self._state_for(shard)
            if attempt != state.attempt or state.proc is None \
                    or state.done:
                continue  # stale: attempt already killed or retired
            if kind == "done":
                state.proc.join()
                state.proc = None
                state.report = message[3]
            else:  # "failed"
                info = message[3]
                state.proc.join()
                state.proc = None
                reason = "device_failure" \
                    if info.get("device_id") is not None else "error"
                self._on_failure(state, reason, info)
