"""Versioned snapshot files for deterministic checkpoint/resume.

A snapshot is the *entire* live object graph of one simulated device
— kernel pending events, NAND array state, FTL mapping and 2PO state,
RNG states, SimStats, fault-injector cursors and host/scenario cursors
— pickled in one piece so every cross-reference (shared cancellation
cells, bound-method callbacks, aliased stats objects) survives with
identity intact.  A run checkpointed at an event boundary and resumed
from the file is byte-identical to the uninterrupted run; the tests in
``tests/test_fleet_snapshot.py`` assert exactly that, per kernel and
per FTL.

File layout (all integers big-endian)::

    8 bytes   magic  b"RPROSNAP"
    4 bytes   JSON header length
    N bytes   JSON header (UTF-8)
    rest      pickle payload

The header is readable without unpickling anything: it names the
snapshot format version, the package version that wrote the file, the
simulation kernel (``calendar``/``heap``) and stepping mode, and a
SHA-256 over the payload so truncation or corruption is detected
before the unpickler ever runs.  Resuming under a mismatched kernel is
refused with a clear error — pending-event layouts differ between
kernels, so a silent cross-load could never be byte-faithful.

Snapshot files are pickles: load them only from paths you (or your
own checkpointing run) wrote, never from untrusted sources.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import struct
import warnings
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

from repro import __version__

#: First 8 bytes of every snapshot file.
SNAPSHOT_MAGIC = b"RPROSNAP"

#: Bump when the header schema or payload contract changes; a reader
#: refuses files written under a different format version.
SNAPSHOT_FORMAT_VERSION = 1

_LEN = struct.Struct(">I")


class SnapshotError(Exception):
    """Base class for snapshot read/write failures."""


class SnapshotFormatError(SnapshotError):
    """The file is not a snapshot, is corrupt, or is too new/old."""


class SnapshotMismatchError(SnapshotError):
    """The snapshot is valid but incompatible with the resume context
    (e.g. it was written under a different simulation kernel)."""


#: Chaos/test hook: called with the fully written + fsynced temp path
#: *before* the rename.  The chaos harness (:mod:`repro.fleet.chaos`)
#: arms this to simulate a crash between tmp-write and rename — the
#: window an atomic checkpoint must survive.  Never set in production.
_before_rename_hook: Optional[Callable[[Path], None]] = None


def _fsync_dir(directory: Path) -> None:
    """Flush a directory's entry table (rename durability)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # e.g. platforms that refuse O_RDONLY on directories
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def write_snapshot(path: "Path | str", payload: Any,
                   header: Dict[str, Any]) -> Dict[str, Any]:
    """Write ``payload`` (pickled) under a versioned header.

    ``header`` must carry at least ``kernel`` and ``stepping``; the
    format version, package version, payload digest and payload length
    are filled in here.  The write is crash-safe, not merely atomic:
    the temp file is fsynced before the rename and the containing
    directory is fsynced on either side of it, so a *host* crash (not
    just a process kill) can never leave a zero-length or torn
    ``.snap`` where a good one stood — the old snapshot survives until
    the new one is durable.  Returns the full header as written.
    """
    path = Path(path)
    for field in ("kernel", "stepping"):
        if field not in header:
            raise ValueError(f"snapshot header needs {field!r}")
    blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    full = dict(header)
    full["format_version"] = SNAPSHOT_FORMAT_VERSION
    full["package_version"] = __version__
    full["payload_bytes"] = len(blob)
    full["payload_sha256"] = hashlib.sha256(blob).hexdigest()
    header_bytes = json.dumps(full, sort_keys=True,
                              separators=(",", ":")).encode("utf-8")
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as handle:
        handle.write(SNAPSHOT_MAGIC)
        handle.write(_LEN.pack(len(header_bytes)))
        handle.write(header_bytes)
        handle.write(blob)
        handle.flush()
        os.fsync(handle.fileno())
    _fsync_dir(path.parent)
    if _before_rename_hook is not None:
        _before_rename_hook(tmp)
    tmp.replace(path)
    _fsync_dir(path.parent)
    return full


def _read_header(handle: io.BufferedReader,
                 path: Path) -> Dict[str, Any]:
    magic = handle.read(len(SNAPSHOT_MAGIC))
    if magic != SNAPSHOT_MAGIC:
        raise SnapshotFormatError(
            f"{path} is not a snapshot file (bad magic {magic!r})")
    raw_len = handle.read(_LEN.size)
    if len(raw_len) != _LEN.size:
        raise SnapshotFormatError(f"{path} is truncated (no header)")
    (header_len,) = _LEN.unpack(raw_len)
    header_bytes = handle.read(header_len)
    if len(header_bytes) != header_len:
        raise SnapshotFormatError(
            f"{path} is truncated (header cut short)")
    try:
        header = json.loads(header_bytes.decode("utf-8"))
    except ValueError as exc:
        raise SnapshotFormatError(
            f"{path} has a corrupt header: {exc}") from exc
    version = header.get("format_version")
    if version != SNAPSHOT_FORMAT_VERSION:
        raise SnapshotFormatError(
            f"{path} uses snapshot format {version!r}; this build "
            f"reads format {SNAPSHOT_FORMAT_VERSION}")
    return header


def read_snapshot_header(path: "Path | str") -> Dict[str, Any]:
    """The JSON header of a snapshot, without touching the payload."""
    path = Path(path)
    with open(path, "rb") as handle:
        return _read_header(handle, path)


def read_snapshot(
    path: "Path | str",
    expect_kernel: Optional[str] = None,
    expect_stepping: Optional[str] = None,
) -> Tuple[Dict[str, Any], Any]:
    """Load ``(header, payload)``, verifying integrity and context.

    Args:
        path: snapshot file.
        expect_kernel: when given, the resume context's kernel; a
            mismatch raises :class:`SnapshotMismatchError` instead of
            resuming a calendar-queue event set onto a heap (or vice
            versa).
        expect_stepping: same, for the chip-stepping mode.

    A package-version skew (file written by a different release) is
    not fatal — pickles usually survive small releases — but it is
    surfaced as a :class:`UserWarning` so a byte-identity claim is
    never silently made across versions.
    """
    path = Path(path)
    with open(path, "rb") as handle:
        header = _read_header(handle, path)
        blob = handle.read()
    expected_len = header.get("payload_bytes")
    if expected_len is not None and len(blob) != expected_len:
        raise SnapshotFormatError(
            f"{path} is truncated: payload is {len(blob)} bytes, "
            f"header promises {expected_len}")
    digest = hashlib.sha256(blob).hexdigest()
    if digest != header.get("payload_sha256"):
        raise SnapshotFormatError(
            f"{path} failed its integrity check (payload digest "
            f"mismatch); the file is corrupt")
    if expect_kernel is not None \
            and header.get("kernel") != expect_kernel:
        raise SnapshotMismatchError(
            f"{path} was checkpointed under the "
            f"{header.get('kernel')!r} kernel but this run resumes "
            f"under {expect_kernel!r}; pending-event layouts differ "
            f"between kernels, so resume is refused.  Re-run with "
            f"kernel={header.get('kernel')!r} (or restart from "
            f"scratch under the new kernel).")
    if expect_stepping is not None \
            and header.get("stepping") != expect_stepping:
        raise SnapshotMismatchError(
            f"{path} was checkpointed with stepping="
            f"{header.get('stepping')!r} but this run resumes with "
            f"stepping={expect_stepping!r}; refuse rather than risk "
            f"divergence.  Re-run with the snapshot's stepping mode.")
    written_by = header.get("package_version")
    if written_by != __version__:
        warnings.warn(
            f"{path} was written by repro {written_by}, loading "
            f"under {__version__}; resume should work but "
            f"byte-identity across versions is not guaranteed",
            UserWarning, stacklevel=2)
    try:
        payload = pickle.loads(blob)
    except Exception as exc:
        raise SnapshotFormatError(
            f"{path} payload failed to unpickle: {exc}") from exc
    return header, payload
