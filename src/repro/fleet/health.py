"""Fleet supervision policy, health records and typed failures.

The :class:`SupervisionPolicy` is the knob surface of the fleet
supervisor (:mod:`repro.fleet.supervisor`): heartbeat cadence and
timeout, per-attempt deadlines, retry budgets, backoff shape,
quarantine limits and the fleet-wide circuit breaker — all plain
serializable data, so a policy rides inside reports and CI artifacts.

:class:`ShardHealth` / :class:`FleetHealth` are what the supervisor
*observed*: per-shard attempts, retries, kill reasons, heartbeat gaps
and wall-clock lost to retries.  They publish through the PR-5
:class:`~repro.observability.metrics.MetricsRegistry` (see
:meth:`~repro.fleet.aggregate.FleetReport.to_metrics`) and land in the
``health`` section of a supervised :class:`FleetReport`.

Typed failures:

* :class:`DeviceFailure` — a device crashed while being built,
  resumed or advanced; carries the device id so the supervisor can
  attribute the failure and eventually quarantine a poison device.
* :class:`ShardFailedError` — a shard exhausted its retry budget with
  no quarantinable cause; lists any devices already quarantined.
* :class:`CircuitOpenError` — the fleet-wide failure budget tripped;
  the supervisor stops retrying rather than thrash.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional


class SupervisionError(Exception):
    """Base class for supervisor-declared failures."""


class DeviceFailure(SupervisionError):
    """A device's build/resume/advance raised.

    The original exception chains as ``__cause__``; ``device_id``
    names the culprit for retry accounting and quarantine.
    """

    def __init__(self, device_id: int, cause: BaseException) -> None:
        super().__init__(
            f"device {device_id} failed: {cause!r}")
        self.device_id = device_id
        self.__cause__ = cause


class ShardFailedError(SupervisionError):
    """A shard exhausted its retry budget.

    Attributes:
        shard: the failed shard's index.
        attempts: how many attempts were made.
        reasons: per-failure reason strings, oldest first.
        quarantined: device ids quarantined fleet-wide before the
            shard gave up.
    """

    def __init__(self, shard: int, attempts: int,
                 reasons: List[str],
                 quarantined: List[int]) -> None:
        detail = f"; quarantined devices: {quarantined}" \
            if quarantined else ""
        super().__init__(
            f"shard {shard} failed after {attempts} attempts "
            f"({', '.join(reasons) or 'no failures recorded'})"
            f"{detail}")
        self.shard = shard
        self.attempts = attempts
        self.reasons = list(reasons)
        self.quarantined = list(quarantined)


class CircuitOpenError(SupervisionError):
    """The fleet-wide failure budget tripped; retries stopped."""

    def __init__(self, failures: int, budget: int) -> None:
        super().__init__(
            f"fleet circuit breaker open: {failures} shard failures "
            f"exceed the fleet-wide budget of {budget}; the fleet is "
            f"unhealthy beyond what retries should paper over")
        self.failures = failures
        self.budget = budget


@dataclasses.dataclass(frozen=True)
class SupervisionPolicy:
    """How the supervisor watches, retries and gives up.

    All times are wall-clock seconds.  Attributes:

        heartbeat_interval: minimum spacing of worker progress
            heartbeats (workers throttle their sends to this).
        heartbeat_timeout: no heartbeat for this long declares the
            shard hung; its process is killed and the attempt retried.
        shard_deadline: per-*attempt* wall-clock budget (None = no
            deadline).  Deadlines catch livelock the heartbeat cannot
            (a worker making glacial but nonzero progress).
        max_retries: per-shard failure budget.  Failures past this
            raise :class:`ShardFailedError` (the budget resets when a
            poison device is quarantined — the cause was excised).
        device_retry_budget: device-attributed failures before the
            device is declared poison and quarantined.
        quarantine: whether quarantine is allowed at all; when False a
            poison device fails its shard instead.
        max_quarantined: fleet-wide cap on quarantined devices (None =
            unbounded); exceeding it fails the shard.
        backoff_base: first-retry backoff delay.
        backoff_cap: upper bound on any backoff delay.
        max_fleet_failures: fleet-wide circuit breaker — total shard
            failures past this raise :class:`CircuitOpenError`
            (None = breaker disabled).
        poll_interval: supervisor control-loop poll cadence.
    """

    heartbeat_interval: float = 0.25
    heartbeat_timeout: float = 30.0
    shard_deadline: Optional[float] = None
    max_retries: int = 3
    device_retry_budget: int = 2
    quarantine: bool = True
    max_quarantined: Optional[int] = None
    backoff_base: float = 0.25
    backoff_cap: float = 5.0
    max_fleet_failures: Optional[int] = None
    poll_interval: float = 0.02

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError("heartbeat_interval must be positive")
        if self.heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive")
        if self.shard_deadline is not None and self.shard_deadline <= 0:
            raise ValueError("shard_deadline must be positive")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.device_retry_budget < 1:
            raise ValueError("device_retry_budget must be >= 1")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff values must be non-negative")
        if self.max_fleet_failures is not None \
                and self.max_fleet_failures < 1:
            raise ValueError("max_fleet_failures must be >= 1")
        if self.poll_interval <= 0:
            raise ValueError("poll_interval must be positive")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot, invertible via :meth:`from_dict`."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SupervisionPolicy":
        """Inverse of :meth:`to_dict`."""
        return cls(**data)


@dataclasses.dataclass
class ShardHealth:
    """What the supervisor observed about one shard.

    Attributes:
        shard: shard index.
        attempts: processes spawned (1 = clean first pass).
        retries: attempts past the first.
        kills: reason per failure, oldest first (``worker_died``,
            ``hung``, ``deadline``, ``submit_error``,
            ``device_failure``, ``error``).
        failures: structured per-failure records
            (attempt / reason / device_id / error).
        heartbeats: heartbeat messages received.
        heartbeat_gap_max: widest observed gap between consecutive
            heartbeats (including spawn-to-first).
        wall_lost: wall-clock seconds spent on failed attempts plus
            backoff waits — the cost of the chaos.
        last_device: device id named by the latest heartbeat.
        last_events: cumulative events named by the latest heartbeat.
    """

    shard: int
    attempts: int = 0
    retries: int = 0
    kills: List[str] = dataclasses.field(default_factory=list)
    failures: List[Dict[str, Any]] = dataclasses.field(
        default_factory=list)
    heartbeats: int = 0
    heartbeat_gap_max: float = 0.0
    wall_lost: float = 0.0
    last_device: Optional[int] = None
    last_events: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot."""
        return dataclasses.asdict(self)


@dataclasses.dataclass
class FleetHealth:
    """Fleet-wide supervision outcome: per-shard health + rollups."""

    shards: List[ShardHealth] = dataclasses.field(default_factory=list)
    policy: Optional[SupervisionPolicy] = None
    chaos: Optional[Dict[str, Any]] = None

    @property
    def attempts_total(self) -> int:
        return sum(s.attempts for s in self.shards)

    @property
    def retries_total(self) -> int:
        return sum(s.retries for s in self.shards)

    @property
    def kills_total(self) -> int:
        return sum(len(s.kills) for s in self.shards)

    @property
    def wall_lost(self) -> float:
        return sum(s.wall_lost for s in self.shards)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot (the report's ``health`` section)."""
        return {
            "shards": [s.to_dict() for s in self.shards],
            "attempts_total": self.attempts_total,
            "retries_total": self.retries_total,
            "kills_total": self.kills_total,
            "wall_lost": self.wall_lost,
            "policy": (self.policy.to_dict()
                       if self.policy is not None else None),
            "chaos": self.chaos,
        }
