"""The ``repro serve`` CLI command: fleet simulation service.

Serves a fleet of simulated devices — sharded across worker
processes, optionally fronted by per-tenant QoS queues — with
deterministic checkpoint/resume:

    repro serve --devices 1000 --jobs 4 --tenants 4
    repro serve --devices 64 --checkpoint-dir ckpt \\
                --stop-after-events 3000        # "kill" mid-run
    repro serve --devices 64 --checkpoint-dir ckpt --resume

The second and third invocations together produce a report
byte-identical (equal fleet fingerprint) to the first run without the
stop — that equality is asserted by tests and the CI fleet smoke job.

Supervised serving (``--supervise``) runs shards under the fleet
supervisor — heartbeat liveness, hang kills, deterministic-backoff
retries, poison-device quarantine — and ``--chaos`` injects a
deterministic fault plan to drill it:

    repro serve --devices 64 --jobs 2 --supervise \\
                --checkpoint-dir ckpt --checkpoint-every 500 \\
                --chaos '{"events": [{"kind": "kill", "shard": 0, \\
                                      "at": 40}]}'

Any chaos drill with a sufficient retry budget reports the same fleet
fingerprint as the undisturbed run.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments import registry
from repro.experiments.engine import EngineOptions
from repro.experiments.runner import FTL_REGISTRY
from repro.fleet.chaos import ChaosPlan
from repro.fleet.health import SupervisionPolicy
from repro.fleet.service import (
    FleetServeResult,
    FleetSpec,
    fleet_config,
    run_fleet,
)
from repro.fleet.worker import DEFAULT_QUANTUM
from repro.qos.arbiter import ARBITERS
from repro.scenarios.presets import PRESETS


def _cli_arguments(parser) -> None:
    parser.add_argument("--devices", type=int, default=64,
                        help="simulated device count")
    parser.add_argument("--ftl", default="flexFTL",
                        help="FTL every device runs")
    parser.add_argument("--preset", default="oltp",
                        help="workload preset per device")
    parser.add_argument("--ops", type=int, default=400,
                        help="measured ops per device")
    parser.add_argument("--footprint", type=int, default=None,
                        help="logical pages per device workload "
                             "(default: 60%% of the FTL's space)")
    parser.add_argument("--tenants", type=int, default=0,
                        help="tenant count (>0 serves through the QoS "
                             "front-end)")
    parser.add_argument("--arbiter", default="wrr",
                        help="QoS arbitration policy for tenanted "
                             "fleets")
    parser.add_argument("--kernel", default="calendar",
                        choices=("calendar", "heap"),
                        help="event-queue kernel per device")
    parser.add_argument("--stepping", default="auto",
                        help="chip stepping mode per device")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="snapshot directory (enables "
                             "checkpointing)")
    parser.add_argument("--resume", action="store_true",
                        help="resume devices from snapshots in "
                             "--checkpoint-dir")
    parser.add_argument("--stop-after-events", type=int, default=None,
                        help="checkpoint and stop each device after "
                             "this many measured events")
    parser.add_argument("--checkpoint-every", type=int, default=None,
                        help="periodic checkpoint interval in events")
    parser.add_argument("--quantum", type=int,
                        default=DEFAULT_QUANTUM,
                        help="per-device round-robin event quantum")
    parser.add_argument("--supervise", action="store_true",
                        help="run shards under the fleet supervisor "
                             "(heartbeats, retries, quarantine)")
    parser.add_argument("--heartbeat-interval", type=float,
                        default=0.25,
                        help="worker heartbeat spacing in seconds")
    parser.add_argument("--heartbeat-timeout", type=float,
                        default=30.0,
                        help="seconds without a heartbeat before a "
                             "shard is declared hung and killed")
    parser.add_argument("--shard-deadline", type=float, default=None,
                        help="per-attempt wall-clock budget in "
                             "seconds (default: none)")
    parser.add_argument("--max-retries", type=int, default=3,
                        help="per-shard failure budget")
    parser.add_argument("--device-retry-budget", type=int, default=2,
                        help="device-attributed failures before "
                             "quarantine")
    parser.add_argument("--backoff-base", type=float, default=0.25,
                        help="first-retry backoff delay in seconds")
    parser.add_argument("--backoff-cap", type=float, default=5.0,
                        help="upper bound on any backoff delay")
    parser.add_argument("--max-failures", type=int, default=None,
                        help="fleet-wide circuit breaker: total "
                             "shard failures allowed (default: "
                             "unlimited)")
    parser.add_argument("--chaos", default=None,
                        help="deterministic fault-injection plan: "
                             "inline JSON or a JSON file path "
                             "(requires --supervise)")


def _cli_run(args, engine_options: EngineOptions
             ) -> FleetServeResult:
    if args.ftl not in FTL_REGISTRY:
        raise registry.CliError(
            f"unknown FTL {args.ftl!r}; choose from "
            f"{sorted(FTL_REGISTRY)}")
    if args.preset not in PRESETS:
        raise registry.CliError(
            f"unknown preset {args.preset!r}; choose from "
            f"{sorted(PRESETS)}")
    if args.tenants > 0 and args.arbiter not in ARBITERS:
        raise registry.CliError(
            f"unknown arbiter {args.arbiter!r}; choose from "
            f"{sorted(ARBITERS)}")
    if args.resume and args.checkpoint_dir is None:
        raise registry.CliError(
            "--resume needs --checkpoint-dir")
    if args.chaos is not None and not args.supervise:
        raise registry.CliError("--chaos needs --supervise")
    supervise = None
    if args.supervise:
        try:
            supervise = SupervisionPolicy(
                heartbeat_interval=args.heartbeat_interval,
                heartbeat_timeout=args.heartbeat_timeout,
                shard_deadline=args.shard_deadline,
                max_retries=args.max_retries,
                device_retry_budget=args.device_retry_budget,
                backoff_base=args.backoff_base,
                backoff_cap=args.backoff_cap,
                max_fleet_failures=args.max_failures,
            )
        except ValueError as exc:
            raise registry.CliError(str(exc)) from exc
    chaos = None
    if args.chaos is not None:
        try:
            chaos = ChaosPlan.from_spec(args.chaos)
        except (OSError, ValueError) as exc:
            raise registry.CliError(
                f"bad --chaos spec: {exc}") from exc
    fleet = FleetSpec(
        devices=args.devices,
        ftl_name=args.ftl,
        preset=args.preset,
        ops_per_device=args.ops,
        footprint=args.footprint,
        tenants=args.tenants,
        arbiter=args.arbiter,
        seed=args.seed,
        config=fleet_config(kernel=args.kernel,
                            stepping=args.stepping),
    )
    return run_fleet(
        fleet,
        jobs=engine_options.jobs,
        checkpoint_dir=args.checkpoint_dir,
        resume=args.resume,
        stop_after_events=args.stop_after_events,
        checkpoint_every=args.checkpoint_every,
        quantum=args.quantum,
        cache=engine_options.cache,
        supervise=supervise,
        chaos=chaos,
    )


def _cli_to_dict(result: FleetServeResult) -> Dict[str, object]:
    return result.to_dict()


registry.register(registry.Experiment(
    name="serve",
    help="fleet simulation service (sharded devices, "
         "checkpoint/resume)",
    add_arguments=_cli_arguments,
    run=_cli_run,
    render=lambda result: result.render(),
    to_dict=_cli_to_dict,
    parallel=True,
))
