"""Deterministic chaos plans for the fleet supervisor.

A :class:`ChaosPlan` is the supervision analogue of PR-4's
:class:`~repro.faults.plan.FaultPlan`: a seeded, serializable schedule
of *infrastructure* failures — worker SIGKILLs, artificial hangs,
checkpoint-write crashes (killed between tmp-write and rename) and
transient task-submission errors — pinned to exact (shard, attempt,
turn) coordinates.  Because the simulation itself is deterministic and
the supervisor's backoff jitter is seeded, a chaos campaign is exactly
reproducible, and the oracle is sharp: **any chaos run with a
sufficient retry budget produces the same fleet fingerprint as the
undisturbed run** (asserted by ``tests/test_fleet_chaos_property.py``
and the CI chaos drill).

Event vocabulary (:data:`CHAOS_KINDS`):

* ``kill`` — the worker SIGKILLs itself at round-robin turn ``at``.
* ``hang`` — the worker sleeps ``hang_seconds`` at turn ``at``; the
  supervisor's heartbeat timeout detects and kills it.
* ``checkpoint_crash`` — the worker SIGKILLs itself between a
  checkpoint's tmp-write and its rename (the ``at``-th checkpoint
  write of the attempt), exercising snapshot crash-safety.
* ``submit_error`` — the supervisor fails the attempt's submission
  itself (a transient scheduler error); never reaches a worker.
* ``device_crash`` — advancing device ``device`` raises a
  :class:`~repro.fleet.health.DeviceFailure`; repeated on enough
  attempts this is how a *poison device* is modelled
  (:func:`poison_device`).

``turn`` coordinates count a worker's round-robin device turns within
one attempt, starting at 0; an event whose coordinates are never
reached simply does not fire.
"""

from __future__ import annotations

import dataclasses
import json
import os
import random
import signal
import time
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.fleet import snapshot as snapshot_module
from repro.fleet.health import DeviceFailure

#: Chaos kinds a plan may schedule.
CHAOS_KINDS = ("kill", "hang", "checkpoint_crash", "submit_error",
               "device_crash")


class DeviceCrashError(RuntimeError):
    """The chaos plan crashed a device (the injected fault itself)."""


@dataclasses.dataclass(frozen=True)
class ChaosEvent:
    """One scheduled infrastructure failure.

    Attributes:
        kind: a :data:`CHAOS_KINDS` member.
        shard: shard index the event strikes.
        attempt: which attempt of the shard it strikes (0 = first).
        at: kind-specific trigger index — round-robin turn for
            ``kill``/``hang``/``device_crash``, checkpoint-write
            ordinal for ``checkpoint_crash``; ignored for
            ``submit_error``.
        device: target device id (``device_crash`` only).
        hang_seconds: sleep length for ``hang`` (long enough that the
            heartbeat timeout fires first).
    """

    kind: str
    shard: int
    attempt: int = 0
    at: int = 0
    device: Optional[int] = None
    hang_seconds: float = 3600.0

    def __post_init__(self) -> None:
        if self.kind not in CHAOS_KINDS:
            raise ValueError(
                f"unknown chaos kind {self.kind!r}; choose from "
                f"{CHAOS_KINDS}")
        if self.shard < 0 or self.attempt < 0 or self.at < 0:
            raise ValueError(
                "shard, attempt and at must be non-negative")
        if self.kind == "device_crash" and self.device is None:
            raise ValueError("device_crash events need a device id")
        if self.hang_seconds <= 0:
            raise ValueError("hang_seconds must be positive")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChaosEvent":
        """Inverse of :meth:`to_dict`."""
        return cls(
            kind=str(data["kind"]),
            shard=int(data["shard"]),
            attempt=int(data.get("attempt", 0)),
            at=int(data.get("at", 0)),
            device=(None if data.get("device") is None
                    else int(data["device"])),
            hang_seconds=float(data.get("hang_seconds", 3600.0)),
        )


@dataclasses.dataclass(frozen=True)
class ChaosPlan:
    """A seeded, serializable schedule of infrastructure failures."""

    seed: int = 0
    events: Tuple[ChaosEvent, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))

    @property
    def enabled(self) -> bool:
        """Whether this plan injects anything at all."""
        return bool(self.events)

    def for_attempt(self, shard: int,
                    attempt: int) -> List[ChaosEvent]:
        """The events striking one (shard, attempt) coordinate."""
        return [event for event in self.events
                if event.shard == shard and event.attempt == attempt]

    def submit_error(self, shard: int, attempt: int) -> bool:
        """Whether submission of this attempt fails transiently."""
        return any(event.kind == "submit_error"
                   for event in self.for_attempt(shard, attempt))

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe snapshot, invertible via :meth:`from_dict`."""
        return {
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ChaosPlan":
        """Inverse of :meth:`to_dict`."""
        return cls(
            seed=int(data.get("seed", 0)),
            events=tuple(ChaosEvent.from_dict(event)
                         for event in data.get("events", ())),
        )

    @classmethod
    def from_spec(cls, spec: str) -> "ChaosPlan":
        """Parse a CLI chaos spec: inline JSON or a JSON file path."""
        text = spec
        if not spec.lstrip().startswith("{"):
            text = Path(spec).read_text(encoding="utf-8")
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ValueError(
                f"chaos spec is not valid JSON ({exc}); pass inline "
                f"JSON or the path of a JSON file") from exc
        return cls.from_dict(data)


def poison_device(device: int, shard: int, *, attempts: int,
                  at: int = 0) -> Tuple[ChaosEvent, ...]:
    """``device_crash`` events for every attempt up to ``attempts``.

    A device that crashes on this many consecutive attempts exhausts
    the supervisor's ``device_retry_budget`` and is quarantined.
    """
    return tuple(
        ChaosEvent(kind="device_crash", shard=shard, attempt=attempt,
                   at=at, device=device)
        for attempt in range(attempts)
    )


def random_plan(seed: int, *, shards: int, max_turn: int,
                events: int = 1,
                kinds: Tuple[str, ...] = ("kill", "hang")
                ) -> ChaosPlan:
    """A seeded random plan over first-attempt kill/hang injections.

    Deterministic in ``seed``: the property suite and ad-hoc drills
    get varied injection points without losing reproducibility.  All
    events strike attempt 0, so a ``max_retries >= events`` budget is
    always sufficient for full recovery.
    """
    rng = random.Random(seed)
    chosen: List[ChaosEvent] = []
    struck: set = set()
    for _ in range(events):
        shard = rng.randrange(shards)
        if shard in struck:
            continue  # one event per shard keeps attempt maths simple
        struck.add(shard)
        chosen.append(ChaosEvent(
            kind=rng.choice(list(kinds)),
            shard=shard,
            attempt=0,
            at=rng.randrange(max_turn),
            hang_seconds=3600.0,
        ))
    return ChaosPlan(seed=seed, events=tuple(chosen))


class ChaosRuntime:
    """Worker-side executor of one (shard, attempt)'s chaos events.

    Installed by the supervised shard entry point; the serving loop
    calls :meth:`on_advance` once per round-robin device turn (before
    advancing), and :meth:`install` arms the snapshot module's
    before-rename hook for ``checkpoint_crash`` events.  With no
    matching events every call is a no-op.
    """

    def __init__(self, plan: ChaosPlan, shard: int,
                 attempt: int) -> None:
        self.events = plan.for_attempt(shard, attempt)
        self._turn = 0
        self._checkpoints = 0

    def install(self) -> None:
        """Arm the checkpoint-crash hook (process-local)."""
        if any(e.kind == "checkpoint_crash" for e in self.events):
            snapshot_module._before_rename_hook = self._on_checkpoint

    def _die(self) -> None:
        os.kill(os.getpid(), signal.SIGKILL)

    def on_advance(self, device_id: int) -> None:
        """Fire events due at this turn; called before each advance."""
        turn = self._turn
        self._turn += 1
        for event in self.events:
            if event.kind == "kill" and event.at == turn:
                self._die()
            elif event.kind == "hang" and event.at == turn:
                time.sleep(event.hang_seconds)
            elif event.kind == "device_crash" \
                    and event.device == device_id \
                    and turn >= event.at:
                raise DeviceFailure(
                    device_id,
                    DeviceCrashError(
                        f"chaos device_crash on device {device_id}"))

    def _on_checkpoint(self, tmp_path: Path) -> None:
        ordinal = self._checkpoints
        self._checkpoints += 1
        for event in self.events:
            if event.kind == "checkpoint_crash" \
                    and event.at == ordinal:
                self._die()
