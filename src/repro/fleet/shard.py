"""Deterministic device-to-worker sharding.

Contiguous near-equal ranges: devices ``[0, n)`` split across ``w``
workers, earlier shards taking the remainder.  Contiguity keeps shard
membership — and therefore which worker produces which checkpoint
file — a pure function of ``(devices, workers)``, so a resumed fleet
re-derives exactly the same layout and every worker finds its own
checkpoints.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def shard_ranges(devices: int, workers: int) -> List[Tuple[int, int]]:
    """``[(start, stop), ...]`` device ranges, one per non-empty shard.

    ``workers`` is a ceiling: more workers than devices yields one
    single-device shard per device.
    """
    if devices < 0:
        raise ValueError(f"devices must be >= 0, got {devices}")
    if workers <= 0:
        raise ValueError(f"workers must be positive, got {workers}")
    workers = min(workers, devices) or (1 if devices else 0)
    base, extra = divmod(devices, workers) if workers else (0, 0)
    ranges: List[Tuple[int, int]] = []
    start = 0
    for index in range(workers):
        size = base + (1 if index < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def shard_of(device_id: int, devices: int, workers: int) -> int:
    """The shard index owning ``device_id`` under :func:`shard_ranges`."""
    for index, (start, stop) in enumerate(shard_ranges(devices,
                                                       workers)):
        if start <= device_id < stop:
            return index
    raise ValueError(
        f"device {device_id} outside fleet of {devices} devices")


def split(items: Sequence, workers: int) -> List[Sequence]:
    """The items of each shard, in shard order."""
    return [items[start:stop]
            for start, stop in shard_ranges(len(items), workers)]
