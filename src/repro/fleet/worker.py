"""Per-shard worker: build or resume devices, serve, checkpoint.

A :class:`ShardTask` is the picklable unit the fleet service submits
to a process pool; :func:`run_shard` is the pool entry point.  Each
worker owns a contiguous device range (:mod:`repro.fleet.shard`),
round-robins its devices in bounded event quanta (so thousands of
devices advance fairly instead of serially), checkpoints unfinished
devices to a versioned snapshot file at every event-budget boundary,
and returns JSON-safe per-device results for fleet aggregation.

Determinism: devices are independent simulations, so neither the
round-robin interleaving nor process boundaries affect any outcome —
a shard run inline, on a pool, or killed and resumed produces the
same per-device fingerprints.

Supervision hooks (all default-off; the plain path is unchanged):

* ``observer`` — called once per device turn with ``(device_id,
  events, checkpoints)``; the supervised entry point uses it to emit
  liveness heartbeats.
* ``chaos`` — a :class:`~repro.fleet.chaos.ChaosRuntime` whose
  :meth:`on_advance` fires scheduled kills/hangs/device crashes.
* Failures while building, resuming or advancing one device raise a
  typed :class:`~repro.fleet.health.DeviceFailure` naming the device,
  so the supervisor can attribute the loss and quarantine a poison
  device; surviving devices are checkpointed first when a checkpoint
  directory is configured, so a retry re-does only the lost quantum.
* A torn or corrupt snapshot found during resume (host crashed
  mid-write before fsync durability, disk damage) is **rebuilt from
  scratch** instead of failing the shard — rebuilding is
  deterministic, so the result is byte-identical either way; the
  shard report counts it under ``"rebuilt"``.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.fleet.device import DeviceRun, DeviceSpec
from repro.fleet.health import DeviceFailure
from repro.fleet.snapshot import SnapshotFormatError

#: Default per-device event quantum for round-robin serving.
DEFAULT_QUANTUM = 4096

#: Per-turn progress callback: ``(device_id, events, checkpoints)``.
ShardObserver = Callable[[int, int, int], None]


def checkpoint_path(checkpoint_dir: "Path | str",
                    device_id: int) -> Path:
    """Canonical snapshot path of one device (stable across resumes)."""
    return Path(checkpoint_dir) / f"device-{device_id:06d}.snap"


@dataclasses.dataclass(frozen=True)
class ShardTask:
    """Everything one worker needs, as plain picklable data.

    Attributes:
        shard_index: which shard this is (labels and reports only).
        specs: the shard's device specs, in device-id order.
        checkpoint_dir: snapshot directory, or None to disable
            checkpointing entirely.
        resume: load existing snapshots instead of rebuilding.
        stop_after_events: stop each device after this many *measured*
            events and checkpoint it (deterministic mid-run stop — the
            kill/resume tests and the CI smoke job use it); None runs
            to completion.
        checkpoint_every: events between periodic checkpoints of a
            still-running device (crash durability); None checkpoints
            only at stop.
        quantum: round-robin event quantum per device per turn.
        fleet_hash: owning fleet spec's content hash; stamped into
            snapshot headers and verified on resume, so snapshots from
            a *different* fleet spec sharing the directory are refused
            instead of silently spliced in.
    """

    shard_index: int
    specs: Tuple[DeviceSpec, ...]
    checkpoint_dir: Optional[str] = None
    resume: bool = False
    stop_after_events: Optional[int] = None
    checkpoint_every: Optional[int] = None
    quantum: int = DEFAULT_QUANTUM
    fleet_hash: Optional[str] = None


def _save(run: DeviceRun, task: ShardTask) -> None:
    """Checkpoint one run under the task's fleet-hash header."""
    extra = {"fleet_hash": task.fleet_hash} \
        if task.fleet_hash is not None else None
    run.save(checkpoint_path(task.checkpoint_dir,
                             run.spec.device_id),
             extra_header=extra)


def _build_runs(task: ShardTask) -> Tuple[List[DeviceRun], int, int]:
    """Build or resume every device; returns (runs, resumed, rebuilt)."""
    runs: List[DeviceRun] = []
    resumed = rebuilt = 0
    for spec in task.specs:
        run = None
        if task.resume and task.checkpoint_dir is not None:
            path = checkpoint_path(task.checkpoint_dir,
                                   spec.device_id)
            if path.exists():
                try:
                    run = DeviceRun.load(
                        path, expect_config=spec.config,
                        expect_fleet_hash=task.fleet_hash)
                    resumed += 1
                except SnapshotFormatError:
                    # Torn/corrupt snapshot (host died mid-write):
                    # rebuilding from scratch is deterministic, so the
                    # device still lands on the oracle fingerprint.
                    rebuilt += 1
                    run = None
        if run is None:
            try:
                run = DeviceRun.build(spec)
            except Exception as exc:
                raise DeviceFailure(spec.device_id, exc) from exc
        runs.append(run)
    return runs, resumed, rebuilt


def run_shard(task: ShardTask,
              observer: Optional[ShardObserver] = None,
              chaos: Optional[Any] = None) -> Dict[str, Any]:
    """Serve one shard to completion (or its stop point).

    Returns ``{"shard": ..., "results": [...], "resumed": n,
    "rebuilt": n, "checkpoints": n}`` with one result dict per device,
    in device-id order.
    """
    if chaos is not None:
        chaos.install()
    runs, resumed, rebuilt = _build_runs(task)

    checkpoints = 0
    since_checkpoint = {run.spec.device_id: 0 for run in runs}
    stop = task.stop_after_events
    pending = [run for run in runs if not run.done
               and (stop is None or run.measured_events < stop)]
    while pending:
        still: List[DeviceRun] = []
        for run in pending:
            device_id = run.spec.device_id
            budget = task.quantum
            if stop is not None:
                budget = min(budget, stop - run.measured_events)
            try:
                if chaos is not None:
                    chaos.on_advance(device_id)
                processed = run.advance(budget)
            except DeviceFailure:
                self_failed = run
                if task.checkpoint_dir is not None:
                    # Preserve the healthy devices' progress so the
                    # retry re-does only this quantum.
                    for other in runs:
                        if other is not self_failed and not other.done:
                            try:
                                _save(other, task)
                            except Exception:
                                pass
                raise
            except Exception as exc:
                raise DeviceFailure(device_id, exc) from exc
            since_checkpoint[device_id] += processed
            live = not run.done and (stop is None
                                     or run.measured_events < stop)
            if live:
                still.append(run)
            if live and task.checkpoint_every is not None \
                    and task.checkpoint_dir is not None \
                    and since_checkpoint[device_id] \
                    >= task.checkpoint_every:
                _save(run, task)
                checkpoints += 1
                since_checkpoint[device_id] = 0
            if observer is not None:
                observer(device_id, run.sim.processed, checkpoints)
        pending = still

    results: List[Dict[str, Any]] = []
    for run in runs:
        if not run.done and task.checkpoint_dir is not None:
            _save(run, task)
            checkpoints += 1
        elif run.done and task.checkpoint_dir is not None:
            # A completed device's stale mid-run snapshot must not
            # survive: a later resume would silently replay it.
            stale = checkpoint_path(task.checkpoint_dir,
                                    run.spec.device_id)
            try:
                stale.unlink()
            except OSError:
                pass
        results.append(run.result())
    return {
        "shard": task.shard_index,
        "results": results,
        "resumed": resumed,
        "rebuilt": rebuilt,
        "checkpoints": checkpoints,
    }
