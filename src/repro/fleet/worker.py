"""Per-shard worker: build or resume devices, serve, checkpoint.

A :class:`ShardTask` is the picklable unit the fleet service submits
to a process pool; :func:`run_shard` is the pool entry point.  Each
worker owns a contiguous device range (:mod:`repro.fleet.shard`),
round-robins its devices in bounded event quanta (so thousands of
devices advance fairly instead of serially), checkpoints unfinished
devices to a versioned snapshot file at every event-budget boundary,
and returns JSON-safe per-device results for fleet aggregation.

Determinism: devices are independent simulations, so neither the
round-robin interleaving nor process boundaries affect any outcome —
a shard run inline, on a pool, or killed and resumed produces the
same per-device fingerprints.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from repro.fleet.device import DeviceRun, DeviceSpec

#: Default per-device event quantum for round-robin serving.
DEFAULT_QUANTUM = 4096


def checkpoint_path(checkpoint_dir: "Path | str",
                    device_id: int) -> Path:
    """Canonical snapshot path of one device (stable across resumes)."""
    return Path(checkpoint_dir) / f"device-{device_id:06d}.snap"


@dataclasses.dataclass(frozen=True)
class ShardTask:
    """Everything one worker needs, as plain picklable data.

    Attributes:
        shard_index: which shard this is (labels and reports only).
        specs: the shard's device specs, in device-id order.
        checkpoint_dir: snapshot directory, or None to disable
            checkpointing entirely.
        resume: load existing snapshots instead of rebuilding.
        stop_after_events: stop each device after this many *measured*
            events and checkpoint it (deterministic mid-run stop — the
            kill/resume tests and the CI smoke job use it); None runs
            to completion.
        checkpoint_every: events between periodic checkpoints of a
            still-running device (crash durability); None checkpoints
            only at stop.
        quantum: round-robin event quantum per device per turn.
    """

    shard_index: int
    specs: Tuple[DeviceSpec, ...]
    checkpoint_dir: Optional[str] = None
    resume: bool = False
    stop_after_events: Optional[int] = None
    checkpoint_every: Optional[int] = None
    quantum: int = DEFAULT_QUANTUM


def run_shard(task: ShardTask) -> Dict[str, Any]:
    """Serve one shard to completion (or its stop point).

    Returns ``{"shard": ..., "results": [...], "resumed": n,
    "checkpoints": n}`` with one result dict per device, in device-id
    order.
    """
    runs: List[DeviceRun] = []
    resumed = 0
    for spec in task.specs:
        run = None
        if task.resume and task.checkpoint_dir is not None:
            path = checkpoint_path(task.checkpoint_dir,
                                   spec.device_id)
            if path.exists():
                run = DeviceRun.load(path, expect_config=spec.config)
                resumed += 1
        if run is None:
            run = DeviceRun.build(spec)
        runs.append(run)

    checkpoints = 0
    since_checkpoint = {run.spec.device_id: 0 for run in runs}
    stop = task.stop_after_events
    pending = [run for run in runs if not run.done
               and (stop is None or run.measured_events < stop)]
    while pending:
        still: List[DeviceRun] = []
        for run in pending:
            budget = task.quantum
            if stop is not None:
                budget = min(budget, stop - run.measured_events)
            processed = run.advance(budget)
            device_id = run.spec.device_id
            since_checkpoint[device_id] += processed
            live = not run.done and (stop is None
                                     or run.measured_events < stop)
            if live:
                still.append(run)
            if live and task.checkpoint_every is not None \
                    and task.checkpoint_dir is not None \
                    and since_checkpoint[device_id] \
                    >= task.checkpoint_every:
                run.save(checkpoint_path(task.checkpoint_dir,
                                         device_id))
                checkpoints += 1
                since_checkpoint[device_id] = 0
        pending = still

    results: List[Dict[str, Any]] = []
    for run in runs:
        if not run.done and task.checkpoint_dir is not None:
            run.save(checkpoint_path(task.checkpoint_dir,
                                     run.spec.device_id))
            checkpoints += 1
        elif run.done and task.checkpoint_dir is not None:
            # A completed device's stale mid-run snapshot must not
            # survive: a later resume would silently replay it.
            stale = checkpoint_path(task.checkpoint_dir,
                                    run.spec.device_id)
            try:
                stale.unlink()
            except OSError:
                pass
        results.append(run.result())
    return {
        "shard": task.shard_index,
        "results": results,
        "resumed": resumed,
        "checkpoints": checkpoints,
    }
